"""Experiment E11 (extension) — EDM ablation study.

DESIGN.md calls out the design choice behind light-weight NLFT: a *stack*
of complementary error-detection mechanisms (Table 1) feeding one recovery
mechanism (TEM).  This ablation quantifies each layer's contribution by
rerunning the E5 campaign with one mechanism removed at a time:

* ``full``      — the complete stack (reference);
* ``no_ecc``    — memory bit flips reach the computation uncorrected;
* ``no_mmu``    — no fault confinement: wild accesses only fail when they
  leave physical memory;
* ``no_cfc``    — no control-flow signature checking;
* ``no_tem``    — single execution, hardware/software EDMs only (the
  comparison's coverage contribution).

The interesting outputs are the *undetected wrong output* count (escapes)
and the coverage per variant: the full stack should dominate, and removing
TEM should cost by far the most — the paper's core argument.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..faults.campaign import TemInjectionHarness
from ..faults.generators import random_fault_list
from ..faults.outcomes import CampaignStatistics, ExperimentRecord, OutcomeClass
from ..faults.types import Fault
from ..harness import SupervisorConfig, run_experiment_campaign
from ..obs.profile import DEFAULT_TOP_K
from ..obs.progress import ProgressReporter
from .coverage_table import BRAKE_TASK_SOURCE, make_brake_workload
from ..cpu.assembler import assemble
from .asciiplot import render_table

VARIANTS = ("full", "no_ecc", "no_mmu", "no_cfc", "no_tem")


def _make_harness(variant: str) -> TemInjectionHarness:
    options = {
        "full": {},
        "no_ecc": {"ecc_enabled": False},
        "no_mmu": {"mmu_enabled": False},
        "no_cfc": {"control_flow_checking": False},
        "no_tem": {},
    }[variant]
    return TemInjectionHarness(make_brake_workload(**options))


#: Worker-side harness cache, one per ablation variant (golden run once
#: per process, not once per trial).
_HARNESS_CACHE: Dict[str, TemInjectionHarness] = {}


def _ablation_trial(payload: "tuple[str, Fault]", seed: int) -> ExperimentRecord:
    """One ablation injection (supervisor trial function)."""
    variant, fault = payload
    harness = _HARNESS_CACHE.get(variant)
    if harness is None:
        harness = _HARNESS_CACHE[variant] = _make_harness(variant)
    if variant == "no_tem":
        return harness.run_single_experiment(fault)
    return harness.run_experiment(fault)


@dataclasses.dataclass
class AblationResult:
    """Campaign statistics per ablation variant (same fault list)."""

    experiments: int
    stats: Dict[str, CampaignStatistics]

    def escapes(self, variant: str) -> int:
        """Undetected wrong outputs of *variant*."""
        return self.stats[variant].count(OutcomeClass.UNDETECTED_WRONG)

    def masked(self, variant: str) -> int:
        return self.stats[variant].count(OutcomeClass.MASKED)

    @property
    def tem_contribution_dominates(self) -> bool:
        """Removing TEM costs more escapes than removing any single EDM."""
        tem_cost = self.escapes("no_tem") - self.escapes("full")
        other_costs = [
            self.escapes(variant) - self.escapes("full")
            for variant in ("no_ecc", "no_mmu", "no_cfc")
        ]
        return tem_cost >= max(other_costs)

    def render(self) -> str:
        rows = []
        for variant in VARIANTS:
            stats = self.stats[variant]
            rows.append(
                (
                    variant,
                    stats.effective,
                    self.masked(variant),
                    stats.count(OutcomeClass.OMISSION),
                    stats.count(OutcomeClass.FAIL_SILENT),
                    self.escapes(variant),
                    f"{stats.coverage:.4f}" if stats.coverage is not None else "-",
                )
            )
        table = render_table(
            ["variant", "effective", "masked", "omission", "fail-silent",
             "UNDETECTED", "coverage"],
            rows,
            title=f"EDM ablation over {self.experiments} identical fault injections",
        )
        verdict = (
            "TEM's comparison contributes the most coverage (paper's core claim)"
            if self.tem_contribution_dominates
            else "NOTE: another mechanism outweighed TEM in this campaign"
        )
        return table + "\n" + verdict


def compute_ablation_table(
    experiments: int = 1_200,
    seed: int = 424_242,
    workers: int = 0,
    timeout_s: Optional[float] = None,
    journal_path: Optional[Union[str, Path]] = None,
    progress: bool = False,
    profile: bool = False,
) -> AblationResult:
    """Run the identical fault list against every ablation variant.

    With ``journal_path`` set, one journal per variant is written next to
    the given path (``<path>.<variant>``) so an interrupted ablation
    resumes per variant.  ``progress`` / ``profile`` enable the live
    stderr progress line and hottest-trial profiling (:mod:`repro.obs`).
    """
    program_words = assemble(BRAKE_TASK_SOURCE).size
    reference = _make_harness("full")
    faults = random_fault_list(
        np.random.default_rng(seed),
        experiments,
        max_step=max(reference.golden_steps * 2, 2),
        code_range=(0, program_words),
        data_range=(0x1800, 0x1902),
    )
    stats: Dict[str, CampaignStatistics] = {}
    for variant in VARIANTS:
        variant_journal = (
            f"{journal_path}.{variant}" if journal_path is not None else None
        )
        stats[variant] = run_experiment_campaign(
            _ablation_trial,
            [(variant, fault) for fault in faults],
            SupervisorConfig(
                workers=workers,
                timeout_s=timeout_s,
                journal_path=variant_journal,
                master_seed=seed,
                campaign=f"e11-ablation-{variant}-n{experiments}",
                progress=(
                    ProgressReporter(f"E11 ablation ({variant})")
                    if progress else None
                ),
                profile_top_k=DEFAULT_TOP_K if profile else 0,
            ),
        )
    return AblationResult(experiments=experiments, stats=stats)


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------

from .registry import experiment


@experiment(
    id="ablation_table",
    index="E11",
    title="EDM ablation (extension)",
    anchors=("Section 4 (extension: detection-mechanism ablation)",),
    tags=("campaign",),
)
def _experiment(ctx) -> AblationResult:
    cfg = ctx.config
    return compute_ablation_table(
        experiments=cfg.campaign_size(1_200, 300),
        workers=cfg.jobs,
        timeout_s=cfg.timeout_s,
        journal_path=cfg.journal_path("e11"),
        progress=cfg.progress,
        profile=cfg.profile,
    )
