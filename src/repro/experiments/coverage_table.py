"""Experiment E5 — Table 1 mechanisms and coverage-parameter estimation.

Reruns the *methodology* of the fault-injection studies behind the paper's
parameter assignment [7, 8]: single bit flips into a simulated processor
executing a brake-control-like task under TEM.  Outputs:

* the per-mechanism detection counts — an empirical rendering of Table 1
  (every listed mechanism should fire: CPU exceptions, ECC, MMU/address
  checking, TEM comparison, execution-time monitoring, control-flow
  checks);
* estimates of C_D, P_T, P_OM with confidence intervals.

P_FS is handled as in the paper itself: faults striking during *kernel*
execution (about 5% of CPU time [10]) silence the node.  The mini-ISA
machine runs no kernel code, so a configurable ``kernel_share`` of
experiments is drawn as kernel hits and classified fail-silent directly —
the identical modelling assumption the paper uses for P_FS.

The absolute numbers need not equal the paper's (different processor); the
claims under test are the *taxonomy and ordering*: most detected errors are
masked, omissions and fail-silent failures are small minorities, coverage
is high.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..cpu.machine import Machine
from ..cpu.assembler import assemble
from ..faults.batch_campaign import BatchTemExecutor
from ..faults.campaign import TemInjectionHarness, TemWorkload
from ..faults.generators import random_fault_list
from ..faults.outcomes import CampaignStatistics, ExperimentRecord, OutcomeClass
from ..faults.types import Fault
from ..harness import (
    ChaosPolicy,
    ShardConfig,
    SupervisorConfig,
    run_experiment_campaign,
    run_sharded_campaign,
)
from ..kernel.task import MachineExecutable
from ..obs.profile import DEFAULT_TOP_K
from ..obs.progress import ProgressReporter
from .asciiplot import render_table

#: A brake-controller-like workload: scaling, saturation, accumulation —
#: integer arithmetic with loops, loads/stores and control flow, annotated
#: with control-flow signature checkpoints.
BRAKE_TASK_SOURCE = """
; inputs:  0x1800 = pedal sample (0..1000), 0x1801 = wheel load share
; output:  0x1900 = commanded force
start:  SIG 17
        LOAD  D0, A0, 0x1800      ; pedal
        LOAD  D1, A0, 0x1801      ; share (per-mille)
        MOVEI D2, 14126           ; max total force (N)
        MUL   D3, D0, D2          ; pedal * max
        DIVI  D3, D3, 1000        ; .. / PEDAL_SCALE
        MUL   D4, D3, D1          ; demand * share
        DIVI  D4, D4, 1000        ; .. / SHARE_SCALE
        MOVEI D5, 4238            ; per-wheel friction limit
        CMP   D4, D5
        BLT   apply
        MOVE  D4, D5              ; saturate at the tyre limit
apply:  SIG 23
        MOVEI D6, 0
        MOVEI D7, 4               ; 4-step actuator ramp accumulator
ramp:   ADD   D6, D6, D4
        SUBI  D7, D7, 1
        CMPI  D7, 0
        BNE   ramp
        DIVI  D6, D6, 4
        SIG 29
        STORE D6, A0, 0x1900
        HALT
"""

#: Checkpoints embedded above, in execution order.
BRAKE_TASK_CHECKPOINTS = (17, 23, 29)

#: Paper anchors for the parameter comparison.
PAPER_PARAMETERS = {"C_D": 0.99, "P_T": 0.90, "P_OM": 0.05, "P_FS": 0.05}


def make_brake_workload(
    max_copies: int = 3,
    ecc_enabled: bool = True,
    mmu_enabled: bool = True,
    control_flow_checking: bool = True,
) -> TemWorkload:
    """The canonical E5 workload (fresh machine per experiment).

    The three keyword toggles disable individual Table 1 mechanisms for
    ablation studies (experiment E11).
    """
    program = assemble(BRAKE_TASK_SOURCE)

    def factory() -> MachineExecutable:
        return MachineExecutable(
            Machine(ecc_enabled=ecc_enabled, mmu_enabled=mmu_enabled),
            program,
            input_count=2,
            output_count=1,
            confine_with_mmu=mmu_enabled,
        )

    return TemWorkload(
        executable_factory=factory,
        inputs=(800, 300),
        signature_checkpoints=(
            BRAKE_TASK_CHECKPOINTS if control_flow_checking else None
        ),
        max_copies=max_copies,
    )


#: Worker-side harness cache: building a :class:`TemInjectionHarness` runs
#: the golden execution, so it is built once per (worker) process and
#: configuration, not once per trial.
_HARNESS_CACHE: Dict[int, TemInjectionHarness] = {}


def e5_fault_payloads(
    experiments: int, seed: int = 2005, max_copies: int = 3
) -> "list[tuple[int, Fault]]":
    """The deterministic E5 payload list: *experiments* seeded faults.

    The single source of the campaign's fault sequence, shared by
    :func:`run_coverage_campaign`, the golden-campaign regression gate
    (``tests/faults/test_golden_campaign.py``), the chaos-equivalence
    suite and ``tools/chaos_smoke.py`` — all of which rely on the same
    seed producing the identical fault list.
    """
    harness = TemInjectionHarness(make_brake_workload(max_copies=max_copies))
    faults = random_fault_list(
        np.random.default_rng(seed),
        experiments,
        max_step=max(harness.golden_steps * 2, 2),
        code_range=(0, assemble(BRAKE_TASK_SOURCE).size),
        data_range=(0x1800, 0x1902),
    )
    return [(max_copies, fault) for fault in faults]


def _e5_trial(payload: "tuple[int, Fault]", seed: int) -> ExperimentRecord:
    """One E5 injection experiment (supervisor trial function).

    The fault is pre-generated from the campaign master seed, so the
    per-trial ``seed`` is unused here; experiments are independent (fresh
    machine per trial) which makes this function safe for any worker.
    """
    max_copies, fault = payload
    harness = _cached_harness(max_copies)
    return harness.run_experiment(fault)


def _cached_harness(max_copies: int) -> TemInjectionHarness:
    harness = _HARNESS_CACHE.get(max_copies)
    if harness is None:
        harness = TemInjectionHarness(make_brake_workload(max_copies=max_copies))
        _HARNESS_CACHE[max_copies] = harness
    return harness


def _e5_batch_runner(
    payloads: "list[tuple[int, Fault]]", seeds: "list[int]"
) -> "list[tuple[ExperimentRecord, Optional[dict]]]":
    """Vectorised E5 chunk executor (supervisor ``batch_runner``).

    Steps the chunk's experiments in numpy lockstep
    (:class:`repro.faults.batch_campaign.BatchTemExecutor`), returning
    records and per-trial metrics snapshots bit-identical to
    :func:`_e5_trial` under capture.  Like :func:`_e5_trial` it ignores
    the per-trial seeds (faults are pre-generated from the master seed).
    Module-level so sharded campaigns can pickle the supervisor config.
    """
    del seeds
    replies: "list[Optional[tuple[ExperimentRecord, Optional[dict]]]]" = (
        [None] * len(payloads)
    )
    groups: "Dict[int, list[tuple[int, Fault]]]" = {}
    for index, (max_copies, fault) in enumerate(payloads):
        groups.setdefault(max_copies, []).append((index, fault))
    for max_copies in sorted(groups):
        members = groups[max_copies]
        executor = BatchTemExecutor(
            _cached_harness(max_copies), batch=len(members)
        )
        chunk_replies = executor.run_experiments([fault for _, fault in members])
        for (index, _), reply in zip(members, chunk_replies):
            replies[index] = reply
    return replies


@dataclasses.dataclass
class CoverageTableResult:
    """Campaign statistics plus the derived parameter estimates."""

    stats: CampaignStatistics
    estimates: Dict[str, float]
    intervals: Dict[str, "tuple[float, float]"]

    def render(self) -> str:
        mechanism_rows = sorted(
            self.stats.mechanism_counts().items(), key=lambda kv: -kv[1]
        )
        mech_table = render_table(
            ["EDM mechanism (Table 1)", "detections"],
            mechanism_rows,
            title="Empirical Table 1: which mechanism caught the injected faults",
        )
        outcome_rows = list(self.stats.outcome_counts().items())
        outcome_table = render_table(["outcome", "count"], outcome_rows)
        param_rows = [
            (name, self.estimates.get(name, float("nan")), PAPER_PARAMETERS[name])
            for name in ("C_D", "P_T", "P_OM", "P_FS")
        ]
        param_table = render_table(
            ["parameter", "estimated", "paper"],
            param_rows,
            title="Coverage parameters (estimate vs paper's assignment)",
        )
        text = "\n\n".join([mech_table, outcome_table, param_table])
        if self.stats.harness_failures or self.stats.completeness < 1.0:
            text += (
                f"\n\nNOTE: partial campaign — completeness "
                f"{self.stats.completeness:.3f}; "
                f"{self.stats.harness_failures} harness failures excluded "
                "from the estimates"
            )
        if self.stats.degraded:
            text += (
                f"\n\nNOTE: DEGRADED campaign — {self.stats.missing} of "
                f"{self.stats.planned_trials or self.stats.total} planned "
                "trials missing; the C_D interval is widened to treat "
                "every missing trial adversarially (see EXPERIMENTS.md, "
                "'Reading partial campaign statistics')"
            )
        return text


def run_coverage_campaign(
    experiments: int = 2_000,
    seed: int = 2005,
    kernel_share: float = 0.05,
    max_copies: int = 3,
    workers: int = 0,
    timeout_s: Optional[float] = None,
    journal_path: Optional[Union[str, Path]] = None,
    progress: bool = False,
    profile: bool = False,
    chunk_size: Optional[int] = None,
    batch_replies: bool = False,
    shards: int = 0,
    chaos: Optional[ChaosPolicy] = None,
    lease_ttl_s: float = 2.0,
    batch: int = 0,
) -> CoverageTableResult:
    """Run the E5 campaign and estimate the paper's parameters.

    Parameters
    ----------
    experiments:
        Number of injected faults.
    kernel_share:
        Fraction of fault arrivals that strike during kernel execution
        (classified fail-silent, per Section 2.2 strategy 3 and the 5%
        kernel CPU share of [10]).
    max_copies:
        TEM copy cap per job — the schedule's reserved recovery slack; a
        tight cap is what produces omission failures.
    workers / timeout_s / journal_path:
        Campaign-supervisor knobs (:mod:`repro.harness`): crash-isolated
        worker processes, per-trial wall-clock budget, and checkpoint
        journal for interrupt/resume.  The defaults preserve the historic
        serial in-process behaviour and output bit-for-bit.
    chunk_size / batch_replies:
        Worker-dispatch batching knobs (see
        :class:`repro.harness.SupervisorConfig`): trials shipped per
        worker message, and chunk-granular replies amortising per-trial
        IPC.  Outcomes are bit-identical either way.
    progress / profile:
        Observability knobs (:mod:`repro.obs`): a live stderr progress
        line (silent when stderr is not a TTY), and opt-in cProfile
        capture of the hottest trials.
    shards / lease_ttl_s:
        Crash-tolerant sharded execution (:mod:`repro.harness.shards`):
        with ``shards >= 1`` the campaign runs as lease-owned shard
        runner processes that survive SIGKILLs and wedges; needs
        ``journal_path``.  Outcomes are bit-identical to the serial run.
    chaos:
        Deterministic harness chaos injection
        (:class:`repro.harness.ChaosPolicy`) — worker kills and delays
        in pool mode, runner deaths/stalls and journal corruption in
        sharded mode.
    batch:
        Vectorised serial execution: step up to ``batch`` experiments in
        numpy lockstep per chunk (:func:`_e5_batch_runner`).  Records,
        journal entries and per-trial metrics are bit-identical to
        scalar execution; composes with ``shards`` (each shard runner
        batches its own slice).
    """
    kernel_hits = int(np.random.default_rng(seed + 1).binomial(experiments, kernel_share))
    payloads = e5_fault_payloads(
        experiments - kernel_hits, seed=seed, max_copies=max_copies
    )
    config = SupervisorConfig(
        workers=workers,
        timeout_s=timeout_s,
        journal_path=journal_path,
        master_seed=seed,
        campaign=f"e5-coverage-n{experiments}",
        chunk_size=chunk_size,
        batch_replies=batch_replies,
        progress=ProgressReporter("E5 coverage") if progress else None,
        profile_top_k=DEFAULT_TOP_K if profile else 0,
        chaos=chaos,
        batch_size=batch,
        batch_runner=_e5_batch_runner if batch > 0 else None,
    )
    if shards > 0:
        stats = run_sharded_campaign(
            _e5_trial, payloads, config,
            ShardConfig(shards=shards, lease_ttl_s=lease_ttl_s),
        ).statistics()
    else:
        stats = run_experiment_campaign(_e5_trial, payloads, config)
    # Kernel-execution hits: the mini-ISA machine runs no kernel code, so
    # these are modelled directly (the paper does the same when deriving
    # P_FS from the 5% kernel CPU share [10]).  A kernel hit is *effective*
    # with the same empirical probability as an application hit; effective
    # kernel errors are detected by the kernel's internal checks and end
    # fail-silent (Section 2.2, strategy 3).
    effectiveness = stats.effective / stats.valid if stats.valid else 0.0
    kernel_rng = np.random.default_rng(seed + 2)
    for index in range(kernel_hits):
        effective = bool(kernel_rng.random() < effectiveness)
        stats.add(
            ExperimentRecord(
                outcome=OutcomeClass.FAIL_SILENT if effective else OutcomeClass.NO_EFFECT,
                fault_description=f"kernel hit #{index}",
                detection_mechanisms=("kernel_check",) if effective else (),
            )
        )
    if stats.planned_trials is not None:
        stats.planned_trials += kernel_hits
    estimates: Dict[str, float] = {}
    intervals: Dict[str, "tuple[float, float]"] = {}
    if stats.coverage is not None:
        estimates["C_D"] = stats.coverage
        intervals["C_D"] = stats.coverage_interval()
    for name, value in (("P_T", stats.p_tem), ("P_OM", stats.p_omission), ("P_FS", stats.p_fail_silent)):
        if value is not None:
            estimates[name] = value
    return CoverageTableResult(stats=stats, estimates=estimates, intervals=intervals)


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------

from .registry import experiment


@experiment(
    id="coverage_table",
    index="E5",
    title="Table 1 - EDM campaign and coverage parameters",
    anchors=("Table 1", "Section 4 (fault-injection campaign)"),
    tags=("campaign",),
)
def _experiment(ctx) -> CoverageTableResult:
    cfg = ctx.config
    return run_coverage_campaign(
        experiments=cfg.campaign_size(2_000, 300),
        workers=cfg.jobs,
        timeout_s=cfg.timeout_s,
        journal_path=cfg.journal_path("e5"),
        progress=cfg.progress,
        profile=cfg.profile,
        shards=cfg.shards,
        chaos=(
            ChaosPolicy.from_spec(cfg.chaos, seed=cfg.chaos_seed)
            if cfg.chaos else None
        ),
        lease_ttl_s=cfg.lease_ttl_s,
        batch=cfg.batch,
    )
