"""Minimal ASCII line-chart rendering for experiment output.

The benchmark harness prints the same series the paper plots; a small
terminal chart makes curve *shapes* (who wins, where curves cross) visible
directly in CI logs without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError

Series = Sequence[Tuple[float, float]]

_MARKERS = "*o+x#@%&"


def render_chart(
    series: Dict[str, Series],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Values are linearly binned onto a width x height grid; each series gets
    a marker character, later series overwrite earlier ones on collisions.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    points = [p for s in series.values() for p in s]
    if not points:
        raise ConfigurationError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    legend: List[str] = []
    for index, (name, data) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        for x, y in data:
            row, col = to_cell(x, y)
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} ({y_lo:.3g} .. {y_hi:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    lines.extend(legend)
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table (the benchmark harness's row output)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ConfigurationError(f"row {row} does not match headers {headers}")
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
