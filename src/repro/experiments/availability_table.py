"""Experiment E13 (extension) — availability under maintenance.

The paper analyses pure reliability (no repair of permanent faults), the
right measure for a single mission.  Over a vehicle's service life the
relevant measure is *availability*: permanently failed nodes are replaced
at garage visits, and a failed system is towed and repaired.  This
experiment adds those repairs to the generalized models and reports:

* steady-state availability of the wheel subsystem (3-out-of-4) for FS vs
  NLFT nodes across service responsiveness (mean node-replacement time);
* expected downtime hours per year;
* the NLFT downtime reduction — the operational-cost version of the
  paper's dependability argument.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..models import BbwParameters
from ..models.generalized import build_redundant_subsystem, up_states
from ..reliability.availability import (
    expected_downtime_hours,
    steady_state_availability,
)
from ..units import HOURS_PER_YEAR
from .asciiplot import render_table

#: Mean node-replacement times swept (hours): same-day .. two weeks.
DEFAULT_REPLACEMENT_HOURS = (24.0, 72.0, 168.0, 336.0)

#: A failed system is towed and repaired within a day on average.
SYSTEM_REPAIR_HOURS = 24.0


@dataclasses.dataclass
class AvailabilityResult:
    """Steady-state availability grid for the 3oo4 wheel subsystem."""

    replacement_hours: List[float]
    #: availability[node_type][replacement_hours] -> A(inf)
    availability: Dict[str, Dict[float, float]]
    downtime_per_year: Dict[str, Dict[float, float]]

    def nlft_downtime_saving(self, replacement_hours: float) -> float:
        """Hours of downtime per year NLFT saves over FS."""
        return (
            self.downtime_per_year["fs"][replacement_hours]
            - self.downtime_per_year["nlft"][replacement_hours]
        )

    def render(self) -> str:
        rows: List[Tuple] = []
        for hours in self.replacement_hours:
            rows.append(
                (
                    f"{hours:.0f} h",
                    self.availability["fs"][hours],
                    self.availability["nlft"][hours],
                    f"{self.downtime_per_year['fs'][hours]:.2f}",
                    f"{self.downtime_per_year['nlft'][hours]:.2f}",
                    f"{self.nlft_downtime_saving(hours):.2f}",
                )
            )
        return render_table(
            ["node replacement", "A_fs", "A_nlft",
             "downtime_fs (h/y)", "downtime_nlft (h/y)", "NLFT saving (h/y)"],
            rows,
            title=(
                "Wheel subsystem (3oo4) availability under maintenance "
                f"(system repair {SYSTEM_REPAIR_HOURS:.0f} h)"
            ),
        )


def compute_availability_table(
    params: Optional[BbwParameters] = None,
    replacement_hours: Tuple[float, ...] = DEFAULT_REPLACEMENT_HOURS,
) -> AvailabilityResult:
    """Run the E13 availability study."""
    params = params if params is not None else BbwParameters.paper()
    availability: Dict[str, Dict[float, float]] = {"fs": {}, "nlft": {}}
    downtime: Dict[str, Dict[float, float]] = {"fs": {}, "nlft": {}}
    for node_type in ("fs", "nlft"):
        for hours in replacement_hours:
            chain = build_redundant_subsystem(
                params, node_type, 4, 3,
                permanent_repair_rate=1.0 / hours,
                system_repair_rate=1.0 / SYSTEM_REPAIR_HOURS,
            )
            ups = up_states(chain)
            availability[node_type][hours] = steady_state_availability(chain, ups)
            downtime[node_type][hours] = expected_downtime_hours(
                chain, HOURS_PER_YEAR, ups
            )
    return AvailabilityResult(
        replacement_hours=list(replacement_hours),
        availability=availability,
        downtime_per_year=downtime,
    )


# ----------------------------------------------------------------------
# Registry entry
# ----------------------------------------------------------------------

from .registry import experiment


@experiment(
    id="availability_table",
    index="E13",
    title="Availability under maintenance (extension)",
    anchors=("Section 5 (extension: availability with repair)",),
)
def _experiment(ctx) -> AvailabilityResult:
    return compute_availability_table()
