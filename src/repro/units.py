"""Time-unit helpers.

Two distinct time bases are used in the library and must not be mixed:

* The **discrete-event simulator** (:mod:`repro.sim`) counts time in
  *microseconds* stored as integers, which keeps event ordering exact and
  matches the granularity of the real-time kernels the paper builds on
  (millisecond periods, microsecond-scale overheads).

* The **reliability models** (:mod:`repro.reliability`, :mod:`repro.models`)
  use *hours* stored as floats, which is the unit of the paper's fault and
  repair rates (faults/hour, repairs/hour).

This module provides explicit conversion helpers so call sites read
unambiguously (``ms(5)`` rather than ``5_000``).
"""

from __future__ import annotations

#: Microseconds per unit — the simulator's clock resolution is 1 us.
US_PER_MS = 1_000
US_PER_SECOND = 1_000_000
SECONDS_PER_HOUR = 3_600.0
HOURS_PER_YEAR = 8_760.0


def us(value: float) -> int:
    """Return *value* microseconds as integer simulator ticks."""
    return int(round(value))


def ms(value: float) -> int:
    """Return *value* milliseconds as integer simulator ticks."""
    return int(round(value * US_PER_MS))


def seconds(value: float) -> int:
    """Return *value* seconds as integer simulator ticks."""
    return int(round(value * US_PER_SECOND))


def ticks_to_ms(ticks: int) -> float:
    """Convert simulator ticks (us) to milliseconds."""
    return ticks / US_PER_MS


def ticks_to_seconds(ticks: int) -> float:
    """Convert simulator ticks (us) to seconds."""
    return ticks / US_PER_SECOND


def hours(value: float) -> float:
    """Identity helper marking a quantity as hours (model time base)."""
    return float(value)


def years(value: float) -> float:
    """Convert years to hours (model time base)."""
    return float(value) * HOURS_PER_YEAR


def hours_to_years(value: float) -> float:
    """Convert hours to years."""
    return float(value) / HOURS_PER_YEAR


def per_hour_from_repair_time_seconds(repair_seconds: float) -> float:
    """Convert a repair *time* in seconds to a repair *rate* in 1/hour.

    The paper quotes repair actions by duration (3 s restart, 1.6 s omission
    recovery) and models them as exponential rates (mu = 1/duration).
    """
    if repair_seconds <= 0:
        raise ValueError(f"repair time must be positive, got {repair_seconds}")
    return SECONDS_PER_HOUR / repair_seconds
