"""Duplex configurations in active replication (Figure 1, right).

Two nodes execute the same workload; under the fail-silent assumption any
valid output can be consumed, so the *service* survives as long as at least
one member delivers.  The :class:`DuplexGroup` tracks member statuses and
exposes service availability to system-level observers; it also selects the
output to act on (the freshest valid frame from any member).

The paper's future-work discussion (replica determinism, state recovery via
the partner node over FlexRay's event-triggered segment) is implemented in
:meth:`DuplexGroup.request_state_recovery`, which a reintegrating member
uses to re-seed its state data from the partner.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.controller import NetworkInterface
from ..sim import Simulator, TraceRecorder
from ..types import Result
from .base import NodeBase
from .failures import NodeStatus

#: Observer signature: (group, service_available).
ServiceObserver = Callable[["DuplexGroup", bool], None]


class DuplexGroup:
    """Two (or more) replicated nodes providing one service."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        members: Sequence[NodeBase],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if len(members) < 1:
            raise ConfigurationError("a replication group needs at least one member")
        self.sim = sim
        self.name = name
        self.members = list(members)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._observers: List[ServiceObserver] = []
        self._available = True
        self.outage_count = 0
        self.outage_ticks = 0
        self._outage_started: Optional[int] = None
        for member in self.members:
            member.add_observer(self._member_changed)

    # ------------------------------------------------------------------
    @property
    def service_available(self) -> bool:
        """True while at least one member provides service."""
        return any(m.operational for m in self.members)

    @property
    def working_members(self) -> List[NodeBase]:
        """Members currently providing service."""
        return [m for m in self.members if m.operational]

    @property
    def permanently_down(self) -> bool:
        """True when every member is permanently down."""
        return all(m.status is NodeStatus.DOWN_PERMANENT for m in self.members)

    def add_observer(self, observer: ServiceObserver) -> None:
        """Register a system-level service observer."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    def _member_changed(self, node: NodeBase, old: NodeStatus, new: NodeStatus) -> None:
        available = self.service_available
        if available == self._available:
            return
        self._available = available
        if available:
            if self._outage_started is not None:
                self.outage_ticks += self.sim.now - self._outage_started
                self._outage_started = None
        else:
            self.outage_count += 1
            self._outage_started = self.sim.now
        self.trace.emit(
            self.sim.now, "duplex.service", self.name, available=available
        )
        for observer in self._observers:
            observer(self, available)

    # ------------------------------------------------------------------
    # Output selection and partner state recovery
    # ------------------------------------------------------------------
    def select_output(
        self,
        frame_id_of: Callable[[NodeBase], int],
        networks: Callable[[NodeBase], Optional[NetworkInterface]],
        now: int,
        max_age: int,
    ) -> Optional[Result]:
        """Pick the freshest valid output any member transmitted.

        Consumers of a duplex service read both members' frames and take the
        first fresh, CRC-valid one — correct under fail-silence.
        """
        freshest: Optional[Result] = None
        freshest_age: Optional[int] = None
        for member in self.members:
            network = networks(member)
            if network is None:
                continue
            received = network.read_fresh(frame_id_of(member), now, max_age)
            if received is None:
                continue
            age = received.age_at(now)
            if freshest_age is None or age < freshest_age:
                freshest_age = age
                freshest = tuple(received.frame.payload)
        return freshest

    def request_state_recovery(self, requester: NodeBase) -> Optional[Result]:
        """Fetch current state data from a working partner (Section 4).

        Returns the partner's state snapshot, or None when no partner can
        serve (the requester then falls back to defaults / fresh inputs, as
        Section 2.6 allows for input data: "obtain new data in the next
        cycle").
        """
        for member in self.members:
            if member is requester or not member.operational:
                continue
            provider = getattr(member, "provide_state_snapshot", None)
            if provider is not None:
                snapshot = provider()
                self.trace.emit(
                    self.sim.now, "duplex.state_recovery", self.name,
                    requester=requester.name, provider=member.name,
                )
                return snapshot
        return None
