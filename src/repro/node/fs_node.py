"""Conventional fail-silent node (the paper's baseline, Section 3.2.1).

"If an error is detected by one of the node's EDMs, then the node exhibits a
fail-silent failure, i.e. the node immediately stops producing results and
is excluded from the distributed system.  The node is automatically
restarted, and a diagnostic program establishes whether the failure was
caused by a transient or a permanent fault."

The FS node is a *behavioural* model: it does not run a kernel, because its
reaction to every detected error is the same (go silent).  Detection itself
is a Bernoulli trial with the error-detection coverage C_D; non-covered
errors become undetected failures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..net.controller import NetworkInterface
from ..sim import Simulator, TraceRecorder
from .base import NodeBase
from .reintegration import RestartController


class FailSilentNode(NodeBase):
    """A node whose only error reaction is fail-silence.

    Parameters
    ----------
    coverage:
        Error-detection coverage C_D (probability a fault's error is caught
        by *any* EDM).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        coverage: float = 0.99,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        network: Optional[NetworkInterface] = None,
        restart: Optional[RestartController] = None,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ConfigurationError(f"coverage must be in [0,1], got {coverage}")
        super().__init__(sim, name, rng=rng, trace=trace, network=network, restart=restart)
        self.coverage = coverage

    # ------------------------------------------------------------------
    def _detected(self) -> bool:
        return bool(self.rng.random() < self.coverage)

    def _on_transient_fault(self) -> None:
        if self.status is not self.status.OPERATIONAL:
            # Fault strikes a node that is already silent; it cannot corrupt
            # outputs (none are produced) and the restart wipes state.
            return
        if self._detected():
            self.fail_silent("detected transient fault")
        else:
            self.undetected_failure("non-covered transient fault")

    def _on_permanent_fault(self) -> None:
        if self.status is not self.status.OPERATIONAL:
            return
        if self._detected():
            # The restart's diagnosis will find the permanent fault and keep
            # the node down (NodeBase handles that via the flag).
            self.fail_silent("detected permanent fault")
        else:
            self.undetected_failure("non-covered permanent fault")


def make_fs_kernel_node(
    sim: Simulator,
    name: str,
    profile=None,
    rng: Optional[np.random.Generator] = None,
    trace: Optional[TraceRecorder] = None,
    network: Optional[NetworkInterface] = None,
    restart: Optional[RestartController] = None,
):
    """A kernel-backed *fail-silent* node.

    Identical detection machinery to the NLFT kernel node (double
    execution + comparison, EDMs, budget timers) but configured so that
    any detected error silences the node instead of recovering — the FS
    baseline of Section 3.2.1, built from the same parts, which makes the
    FS-vs-NLFT functional comparison apples-to-apples.
    """
    from ..kernel.scheduler import KernelConfig
    from .nlft_node import NlftKernelNode

    return NlftKernelNode(
        sim,
        name,
        profile=profile,
        rng=rng,
        trace=trace,
        network=network,
        restart=restart,
        config=KernelConfig(fail_silent_mode=True),
    )
