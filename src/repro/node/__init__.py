"""Node-level abstractions: FS and NLFT nodes, restart, duplex replication.

Implements the node semantics of Section 3.2.1 on the discrete-event
simulator, in two fidelities: behavioural nodes (Monte-Carlo twins of the
Markov models) and kernel-backed NLFT nodes where the outcome taxonomy
emerges from the real TEM machinery.
"""

from .base import NodeBase
from .duplex import DuplexGroup
from .failures import FailureKind, FailureRecord, NodeStatistics, NodeStatus
from .fs_node import FailSilentNode
from .nlft_node import NlftBehaviouralNode, NlftKernelNode
from .reintegration import RestartController
from .state_sync import RecoveryStatistics, StateRecoveryService

__all__ = [
    "DuplexGroup",
    "FailSilentNode",
    "FailureKind",
    "FailureRecord",
    "NlftBehaviouralNode",
    "NlftKernelNode",
    "NodeBase",
    "NodeStatistics",
    "NodeStatus",
    "RecoveryStatistics",
    "RestartController",
    "StateRecoveryService",
]
