"""Partner-state recovery over the event-triggered network segment.

Implements the paper's future-work proposal (Section 4): "... protocols
such as FlexRay [9] that may facilitate fast recovery of state data with
low communication overhead through special requests to the partner node in
the event-triggered part of the protocol".

Protocol
--------
Each replica runs a :class:`StateRecoveryService` bound to its network
interface and its task-state store:

1. a reintegrating node broadcasts a **state request** in the dynamic
   segment (high-priority event frame carrying its node id);
2. any operational partner that sees the request answers with a **state
   response**: the requested state words plus the store's CRC-16, so the
   transfer is protected *end to end* (Section 2.6) — on top of the frame
   CRC the bus already applies;
3. the requester verifies the checksum and commits the snapshot to its own
   store; on timeout it falls back to defaults (the paper's alternative:
   "obtain new data in the next cycle").

The service is deliberately independent of the node classes so it can be
composed with behavioural nodes, kernel nodes and tests alike.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..core.integrity import ChecksummedBlock, IntegrityError
from ..errors import ConfigurationError
from ..net.controller import NetworkInterface
from ..sim import PRIORITY_DEFAULT, EventHandle, Simulator, TraceRecorder

#: Default event-frame identifiers (low ids win dynamic-segment
#: arbitration, so recovery traffic has priority over diagnostics).
STATE_REQUEST_FRAME = 40
STATE_RESPONSE_FRAME = 41


def _encode_name(name: str) -> int:
    """Pack up to 4 ASCII characters of a node name into one word."""
    value = 0
    for char in name[:4].ljust(4):
        value = (value << 8) | (ord(char) & 0xFF)
    return value


@dataclasses.dataclass
class RecoveryStatistics:
    """Counters kept by every service instance."""

    requests_sent: int = 0
    requests_served: int = 0
    recoveries_completed: int = 0
    recovery_timeouts: int = 0
    integrity_rejections: int = 0


class StateRecoveryService:
    """One replica's endpoint of the state-recovery protocol.

    Parameters
    ----------
    sim / interface:
        Simulation substrate and the node's communication controller.
    node_name:
        Used to address requests/responses.
    get_state:
        Returns the node's current state words (called when serving a
        partner's request).
    set_state:
        Commits recovered state words (called when a verified response
        arrives).
    poll_period:
        How often the service checks for request/response frames
        (typically the communication-cycle length).
    timeout_cycles:
        Polls to wait for a response before falling back.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: NetworkInterface,
        node_name: str,
        get_state: Callable[[], List[int]],
        set_state: Callable[[List[int]], None],
        poll_period: int,
        timeout_cycles: int = 5,
        request_frame: int = STATE_REQUEST_FRAME,
        response_frame: int = STATE_RESPONSE_FRAME,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if poll_period <= 0:
            raise ConfigurationError("poll period must be positive")
        if timeout_cycles <= 0:
            raise ConfigurationError("timeout must be at least one cycle")
        self.sim = sim
        self.interface = interface
        self.node_name = node_name
        self._get_state = get_state
        self._set_state = set_state
        self.poll_period = poll_period
        self.timeout_cycles = timeout_cycles
        self.request_frame = request_frame
        self.response_frame = response_frame
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.stats = RecoveryStatistics()
        self._name_word = _encode_name(node_name)
        self._serving = False
        self._poll_event: Optional[EventHandle] = None
        self._pending_recovery: Optional[Callable[[bool], None]] = None
        self._recovery_polls_left = 0
        self._last_served_request: Optional[int] = None

    # ------------------------------------------------------------------
    # Serving side
    # ------------------------------------------------------------------
    def start_serving(self) -> None:
        """Begin answering partners' state requests (idempotent)."""
        if self._serving:
            return
        self._serving = True
        self._schedule_poll()

    def stop_serving(self) -> None:
        """Stop answering (node silent / shut down)."""
        self._serving = False

    def _schedule_poll(self) -> None:
        self._poll_event = self.sim.schedule_after(
            self.poll_period, self._poll,
            priority=PRIORITY_DEFAULT, label=f"{self.node_name}:state-sync",
        )

    def _poll(self) -> None:
        if self._serving:
            self._check_requests()
        if self._pending_recovery is not None:
            self._check_response()
        self._schedule_poll()

    def _check_requests(self) -> None:
        received = self.interface.read_rx(self.request_frame)
        if received is None:
            return
        if self._last_served_request == received.received_at:
            return  # already answered this request
        requester_word = received.frame.payload[0] if received.frame.payload else 0
        if requester_word == self._name_word:
            return  # our own request echoed back
        self._last_served_request = received.received_at
        state = [int(w) & 0xFFFF_FFFF for w in self._get_state()]
        block = ChecksummedBlock.seal(state)
        payload = [requester_word, len(state), *block.words, block.checksum]
        self.interface.send_event(self.response_frame, payload)
        self.stats.requests_served += 1
        self.trace.emit(
            self.sim.now, "state_sync.served", self.node_name,
            words=len(state),
        )

    # ------------------------------------------------------------------
    # Requesting side
    # ------------------------------------------------------------------
    def begin_recovery(self, on_done: Callable[[bool], None]) -> None:
        """Request state from any partner.

        *on_done(recovered)* fires with True when a verified snapshot was
        committed, False on timeout or integrity rejection (the caller then
        falls back to defaults / fresh inputs).
        """
        if self._pending_recovery is not None:
            raise ConfigurationError("a recovery is already in progress")
        self._pending_recovery = on_done
        self._recovery_polls_left = self.timeout_cycles
        self.stats.requests_sent += 1
        self.interface.send_event(self.request_frame, [self._name_word])
        self.trace.emit(self.sim.now, "state_sync.request", self.node_name)
        if self._poll_event is None or not self._poll_event.pending:
            self._schedule_poll()

    def _check_response(self) -> None:
        received = self.interface.read_fresh(
            self.response_frame, self.sim.now,
            max_age=self.poll_period * self.timeout_cycles,
        )
        if received is not None and received.frame.payload[:1] == (self._name_word,):
            payload = received.frame.payload
            count = int(payload[1])
            words = list(payload[2 : 2 + count])
            checksum = int(payload[2 + count])
            block = ChecksummedBlock(words=words, checksum=checksum)
            try:
                verified = block.verify()
            except IntegrityError:
                self.stats.integrity_rejections += 1
                self._finish_recovery(False)
                return
            self._set_state(verified)
            self.stats.recoveries_completed += 1
            self.trace.emit(
                self.sim.now, "state_sync.recovered", self.node_name,
                words=count, provider=received.frame.sender,
            )
            self._finish_recovery(True)
            return
        self._recovery_polls_left -= 1
        if self._recovery_polls_left <= 0:
            self.stats.recovery_timeouts += 1
            self.trace.emit(self.sim.now, "state_sync.timeout", self.node_name)
            self._finish_recovery(False)

    def _finish_recovery(self, success: bool) -> None:
        callback = self._pending_recovery
        self._pending_recovery = None
        if callback is not None:
            callback(success)
