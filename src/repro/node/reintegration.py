"""Restart and reintegration sequencing for shut-down nodes.

The paper's timing (Section 3.3):

* a fail-silent failure costs a hardware reset plus an off-line diagnostic
  test (~1.4 s) followed by OS restart and TDMA reintegration (~1.6 s) —
  3 s total, i.e. mu_R = 1200 repairs/hour;
* an omission failure only needs reintegration into the message schedule,
  at most 1.6 s, i.e. mu_OM = 2250 repairs/hour.

:class:`RestartController` runs these sequences on the simulator and invokes
a completion callback with the diagnosis verdict, so the owning node can
decide between reintegration and permanent shutdown.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.diagnosis import DIAGNOSIS_TICKS, REINTEGRATION_TICKS, OfflineDiagnosis
from ..errors import ConfigurationError
from ..sim import PRIORITY_KERNEL, Simulator, TraceRecorder


class RestartController:
    """Sequences fail-silent restarts and omission recoveries for one node.

    Parameters
    ----------
    sim:
        Time base.
    node_name:
        For traces.
    diagnosis:
        The off-line self-test model (duration + verdict).
    reintegration_ticks:
        OS restart + TDMA reintegration time (1.6 s by default).
    """

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        diagnosis: Optional[OfflineDiagnosis] = None,
        reintegration_ticks: int = REINTEGRATION_TICKS,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if reintegration_ticks <= 0:
            raise ConfigurationError("reintegration time must be positive")
        self.sim = sim
        self.node_name = node_name
        self.diagnosis = diagnosis if diagnosis is not None else OfflineDiagnosis()
        self.reintegration_ticks = reintegration_ticks
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._busy = False

    @property
    def busy(self) -> bool:
        """True while a restart/recovery sequence is in progress."""
        return self._busy

    @property
    def fail_silent_repair_ticks(self) -> int:
        """Total fail-silent repair time (diagnosis + reintegration)."""
        return self.diagnosis.duration_ticks + self.reintegration_ticks

    # ------------------------------------------------------------------
    def begin_restart(
        self,
        permanent_fault_present: bool,
        on_done: Callable[[bool], None],
    ) -> None:
        """Run the full fail-silent sequence (diagnosis + reintegration).

        *on_done* receives ``permanent_fault_found``; when True the node
        must stay down (Markov state 1), otherwise it reintegrates
        (back to state 0 at rate mu_R).
        """
        if self._busy:
            raise ConfigurationError(f"node {self.node_name!r} is already restarting")
        self._busy = True
        self.trace.emit(self.sim.now, "node.restart_begin", self.node_name)

        def diagnose() -> None:
            result = self.diagnosis.run(permanent_fault_present)
            if result.permanent_fault_found:
                self._busy = False
                self.trace.emit(
                    self.sim.now, "node.permanent_fault", self.node_name
                )
                on_done(True)
                return
            self.sim.schedule_after(
                self.reintegration_ticks,
                lambda: self._finish(on_done),
                priority=PRIORITY_KERNEL,
                label=f"{self.node_name}:reintegrate",
            )

        self.sim.schedule_after(
            self.diagnosis.duration_ticks,
            diagnose,
            priority=PRIORITY_KERNEL,
            label=f"{self.node_name}:diagnosis",
        )

    def begin_omission_recovery(self, on_done: Callable[[], None]) -> None:
        """Run the short omission-recovery sequence (reintegration only)."""
        if self._busy:
            raise ConfigurationError(f"node {self.node_name!r} is already recovering")
        self._busy = True
        self.trace.emit(self.sim.now, "node.omission_recovery", self.node_name)
        self.sim.schedule_after(
            self.reintegration_ticks,
            lambda: self._finish(lambda _found=None: on_done()),
            priority=PRIORITY_KERNEL,
            label=f"{self.node_name}:omission-recovery",
        )

    def _finish(self, on_done: Callable[[bool], None]) -> None:
        self._busy = False
        self.trace.emit(self.sim.now, "node.reintegrated", self.node_name)
        on_done(False)
