"""Light-weight NLFT nodes (Section 3.2.1).

Two implementations with identical external semantics:

* :class:`NlftBehaviouralNode` draws the outcome of each detected transient
  directly from the paper's conditional probabilities (P_T / P_OM / P_FS).
  It is the Monte-Carlo twin of the analytical Markov models — fast enough
  for year-long simulated missions — and is used to *cross-validate* the
  analytic results (experiment E8).

* :class:`NlftKernelNode` hosts a full simulated real-time kernel running
  TEM.  Fault arrivals are turned into architectural effects via a
  :class:`~repro.cpu.profiles.ManifestationProfile`, and the node-level
  outcome (masked / omission / fail-silent / undetected) **emerges** from
  the kernel machinery: comparison and voting, budget timers, deadline
  checks and the kernel-error policy.  It demonstrates that the mechanism
  stack of Section 2 actually produces the behaviour the reliability models
  assume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.diagnosis import PermanentFaultSuspector
from ..cpu.profiles import FaultEffect, ManifestationProfile
from ..errors import ConfigurationError
from ..kernel.scheduler import KernelConfig, Scheduler
from ..kernel.task import TaskSpec
from ..net.controller import NetworkInterface
from ..sim import PRIORITY_DEFAULT, Simulator, TraceRecorder
from ..types import Result
from .base import NodeBase
from .failures import NodeStatus
from .reintegration import RestartController


class NlftBehaviouralNode(NodeBase):
    """NLFT node with sampled outcomes (the Markov models' Monte-Carlo twin).

    Parameters
    ----------
    coverage, p_tem, p_omission, p_fail_silent:
        The paper's parameters; the three conditional probabilities must sum
        to one.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        coverage: float = 0.99,
        p_tem: float = 0.90,
        p_omission: float = 0.05,
        p_fail_silent: float = 0.05,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        network: Optional[NetworkInterface] = None,
        restart: Optional[RestartController] = None,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ConfigurationError(f"coverage must be in [0,1], got {coverage}")
        total = p_tem + p_omission + p_fail_silent
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"P_T+P_OM+P_FS must sum to 1, got {total}")
        super().__init__(sim, name, rng=rng, trace=trace, network=network, restart=restart)
        self.coverage = coverage
        self.p_tem = p_tem
        self.p_omission = p_omission
        self.p_fail_silent = p_fail_silent

    def _on_transient_fault(self) -> None:
        if self.status is not NodeStatus.OPERATIONAL:
            return
        if self.rng.random() >= self.coverage:
            self.undetected_failure("non-covered transient fault")
            return
        outcome = self.rng.choice(
            3, p=[self.p_tem, self.p_omission, self.p_fail_silent]
        )
        if outcome == 0:
            self.stats.masked += 1
            self.trace.emit(self.sim.now, "node.masked", self.name)
        elif outcome == 1:
            self.omission_failure("transient not recoverable before deadline")
        else:
            self.fail_silent("transient detected during kernel execution")

    def _on_permanent_fault(self) -> None:
        if self.status is not NodeStatus.OPERATIONAL:
            return
        if self.rng.random() >= self.coverage:
            self.undetected_failure("non-covered permanent fault")
            return
        # TEM cannot mask a permanent fault: re-execution keeps failing and
        # the repeated-error suspicion shuts the node down for diagnosis.
        self.fail_silent("repeated errors -> suspected permanent fault")


class NlftKernelNode(NodeBase):
    """NLFT node backed by the full simulated kernel with TEM.

    Fault arrivals are mapped to architectural effects by *profile*; all
    higher-level behaviour emerges from the kernel.  Use :meth:`add_task` /
    :meth:`start` to configure the workload before running the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: Optional[ManifestationProfile] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        network: Optional[NetworkInterface] = None,
        restart: Optional[RestartController] = None,
        suspector: Optional[PermanentFaultSuspector] = None,
        config: Optional[KernelConfig] = None,
    ) -> None:
        super().__init__(sim, name, rng=rng, trace=trace, network=network, restart=restart)
        self.profile = profile if profile is not None else ManifestationProfile()
        self.kernel = Scheduler(
            sim, name=f"{name}.kernel", trace=self.trace, rng=self.rng, config=config
        )
        self.suspector = suspector if suspector is not None else PermanentFaultSuspector()
        self._sinks: dict = {}
        self._wire_kernel()
        self._permanent_disturbance = False

    # ------------------------------------------------------------------
    # Workload configuration (delegating to the kernel)
    # ------------------------------------------------------------------
    def add_task(self, spec: TaskSpec, executable, input_provider=None, on_result=None) -> None:
        """Register a task on this node's kernel.

        *on_result*, when given, receives every delivered result of this
        task (``on_result(result)``) — the *write output* phase of the task
        model, typically publishing to the network interface.
        """
        self.kernel.add_task(spec, executable, input_provider)
        if on_result is not None:
            self._sinks[spec.name] = on_result

    def start(self) -> None:
        """Start the kernel's job releases."""
        self.kernel.start()

    # ------------------------------------------------------------------
    def _wire_kernel(self) -> None:
        self.kernel.on_deliver = self._job_delivered
        self.kernel.on_omission = self._job_omitted
        self.kernel.on_kernel_error = self._kernel_error
        self.kernel.on_undetected_output = self._undetected_output

    def _job_delivered(self, task: TaskSpec, job, result: Result) -> None:
        # Suspicion bookkeeping: was this job affected by an error?
        had_error = job.tem is not None and job.tem.errors_detected > 0
        if had_error:
            self.stats.masked += 1
        sink = self._sinks.get(task.name)
        if sink is not None and self.status is NodeStatus.OPERATIONAL:
            sink(result)
        if self.suspector.record_job(had_error):
            self.fail_silent("repeated errors -> suspected permanent fault")

    def _job_omitted(self, task: TaskSpec, job, reason: str) -> None:
        if self.suspector.record_job(True):
            self.fail_silent(f"repeated errors ({reason})")
            return
        self.omission_failure(reason)

    def _kernel_error(self, mechanism: str) -> None:
        self.fail_silent(f"kernel error ({mechanism})")

    def _undetected_output(self, task: TaskSpec, job, result: Result) -> None:
        self.undetected_failure(f"unchecked output of {task.name}")

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _on_transient_fault(self) -> None:
        if self.status is not NodeStatus.OPERATIONAL:
            return
        effect = self.profile.sample(self.rng)
        disposition = self.kernel.apply_fault_effect(effect)
        self.trace.emit(
            self.sim.now, "node.fault_effect", self.name,
            effect=effect.value, disposition=disposition,
        )

    def _on_permanent_fault(self) -> None:
        if self.status is NodeStatus.DOWN_PERMANENT:
            return
        # A stuck-at fault corrupts every subsequent execution; model it as
        # a recurring disturbance until the suspicion machinery escalates.
        if not self._permanent_disturbance:
            self._permanent_disturbance = True
            self._disturb()

    def _disturb(self) -> None:
        if not self.permanent_fault_present or self.status is NodeStatus.DOWN_PERMANENT:
            return
        if self.status is NodeStatus.OPERATIONAL:
            effect = FaultEffect.WRONG_RESULT if self.rng.random() < 0.7 else (
                FaultEffect.HARDWARE_EXCEPTION
            )
            self.kernel.apply_fault_effect(effect)
        # Re-strike roughly every shortest period so every job is affected.
        shortest = min(
            (entry.spec.period for entry in self.kernel._tasks.values()),
            default=None,
        )
        if shortest is not None:
            # PRIORITY_DEFAULT deliberately: the re-strike has always fired
            # after same-tick kernel releases; recorded traces depend on it.
            self.sim.schedule_after(
                shortest, self._disturb,
                priority=PRIORITY_DEFAULT, label=f"{self.name}:stuck-at",
            )

    # ------------------------------------------------------------------
    # Host hooks
    # ------------------------------------------------------------------
    def _host_shutdown(self) -> None:
        self.kernel.shutdown()

    def _host_resume(self) -> None:
        self.suspector.reset()
        self.kernel.restart()
