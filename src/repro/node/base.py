"""Common node machinery shared by FS and NLFT node implementations.

A node couples a host (behavioural model or a full simulated kernel), an
optional network interface, a restart controller and failure bookkeeping.
Concrete subclasses implement :meth:`NodeBase.inject_fault`, the entry point
the Poisson fault injector calls.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..faults.types import FaultType
from ..net.controller import NetworkInterface
from ..sim import Simulator, TraceRecorder
from .failures import FailureKind, FailureRecord, NodeStatistics, NodeStatus
from .reintegration import RestartController

#: Observer signature: (node, old_status, new_status).
StatusObserver = Callable[["NodeBase", NodeStatus, NodeStatus], None]


class NodeBase:
    """Shared state machine for computer nodes.

    Parameters
    ----------
    sim / rng / trace:
        Simulation substrate; the rng drives this node's stochastic fault
        outcomes only.
    network:
        Optional communication controller; silenced and resumed in lockstep
        with the node status (the fail-silent boundary of Figure 1).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        network: Optional[NetworkInterface] = None,
        restart: Optional[RestartController] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.network = network
        self.restart_controller = (
            restart
            if restart is not None
            else RestartController(sim, name, trace=self.trace)
        )
        self.status = NodeStatus.OPERATIONAL
        self.stats = NodeStatistics()
        self.permanent_fault_present = False
        self._observers: List[StatusObserver] = []
        self._undetected_observers: List[Callable[["NodeBase"], None]] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: StatusObserver) -> None:
        """Register a system-level observer of status changes."""
        self._observers.append(observer)

    def add_undetected_observer(self, observer: Callable[["NodeBase"], None]) -> None:
        """Register an observer of *undetected* (non-covered) failures.

        These do not change the node's status — the node does not know
        anything happened — but the system-level analysis applies the
        paper's pessimistic whole-system-failure rule, so monitors need the
        notification."""
        self._undetected_observers.append(observer)

    def _set_status(self, status: NodeStatus) -> None:
        if status is self.status:
            return
        old = self.status
        self.status = status
        self.trace.emit(
            self.sim.now, "node.status", self.name,
            old=old.value, new=status.value,
        )
        if self.network is not None:
            if status.provides_service:
                self.network.resume()
            else:
                self.network.go_silent()
        for observer in self._observers:
            observer(self, old, status)

    @property
    def operational(self) -> bool:
        """True when the node currently provides service."""
        return self.status.provides_service

    # ------------------------------------------------------------------
    # Fault entry point (Poisson injector victim)
    # ------------------------------------------------------------------
    def inject_fault(self, fault_type: FaultType) -> None:
        """Deliver one activated fault to this node."""
        if self.status is NodeStatus.DOWN_PERMANENT:
            return  # dead hardware cannot fail again
        if fault_type is FaultType.PERMANENT:
            self.stats.permanent_faults += 1
            self.permanent_fault_present = True
            self._on_permanent_fault()
        else:
            self.stats.transient_faults += 1
            self._on_transient_fault()

    def _on_transient_fault(self) -> None:
        raise NotImplementedError

    def _on_permanent_fault(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Failure transitions shared by node types
    # ------------------------------------------------------------------
    def fail_silent(self, detail: str = "") -> None:
        """Enter the fail-silent sequence (restart + diagnosis)."""
        if self.status in (NodeStatus.RESTARTING, NodeStatus.DOWN_PERMANENT):
            return
        self.stats.record(
            FailureRecord(self.sim.now, self.name, FailureKind.FAIL_SILENT, detail)
        )
        self._enter_restart()

    def _enter_restart(self) -> None:
        self._host_shutdown()
        self._set_status(NodeStatus.RESTARTING)
        self.restart_controller.begin_restart(
            self.permanent_fault_present, self._restart_done
        )

    def _restart_done(self, permanent_found: bool) -> None:
        if permanent_found:
            self.stats.record(
                FailureRecord(
                    self.sim.now, self.name, FailureKind.PERMANENT_SHUTDOWN,
                    "diagnosis found permanent fault",
                )
            )
            self._set_status(NodeStatus.DOWN_PERMANENT)
            return
        self.stats.restarts_completed += 1
        self._host_resume()
        self._set_status(NodeStatus.OPERATIONAL)

    def omission_failure(self, detail: str = "") -> None:
        """Enter the short omission-recovery sequence."""
        if self.status is not NodeStatus.OPERATIONAL:
            return
        self.stats.record(
            FailureRecord(self.sim.now, self.name, FailureKind.OMISSION, detail)
        )
        self._set_status(NodeStatus.OMITTING)
        self.restart_controller.begin_omission_recovery(self._omission_done)

    def _omission_done(self) -> None:
        if self.permanent_fault_present:
            # A permanent fault surfaced as an omission keeps erroring; the
            # suspicion machinery will escalate on the next jobs, but if the
            # node is behavioural we escalate directly to restart.
            self._enter_restart()
            return
        self._host_resume()
        self._set_status(NodeStatus.OPERATIONAL)

    def undetected_failure(self, detail: str = "") -> None:
        """A non-covered error escaped: wrong output without indication.

        The node itself keeps running (it does not know anything happened);
        system-level observers apply the paper's pessimistic rule (whole-
        system failure).
        """
        self.stats.record(
            FailureRecord(self.sim.now, self.name, FailureKind.UNDETECTED, detail)
        )
        for observer in self._undetected_observers:
            observer(self)

    # ------------------------------------------------------------------
    # Host hooks (kernel-backed nodes override)
    # ------------------------------------------------------------------
    def _host_shutdown(self) -> None:
        """Stop the host's task execution (default: nothing to stop)."""

    def _host_resume(self) -> None:
        """Resume the host's task execution after reintegration."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.status.value})"
