"""Node failure-mode taxonomy and bookkeeping (Section 3.2.1).

The paper's node semantics:

* **FS node** — any detected error: fail-silent failure (silent, restart,
  diagnose, reintegrate if transient / stay down if permanent).
* **NLFT node** — detected transient errors are masked (P_T), cause an
  omission failure (P_OM) or a fail-silent failure (P_FS); permanents end in
  a permanent shutdown after diagnosis.
* Both — a *non-covered* error escapes all EDMs; the paper pessimistically
  charges it as a failure of the entire system.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List


class NodeStatus(enum.Enum):
    """Operational state of one node."""

    OPERATIONAL = "operational"
    #: Delivering nothing this instant; quick reintegration in progress.
    OMITTING = "omitting"
    #: Fail-silent: restarting + off-line diagnosis.
    RESTARTING = "restarting"
    #: Diagnosis found a permanent fault: down until external repair.
    DOWN_PERMANENT = "down_permanent"

    @property
    def provides_service(self) -> bool:
        """True when the node currently delivers results."""
        return self is NodeStatus.OPERATIONAL


class FailureKind(enum.Enum):
    """What kind of node-level failure occurred."""

    OMISSION = "omission"
    FAIL_SILENT = "fail_silent"
    PERMANENT_SHUTDOWN = "permanent_shutdown"
    #: Non-covered error: wrong output delivered without any indication.
    UNDETECTED = "undetected"


@dataclasses.dataclass(frozen=True)
class FailureRecord:
    """One node-level failure occurrence."""

    time: int
    node: str
    kind: FailureKind
    detail: str = ""


@dataclasses.dataclass
class NodeStatistics:
    """Counters kept by every node for campaign evaluation."""

    transient_faults: int = 0
    permanent_faults: int = 0
    masked: int = 0
    omissions: int = 0
    fail_silent: int = 0
    undetected: int = 0
    restarts_completed: int = 0
    failures: List[FailureRecord] = dataclasses.field(default_factory=list)

    def record(self, record: FailureRecord) -> None:
        self.failures.append(record)
        if record.kind is FailureKind.OMISSION:
            self.omissions += 1
        elif record.kind is FailureKind.FAIL_SILENT:
            self.fail_silent += 1
        elif record.kind is FailureKind.UNDETECTED:
            self.undetected += 1

    @property
    def detected_errors(self) -> int:
        """Errors that were detected and handled (masked or failed safely)."""
        return self.masked + self.omissions + self.fail_silent
