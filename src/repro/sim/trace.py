"""Structured trace recording for simulation runs.

Every interesting occurrence (job release, preemption, fault injection, EDM
detection, vote, omission, node restart, bus frame, ...) is recorded as a
:class:`TraceEvent`.  Traces serve three purposes:

* tests assert on exact event sequences (e.g. the four TEM scenarios of the
  paper's Figure 3);
* campaign runners classify run outcomes from the trace;
* the experiment drivers render human-readable timelines.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    Attributes
    ----------
    time:
        Simulated time in ticks.
    category:
        Dot-separated event kind, e.g. ``"kernel.preempt"``, ``"tem.vote"``,
        ``"fault.inject"``, ``"node.fail_silent"``.
    source:
        Name of the emitting component (node, task, bus, ...).
    details:
        Free-form payload; values should be small and printable.
    """

    time: int
    category: str
    source: str
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def matches(self, category: str) -> bool:
        """True if this event's category equals *category* or is nested
        beneath it (``"tem"`` matches ``"tem.vote"``)."""
        return self.category == category or self.category.startswith(category + ".")

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:>12d}] {self.category:<24s} {self.source:<16s} {payload}"


class TraceRecorder:
    """Collects :class:`TraceEvent` objects and supports simple queries.

    A recorder may be disabled (``enabled=False``) to make large campaigns
    cheap; emit calls then do nothing.  Listeners may be attached to react to
    events as they are recorded (used by outcome classifiers).
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        # A deque with maxlen makes capacity trimming O(1) per emit — the
        # old list backing paid an O(n) ``del`` slice on every overflowing
        # emit, which made bounded traces *more* expensive than unbounded
        # ones on long campaigns.
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._capacity = capacity
        self._listeners: List[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    def emit(self, time: int, category: str, source: str, **details: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled and not self._listeners:
            return
        event = TraceEvent(time=time, category=category, source=source, details=details)
        if self.enabled:
            self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Attach a callable invoked for every emitted event."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in emission order (a fresh list)."""
        return list(self._events)

    def select(self, category: str, source: Optional[str] = None) -> List[TraceEvent]:
        """Events whose category matches *category* (prefix semantics)."""
        return [
            e
            for e in self._events
            if e.matches(category) and (source is None or e.source == source)
        ]

    def count(self, category: str, source: Optional[str] = None) -> int:
        """Number of events matching *category* / *source*."""
        return len(self.select(category, source))

    def last(self, category: str) -> Optional[TraceEvent]:
        """Most recent event matching *category*, or None."""
        for event in reversed(self._events):
            if event.matches(category):
                return event
        return None

    def clear(self) -> None:
        """Drop all recorded events (listeners stay attached)."""
        self._events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def render(self, category: Optional[str] = None) -> str:
        """Human-readable multi-line rendering (optionally filtered)."""
        events = self._events if category is None else self.select(category)
        return "\n".join(str(e) for e in events)
