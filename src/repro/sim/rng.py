"""Named, reproducible random-number streams.

Fault-injection experiments must be repeatable, and adding a new random
consumer must not perturb the draws seen by existing consumers.  Both
properties are achieved by deriving an *independent* child generator per
named stream from a single root seed (numpy's ``SeedSequence.spawn``
machinery via per-name entropy), instead of sharing one generator.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("faults")
    >>> b = streams.get("workload")
    >>> a is streams.get("faults")
    True
    >>> a is not b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The stream's seed sequence mixes the root seed with a CRC32 of the
        name, so the draws of a stream depend only on (root seed, name) —
        never on creation order or on other streams.
        """
        stream = self._streams.get(name)
        if stream is None:
            entropy = np.random.SeedSequence([self._seed, zlib.crc32(name.encode("utf-8"))])
            stream = np.random.Generator(np.random.PCG64(entropy))
            self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new :class:`RandomStreams` for an independent replica.

        Used by campaign runners: replica *i* gets ``streams.fork(i)`` so that
        every replica is independent yet the whole campaign is reproducible.
        """
        return RandomStreams(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFF_FFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
