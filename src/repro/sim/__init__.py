"""Discrete-event simulation substrate.

This package provides the deterministic time base on which the simulated
processors (:mod:`repro.cpu`), real-time kernels (:mod:`repro.kernel`),
communication bus (:mod:`repro.net`) and fault injectors (:mod:`repro.faults`)
execute.
"""

from .events import EventHandle
from .rng import RandomStreams
from .simulator import (
    PRIORITY_DEFAULT,
    PRIORITY_FAULT,
    PRIORITY_HARDWARE,
    PRIORITY_KERNEL,
    PRIORITY_OBSERVER,
    Simulator,
)
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "EventHandle",
    "RandomStreams",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "PRIORITY_DEFAULT",
    "PRIORITY_FAULT",
    "PRIORITY_HARDWARE",
    "PRIORITY_KERNEL",
    "PRIORITY_OBSERVER",
]
