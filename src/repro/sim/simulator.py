"""A deterministic discrete-event simulation (DES) engine.

The engine is the substrate on which the simulated processors, real-time
kernels, communication bus and fault injectors run.  It is a classic
event-calendar design:

* time is an integer tick counter (microseconds, see :mod:`repro.units`);
* events are kept in a binary heap keyed by ``(time, priority, seq)``;
* executing an event may schedule or cancel further events.

Determinism matters for reproducing fault-injection campaigns: two runs with
the same seed and the same injected fault list produce identical traces.
Simultaneous events are ordered first by an explicit priority class (e.g.
fault injections fire before kernel ticks so a fault "present at time t" is
visible to the tick at t) and then by scheduling order.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError
from ..obs import metrics as obs_metrics
from .events import EventHandle, _QueueEntry

#: Priority classes for simultaneous events (lower fires first).
PRIORITY_FAULT = 0
PRIORITY_HARDWARE = 1
PRIORITY_KERNEL = 2
PRIORITY_DEFAULT = 5
PRIORITY_OBSERVER = 9


class Simulator:
    """Discrete-event simulator with cancellable events.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(10, lambda: fired.append(sim.now))
    >>> _ = sim.schedule_after(3, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [3, 10]
    """

    def __init__(self) -> None:
        self._now = 0
        self._heap: list[_QueueEntry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events fired so far (for diagnostics/tests)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute tick *time*.

        Raises :class:`SimulationError` when *time* lies in the past.
        Scheduling at the current time is allowed; the event fires within the
        current :meth:`run` pass (after all earlier-priority events at the
        same instant).
        """
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, callback, label)
        self._push(handle, priority)
        return handle

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* after *delay* ticks from now."""
        delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def _push(self, handle: EventHandle, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, _QueueEntry(handle.time, priority, self._seq, handle))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next pending event lies strictly after
            *until* and advance the clock to *until*.  If omitted, run until
            the calendar is empty.
        max_events:
            Safety valve: raise :class:`SimulationError` after this many
            events (guards against accidental infinite self-scheduling).

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        wall_started = perf_counter()  # reprolint: disable=DET001 -- obs instrumentation: one host-timer sample per run() pass; never read by simulation logic
        try:
            while self._heap:
                if self._stopped:
                    break
                entry = self._heap[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                handle = entry.handle
                if not handle.pending:
                    continue
                if handle.time < self._now:  # pragma: no cover - internal invariant
                    raise SimulationError("event calendar corrupted: time went backwards")
                self._now = handle.time
                handle._fire()
                self._events_executed += 1
                executed_this_run += 1
                if max_events is not None and executed_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; suspected runaway event loop"
                    )
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
            # Instrumentation stays out of the per-event loop: one timer
            # sample and one counter add per run() pass, however long.
            obs_metrics.observe_duration("sim.run", perf_counter() - wall_started)  # reprolint: disable=DET001 -- obs instrumentation: duration feeds the metrics registry only
            obs_metrics.inc("sim.events", executed_this_run)
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            handle = entry.handle
            if not handle.pending:
                continue
            self._now = handle.time
            handle._fire()
            self._events_executed += 1
            return True
        return False

    def stop(self) -> None:
        """Request that the current :meth:`run` pass stop after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> Iterable[EventHandle]:
        """Yield pending event handles (unordered; for tests/diagnostics)."""
        return (e.handle for e in self._heap if e.handle.pending)

    def pending_count(self) -> int:
        """Number of events still pending on the calendar."""
        return sum(1 for _ in self.pending_events())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now}, pending={self.pending_count()})"
