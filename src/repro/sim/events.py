"""Event primitives for the discrete-event simulation engine.

Events are scheduled on a :class:`~repro.sim.simulator.Simulator` and fire a
callback at a given simulated time.  Scheduling returns an
:class:`EventHandle` that supports cancellation, which the preemptive
scheduler uses heavily (a job-completion event is cancelled and re-scheduled
whenever the job is preempted or a fault forces a re-execution).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.

    Ordering is (time, priority, seq): earlier time first; among simultaneous
    events a lower ``priority`` number fires first; ``seq`` preserves FIFO
    order of equal-priority simultaneous events, making runs deterministic.
    """

    time: int
    priority: int
    seq: int
    handle: "EventHandle" = dataclasses.field(compare=False)


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Attributes
    ----------
    time:
        Absolute simulated time (ticks) at which the event fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Free-form description used in traces and error messages.
    """

    __slots__ = ("time", "callback", "label", "_cancelled", "_fired")

    def __init__(self, time: int, callback: Callable[[], Any], label: str = "") -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if the event was still pending.

        Cancelling an already-fired or already-cancelled event is a no-op
        (returns False); this tolerance simplifies scheduler bookkeeping.
        """
        if not self.pending:
            return False
        self._cancelled = True
        return True

    def _fire(self) -> None:
        self._fired = True
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time}, {state}, label={self.label!r})"
