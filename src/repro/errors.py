"""Exception hierarchy for the NLFT reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class SchedulingError(ReproError):
    """Raised for invalid task sets or scheduler misuse."""


class DeadlineMissedError(SchedulingError):
    """Raised when a job overruns its deadline and no recovery is possible.

    The NLFT kernel normally converts deadline overruns into *omission
    failures* rather than raising; this exception signals an internal
    inconsistency (e.g. a job observed past its deadline without the budget
    timer having fired).
    """


class MachineError(ReproError):
    """Base class for errors of the simulated COTS processor."""


class MachineHalted(MachineError):
    """Raised when an operation is attempted on a halted processor."""


class ProgramError(MachineError):
    """Raised for malformed mini-ISA programs (assembler or loader errors)."""


class ModelError(ReproError):
    """Raised for structurally invalid reliability models."""


class NotAbsorbingError(ModelError):
    """Raised when an absorbing-chain analysis is applied to a CTMC
    without absorbing states reachable from the initial distribution."""


class ConfigurationError(ReproError):
    """Raised for invalid parameter values or inconsistent configurations."""


class NetworkError(ReproError):
    """Raised for communication-schedule violations on the simulated bus."""
