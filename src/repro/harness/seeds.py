"""Deterministic per-trial seed derivation for resumable campaigns.

Every trial of a campaign gets its own RNG seed derived purely from the
campaign's master seed and the trial's index.  This is what makes the
execution engine's ordering irrelevant: a trial computes the same result
whether it runs first or last, serially or on worker 7 of 8, in the
original run or after a resume — the precondition for the checkpoint
journal's bit-identical-resume guarantee.

The derivation is a SplitMix64 finaliser over a Weyl-sequence offset, the
construction used by ``java.util.SplittableRandom`` and the seeding path of
numpy's ``Philox``/``PCG64`` generators.  The finaliser is a bijection on
64-bit integers, so for a fixed master seed two distinct trial ids (taken
modulo 2**64) can never collide.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: 2**64 / golden ratio — the SplitMix64 Weyl increment.
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """SplitMix64 finaliser (Stafford's Mix13 variant) — a 64-bit bijection."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(master_seed: int, trial_id: int) -> int:
    """Derive trial ``trial_id``'s RNG seed from the campaign master seed.

    Deterministic, order-independent, and collision-free: for a fixed
    master seed, distinct trial ids below 2**64 map to distinct seeds.
    The returned value fits ``numpy.random.default_rng`` and
    ``random.Random`` alike.
    """
    if trial_id < 0:
        raise ValueError(f"trial_id must be non-negative, got {trial_id}")
    # Scramble the master first so nearby master seeds produce unrelated
    # streams, then walk the Weyl sequence to the trial's slot.
    origin = _mix64(master_seed)
    return _mix64(origin + ((trial_id + 1) * _GOLDEN_GAMMA))
