"""JSONL checkpoint journal for resumable fault-injection campaigns.

One journal file per campaign.  The first line is a header identifying the
campaign (name, master seed, planned trial count); every subsequent line
records one finished trial — either its simulated outcome or the harness
failure that consumed it.  Appends are flushed line-by-line so the journal
survives a SIGKILL of the campaign process: on resume, every line the OS
accepted is still there and only the in-flight trial is re-run.

Because per-trial seeds are derived from ``(master_seed, trial_id)`` (see
:mod:`repro.harness.seeds`) and trials are independent, replaying the
journal and running only the missing trial ids reproduces the uninterrupted
campaign bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import ConfigurationError

_HEADER_KIND = "header"
_TRIAL_KIND = "trial"

#: Journal schema version (bump on incompatible format changes).
JOURNAL_VERSION = 1


@dataclasses.dataclass(frozen=True)
class JournalHeader:
    """Identity of the campaign a journal belongs to.

    A resume refuses to mix journals across campaigns: replaying trials
    recorded under a different master seed or trial count would silently
    corrupt the statistics.
    """

    campaign: str
    master_seed: int
    total_trials: int
    version: int = JOURNAL_VERSION

    def to_json(self) -> "dict[str, object]":
        return {
            "kind": _HEADER_KIND,
            "campaign": self.campaign,
            "master_seed": self.master_seed,
            "total_trials": self.total_trials,
            "version": self.version,
        }

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "JournalHeader":
        return cls(
            campaign=str(data["campaign"]),
            master_seed=int(data["master_seed"]),
            total_trials=int(data["total_trials"]),
            version=int(data.get("version", JOURNAL_VERSION)),
        )


@dataclasses.dataclass(frozen=True)
class TrialEntry:
    """One journal line: a finished trial."""

    trial_id: int
    status: str  # "ok" | "harness_timeout" | "harness_crash"
    result: Optional[dict] = None  # simulated outcome (status == "ok")
    detail: str = ""  # harness-failure description otherwise
    attempts: int = 1
    #: Per-trial metrics snapshot (:mod:`repro.obs.metrics` schema).
    #: Journaling it makes resumed campaigns aggregate to the identical
    #: metrics totals as uninterrupted ones: replayed trials contribute
    #: their recorded snapshot instead of being re-run (and therefore are
    #: never double-counted).
    metrics: Optional[dict] = None
    #: Trial wall-clock in seconds (diagnostics only; never compared).
    duration_s: Optional[float] = None

    @property
    def is_harness_failure(self) -> bool:
        return self.status != "ok"

    def to_json(self) -> "dict[str, object]":
        data: "dict[str, object]" = {
            "kind": _TRIAL_KIND,
            "trial_id": self.trial_id,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.result is not None:
            data["result"] = self.result
        if self.detail:
            data["detail"] = self.detail
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.duration_s is not None:
            data["duration_s"] = round(self.duration_s, 6)
        return data

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "TrialEntry":
        return cls(
            trial_id=int(data["trial_id"]),
            status=str(data["status"]),
            result=data.get("result"),  # type: ignore[arg-type]
            detail=str(data.get("detail", "")),
            attempts=int(data.get("attempts", 1)),
            metrics=data.get("metrics"),  # type: ignore[arg-type]
            duration_s=(
                float(data["duration_s"])  # type: ignore[arg-type]
                if data.get("duration_s") is not None else None
            ),
        )


class CampaignJournal:
    """Append-only JSONL journal with crash-tolerant loading.

    Opening an existing journal validates its header against the campaign
    being (re)run and loads every completed trial; a truncated final line
    (the campaign was killed mid-write) is tolerated and simply re-run.
    """

    def __init__(self, path: Union[str, Path], header: JournalHeader) -> None:
        self.path = Path(path)
        self.header = header
        self.entries: Dict[int, TrialEntry] = {}
        existing = self._load_existing()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        if not existing:
            self._write_line(header.to_json())

    # ------------------------------------------------------------------
    def _load_existing(self) -> bool:
        """Replay the journal if present; return whether a header existed."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return False
        stored: Optional[JournalHeader] = None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    # Torn final line from a killed writer: stop replaying.
                    break
                kind = data.get("kind")
                if kind == _HEADER_KIND:
                    stored = JournalHeader.from_json(data)
                elif kind == _TRIAL_KIND:
                    entry = TrialEntry.from_json(data)
                    self.entries[entry.trial_id] = entry
        if stored is None:
            raise ConfigurationError(
                f"journal {self.path} has no valid header; refusing to resume "
                "from a corrupt or foreign file"
            )
        if (
            stored.campaign != self.header.campaign
            or stored.master_seed != self.header.master_seed
            or stored.total_trials != self.header.total_trials
        ):
            raise ConfigurationError(
                f"journal {self.path} belongs to campaign "
                f"{stored.campaign!r} (seed {stored.master_seed}, "
                f"{stored.total_trials} trials) but this run is "
                f"{self.header.campaign!r} (seed {self.header.master_seed}, "
                f"{self.header.total_trials} trials); resume must use the "
                "same campaign configuration"
            )
        return True

    # ------------------------------------------------------------------
    def _write_line(self, data: "dict[str, object]") -> None:
        self._handle.write(json.dumps(data, separators=(",", ":")) + "\n")
        # Flush to the OS so a SIGKILL of this process loses at most the
        # in-flight trial, never an already-recorded one.
        self._handle.flush()

    def append(self, entry: TrialEntry) -> None:
        """Record one finished trial (idempotent per trial id on resume)."""
        self.entries[entry.trial_id] = entry
        self._write_line(entry.to_json())

    def completed_ids(self) -> "set[int]":
        return set(self.entries)

    def close(self) -> None:
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except (OSError, ValueError):
            pass
        self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
