"""JSONL checkpoint journal for resumable fault-injection campaigns.

One journal file per campaign.  The first line is a header identifying the
campaign (name, master seed, planned trial count); every subsequent line
records one finished trial — either its simulated outcome or the harness
failure that consumed it.  Appends are flushed line-by-line so the journal
survives a SIGKILL of the campaign process: on resume, every line the OS
accepted is still there and only the in-flight trial is re-run.  ``fsync``
is batched (``fsync_interval`` appends per sync, plus one on close), which
additionally bounds what an *operating-system* crash can lose without
paying a disk sync per trial.

Because per-trial seeds are derived from ``(master_seed, trial_id)`` (see
:mod:`repro.harness.seeds`) and trials are independent, replaying the
journal and running only the missing trial ids reproduces the uninterrupted
campaign bit-for-bit.

Corruption tolerance (valid-prefix salvage)
-------------------------------------------
A journal written by a process that was killed mid-write — or whose file
was damaged afterwards — may end in a torn line, raw garbage bytes
(including invalid UTF-8), or well-formed JSON that is not a journal
record.  Loading such a file recovers the *valid prefix*: every intact
line up to the first damaged one is replayed, the damaged tail is moved
byte-for-byte into a quarantine file (``<journal>.corrupt``) for post
mortem, and the journal file itself is truncated back to the valid prefix
so subsequent appends produce a well-formed file again.  The trials whose
records were lost to the tail are simply re-run on resume; deterministic
per-trial seeding makes their re-executed results identical, so a salvaged
resume still reproduces the uninterrupted campaign bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import ConfigurationError

_HEADER_KIND = "header"
_TRIAL_KIND = "trial"

#: Journal schema version (bump on incompatible format changes).
JOURNAL_VERSION = 1

#: Default number of appends between ``fsync`` calls (1 = sync every
#: append).  Line *flushes* happen on every append regardless — batching
#: only affects what an OS crash (not a process kill) can lose.
DEFAULT_FSYNC_INTERVAL = 32


@dataclasses.dataclass(frozen=True)
class JournalHeader:
    """Identity of the campaign a journal belongs to.

    A resume refuses to mix journals across campaigns: replaying trials
    recorded under a different master seed or trial count would silently
    corrupt the statistics.
    """

    campaign: str
    master_seed: int
    total_trials: int
    version: int = JOURNAL_VERSION

    def to_json(self) -> "dict[str, object]":
        return {
            "kind": _HEADER_KIND,
            "campaign": self.campaign,
            "master_seed": self.master_seed,
            "total_trials": self.total_trials,
            "version": self.version,
        }

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "JournalHeader":
        return cls(
            campaign=str(data["campaign"]),
            master_seed=int(data["master_seed"]),
            total_trials=int(data["total_trials"]),
            version=int(data.get("version", JOURNAL_VERSION)),
        )


@dataclasses.dataclass(frozen=True)
class TrialEntry:
    """One journal line: a finished trial."""

    trial_id: int
    status: str  # "ok" | "harness_timeout" | "harness_crash"
    result: Optional[dict] = None  # simulated outcome (status == "ok")
    detail: str = ""  # harness-failure description otherwise
    attempts: int = 1
    #: Per-trial metrics snapshot (:mod:`repro.obs.metrics` schema).
    #: Journaling it makes resumed campaigns aggregate to the identical
    #: metrics totals as uninterrupted ones: replayed trials contribute
    #: their recorded snapshot instead of being re-run (and therefore are
    #: never double-counted).
    metrics: Optional[dict] = None
    #: Trial wall-clock in seconds (diagnostics only; never compared).
    duration_s: Optional[float] = None

    @property
    def is_harness_failure(self) -> bool:
        return self.status != "ok"

    def to_json(self) -> "dict[str, object]":
        data: "dict[str, object]" = {
            "kind": _TRIAL_KIND,
            "trial_id": self.trial_id,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.result is not None:
            data["result"] = self.result
        if self.detail:
            data["detail"] = self.detail
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.duration_s is not None:
            data["duration_s"] = round(self.duration_s, 6)
        return data

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "TrialEntry":
        trial_id = int(data["trial_id"])
        if trial_id < 0:
            raise ValueError(f"negative trial_id {trial_id}")
        return cls(
            trial_id=trial_id,
            status=str(data["status"]),
            result=data.get("result"),  # type: ignore[arg-type]
            detail=str(data.get("detail", "")),
            attempts=int(data.get("attempts", 1)),
            metrics=data.get("metrics"),  # type: ignore[arg-type]
            duration_s=(
                float(data["duration_s"])  # type: ignore[arg-type]
                if data.get("duration_s") is not None else None
            ),
        )


@dataclasses.dataclass(frozen=True)
class SalvageReport:
    """What valid-prefix recovery did to a damaged journal."""

    #: Intact trial entries replayed from the valid prefix.
    entries_kept: int
    #: Damaged-tail lines discarded (torn, garbage, or wrong-schema).
    quarantined_lines: int
    #: Damaged-tail size in bytes.
    quarantined_bytes: int
    #: Where the damaged tail was preserved byte-for-byte.
    quarantine_path: Path


def _parse_journal_line(raw_line: bytes) -> "Optional[tuple[str, object]]":
    """Decode one journal line; ``None`` marks it (and the rest) corrupt.

    A valid line is complete (the writer always appends ``\\n``), UTF-8,
    JSON, an object, and parses as a known record kind with the full
    schema.  Anything else — a torn final line, raw garbage, mid-line
    UTF-8 damage, or valid-JSON-wrong-schema lines — is corruption.
    """
    try:
        text = raw_line.decode("utf-8").strip()
    except UnicodeDecodeError:
        return None
    if not text:
        return ("blank", None)
    try:
        data = json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    kind = data.get("kind")
    try:
        if kind == _HEADER_KIND:
            return (_HEADER_KIND, JournalHeader.from_json(data))
        if kind == _TRIAL_KIND:
            return (_TRIAL_KIND, TrialEntry.from_json(data))
    except (KeyError, TypeError, ValueError):
        return None
    # Unknown record kind: not something this schema version wrote.
    return None


class CampaignJournal:
    """Append-only JSONL journal with crash- and corruption-tolerant loading.

    Opening an existing journal validates its header against the campaign
    being (re)run and loads every completed trial.  A damaged tail — a
    torn final line from a killed writer, garbage bytes, or wrong-schema
    lines — is salvaged: the valid prefix is kept, the tail is quarantined
    into ``<journal>.corrupt`` and the file truncated back to the prefix
    (see :attr:`salvage`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: JournalHeader,
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
    ) -> None:
        if fsync_interval < 1:
            raise ConfigurationError("fsync_interval must be >= 1")
        self.path = Path(path)
        self.header = header
        self.entries: Dict[int, TrialEntry] = {}
        #: Valid-prefix recovery report (``None`` when the file was clean).
        self.salvage: Optional[SalvageReport] = None
        self._fsync_interval = int(fsync_interval)
        self._unsynced = 0
        existing = self._load_existing()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        if not existing:
            self._write_line(header.to_json())

    # ------------------------------------------------------------------
    def _load_existing(self) -> bool:
        """Replay the journal if present; return whether a header existed."""
        if not self.path.exists():
            return False
        raw = self.path.read_bytes()
        if not raw:
            return False
        stored: Optional[JournalHeader] = None
        valid_end = 0  # byte offset one past the last intact line
        corrupt_lines = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # No trailing newline: the writer was killed mid-line.
                corrupt_lines += 1
                break
            parsed = _parse_journal_line(raw[offset:newline])
            if parsed is None:
                # First damaged line: everything from here is the tail.
                corrupt_lines += raw.count(b"\n", offset) + (
                    0 if raw.endswith(b"\n") else 1
                )
                break
            kind, record = parsed
            if kind == _HEADER_KIND:
                stored = record  # type: ignore[assignment]
            elif kind == _TRIAL_KIND:
                assert isinstance(record, TrialEntry)
                self.entries[record.trial_id] = record
            offset = newline + 1
            valid_end = offset
        if stored is None:
            raise ConfigurationError(
                f"journal {self.path} has no valid header; refusing to resume "
                "from a corrupt or foreign file"
            )
        if (
            stored.campaign != self.header.campaign
            or stored.master_seed != self.header.master_seed
            or stored.total_trials != self.header.total_trials
        ):
            raise ConfigurationError(
                f"journal {self.path} belongs to campaign "
                f"{stored.campaign!r} (seed {stored.master_seed}, "
                f"{stored.total_trials} trials) but this run is "
                f"{self.header.campaign!r} (seed {self.header.master_seed}, "
                f"{self.header.total_trials} trials); resume must use the "
                "same campaign configuration"
            )
        if valid_end < len(raw):
            self.salvage = self._quarantine_tail(raw, valid_end, corrupt_lines)
        return True

    def _quarantine_tail(
        self, raw: bytes, valid_end: int, corrupt_lines: int
    ) -> SalvageReport:
        """Preserve the damaged tail and truncate the journal to the
        valid prefix, so appends land on a well-formed file again."""
        tail = raw[valid_end:]
        quarantine = self.path.with_name(self.path.name + ".corrupt")
        with quarantine.open("ab") as handle:
            handle.write(tail)
            handle.flush()
            os.fsync(handle.fileno())
        with self.path.open("r+b") as handle:
            handle.truncate(valid_end)
            handle.flush()
            os.fsync(handle.fileno())
        return SalvageReport(
            entries_kept=len(self.entries),
            quarantined_lines=corrupt_lines,
            quarantined_bytes=len(tail),
            quarantine_path=quarantine,
        )

    # ------------------------------------------------------------------
    def _write_line(self, data: "dict[str, object]") -> None:
        self._handle.write(json.dumps(data, separators=(",", ":")) + "\n")
        # Flush to the OS so a SIGKILL of this process loses at most the
        # in-flight trial, never an already-recorded one.  fsync — which
        # protects against the *machine* dying, not the process — is
        # batched every fsync_interval appends and on close.
        self._handle.flush()
        self._unsynced += 1
        if self._unsynced >= self._fsync_interval:
            self.sync()

    def append(self, entry: TrialEntry) -> None:
        """Record one finished trial (idempotent per trial id on resume)."""
        self.entries[entry.trial_id] = entry
        self._write_line(entry.to_json())

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except (OSError, ValueError):
            pass
        self._unsynced = 0

    def completed_ids(self) -> "set[int]":
        return set(self.entries)

    def close(self) -> None:
        self.sync()
        self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
