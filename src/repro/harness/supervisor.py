"""Resilient campaign supervisor: crash-isolated parallel trial execution.

Large fault-injection campaigns (E5/E11/E12) and Monte-Carlo studies (E8)
run thousands of independent trials.  Run in-process, serially and
fail-fast, a single runaway workload or injector bug discards hours of
completed work.  This module supervises campaigns the way the paper's
framework supervises nodes — contain the failure, classify it, keep the
mission going:

* **crash isolation** — trials run in ``multiprocessing`` worker processes
  (``workers >= 1``); a worker that dies takes one trial with it, not the
  campaign;
* **per-trial wall-clock timeouts** — a hung worker is killed and the
  trial classified :attr:`OutcomeClass.HARNESS_TIMEOUT`; in serial mode
  (``workers = 0``) the same budget is enforced with ``SIGALRM`` where the
  platform allows;
* **bounded retry with exponential backoff** — transient harness failures
  (worker death, spawn errors, raising trials) are retried up to
  ``max_retries`` times before being classified
  :attr:`OutcomeClass.HARNESS_CRASH`;
* **checkpoint journal** — every finished trial is appended to a JSONL
  journal (:mod:`repro.harness.journal`); together with deterministic
  per-trial seeds (:func:`repro.harness.seeds.derive_seed`) an interrupted
  campaign resumes exactly where it stopped and yields bit-identical
  statistics;
* **graceful degradation** — on wall-clock budget exhaustion or too many
  harness failures the supervisor stops dispatching and returns statistics
  over the completed trials (with a completeness ratio) instead of raising.

Harness failures are *infrastructure* outcomes: they are excluded from the
C_D / P_T / P_OM / P_FS estimators (see :mod:`repro.faults.outcomes`), so a
flaky machine cannot bias the coverage estimates either way.

The serial path (``workers = 0``, the default everywhere) executes trials
in-process in trial order, preserving the pre-supervisor behaviour exactly.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from .. import runtime
from ..errors import ConfigurationError, ReproError
from ..faults.outcomes import CampaignStatistics, ExperimentRecord, OutcomeClass
from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..obs.metrics import MetricsRegistry
from ..obs.progress import ProgressReporter
from .chaos import ChaosPolicy
from .journal import (
    DEFAULT_FSYNC_INTERVAL,
    CampaignJournal,
    JournalHeader,
    TrialEntry,
)
from .seeds import derive_seed

#: A trial function: ``(payload, seed) -> result``.  Must be deterministic
#: in its arguments for resume to be bit-identical.
TrialFn = Callable[[Any, int], Any]


class TrialTimeoutError(RuntimeError):
    """A trial exceeded its wall-clock budget (serial-mode enforcement)."""


@dataclasses.dataclass(frozen=True)
class HarnessFailure:
    """A trial consumed by the harness itself rather than the simulation."""

    trial_id: int
    kind: OutcomeClass  # HARNESS_TIMEOUT or HARNESS_CRASH
    detail: str
    attempts: int = 1

    def to_record(self) -> ExperimentRecord:
        """Render as a campaign record (excluded from coverage estimates)."""
        return ExperimentRecord(
            outcome=self.kind,
            fault_description=f"harness[{self.trial_id}]: {self.detail}",
        )


@dataclasses.dataclass
class SupervisorConfig:
    """Knobs of the campaign supervisor.

    Attributes
    ----------
    workers:
        0 = serial in-process execution (the default; preserves historic
        behaviour); N >= 1 = N crash-isolated worker processes.
    timeout_s:
        Per-trial wall-clock budget.  ``None`` disables the budget.  In
        serial mode the budget needs ``SIGALRM`` (main thread, POSIX) and
        is silently skipped where unavailable.
    max_retries:
        Retry budget per trial for *transient* harness failures (worker
        death, raising trial).  Timeouts are not retried — a hung trial
        hangs again.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff between retries of one trial.
    budget_s:
        Campaign-level wall-clock budget; when exhausted the supervisor
        stops dispatching and returns partial results.
    max_harness_failures:
        Stop dispatching once this many trials were lost to the harness
        (``None`` = never stop early for failures).
    journal_path:
        JSONL checkpoint journal; pass the same path again to resume.
    master_seed:
        Campaign master seed; trial ``i`` receives
        ``derive_seed(master_seed, i)``.
    campaign:
        Campaign name, recorded in the journal header (resume guard).
    start_method:
        ``multiprocessing`` start method for worker processes (``None`` =
        ``fork`` where available, else the platform default).  Every
        worker receives the supervisor's effective
        :class:`repro.runtime.RunConfig` in its bootstrap payload and
        activates a matching :class:`repro.runtime.RunContext` before
        running trials, so campaigns are mode-correct (fast/reference,
        metrics) under ``spawn`` and ``forkserver`` too — not only
        "inherited through fork".
    chunk_size:
        Trials dispatched per worker message (``None`` = auto).  Results
        still stream back — and timeouts apply — per individual trial,
        unless ``batch_replies`` is set.
    batch_replies:
        When True, workers reply once per *chunk* (one pipe message
        carrying every trial's result) instead of once per trial —
        amortising the pickle/IPC round-trip for campaigns of many cheap
        trials.  Results, journal entries, per-trial metrics and resume
        behaviour are identical to streaming mode; the trade-off is
        timeout granularity: the wall-clock budget becomes
        ``timeout_s * len(chunk)`` per chunk, and a chunk that times out
        loses its completed-but-unreported trials to a retry.
    result_encoder / result_decoder:
        JSON codec for trial results in the journal.  The default handles
        :class:`ExperimentRecord` and plain JSON-serialisable values.
    collect_metrics:
        Capture a per-trial :mod:`repro.obs.metrics` snapshot (a fresh
        registry is swapped in around every trial, in workers and in
        serial mode alike) and aggregate them — deterministically, in
        trial-id order — into the caller's active registry and
        :attr:`SupervisorResult.trial_metrics`.  Snapshots are journaled,
        so a resumed campaign aggregates to the identical totals.
    progress:
        Optional :class:`repro.obs.progress.ProgressReporter`; fed one
        per-outcome tally per finished trial (including ``harness_*``
        infrastructure outcomes) and resume counts.
    profile_top_k:
        When > 0, run every trial under cProfile and keep the rendered
        stats of the K hottest (longest wall-clock) trials in
        :attr:`SupervisorResult.hot_trials` — opt-in, it slows trials
        noticeably.
    trial_offset:
        Global trial id of the first payload.  A sharded campaign
        (:mod:`repro.harness.shards`) hands each shard a slice of the
        payload list with the slice's start as the offset, so per-trial
        seeds, journal entries and result keys all use *campaign-global*
        trial ids — the property that makes shard journals merge into the
        whole-campaign result bit-identically.
    fsync_interval:
        Journal ``fsync`` batching: appends per sync (plus one on close).
        Line flushes still happen per append, so a killed *process* never
        loses an acknowledged trial; the interval bounds what an OS crash
        can lose.
    chaos:
        Optional :class:`repro.harness.chaos.ChaosPolicy` attacking the
        worker pool (SIGKILLs, delayed replies).  Directives are armed
        only on a trial's first attempt, so every event fires once and
        the recovery machinery — not luck — restores the campaign.
        Ignored in serial mode (killing the only process would be the
        campaign failing, not surviving).
    after_trial:
        Optional hook called with the global trial id after each trial is
        recorded (journal append included).  The shard runner uses it for
        lease heartbeats and chaos death/stall points.  Never called for
        trials replayed from the journal on resume.
    batch_size / batch_runner:
        Serial-mode vectorised execution.  When ``batch_size`` > 0 and a
        ``batch_runner`` is supplied, the serial path slices pending
        trials into chunks of up to ``batch_size`` and calls
        ``batch_runner(payloads, seeds)`` which must return one
        ``(result, metrics_snapshot_or_None)`` pair per payload, in
        order.  Results, journal entries, per-trial metrics, resume
        behaviour and seeds are identical to trial-at-a-time execution —
        the runner is required to be bit-equivalent to calling
        ``trial_fn(payload, seed)`` per trial under metrics capture
        (:mod:`repro.faults.batch_campaign` provides such a runner for
        fault-injection campaigns).  If the runner raises, the chunk
        falls back to scalar per-trial execution with the usual retry
        machinery (counted as ``harness.batch_fallbacks``).  Profiled
        runs (``profile_top_k`` > 0) force the scalar path, since
        per-trial profiles require per-trial calls.  Ignored in worker
        mode.
    """

    workers: int = 0
    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    budget_s: Optional[float] = None
    max_harness_failures: Optional[int] = None
    journal_path: Optional[Union[str, Path]] = None
    master_seed: int = 0
    campaign: str = "campaign"
    start_method: Optional[str] = None
    chunk_size: Optional[int] = None
    batch_replies: bool = False
    result_encoder: Optional[Callable[[Any], Any]] = None
    result_decoder: Optional[Callable[[Any], Any]] = None
    collect_metrics: bool = True
    progress: Optional[ProgressReporter] = None
    profile_top_k: int = 0
    trial_offset: int = 0
    fsync_interval: int = DEFAULT_FSYNC_INTERVAL
    chaos: Optional[ChaosPolicy] = None
    after_trial: Optional[Callable[[int], None]] = None
    batch_size: int = 0
    batch_runner: Optional[
        Callable[[Sequence[Any], Sequence[int]], Sequence["tuple[Any, Optional[dict]]"]]
    ] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.batch_size < 0:
            raise ConfigurationError("batch_size must be >= 0")
        if self.batch_size > 0 and self.batch_runner is None:
            raise ConfigurationError("batch_size > 0 requires a batch_runner")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.profile_top_k < 0:
            raise ConfigurationError("profile_top_k must be >= 0")
        if self.trial_offset < 0:
            raise ConfigurationError("trial_offset must be >= 0")
        if self.fsync_interval < 1:
            raise ConfigurationError("fsync_interval must be >= 1")
        if (
            self.start_method is not None
            and self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise ConfigurationError(
                f"start_method {self.start_method!r} unavailable; choose "
                f"from {multiprocessing.get_all_start_methods()}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number *attempt* (1-based)."""
        delay = self.backoff_base_s * (self.backoff_factor ** max(0, attempt - 1))
        return min(delay, self.backoff_max_s)


@dataclasses.dataclass
class SupervisorResult:
    """Everything a campaign run produced, in trial-id order on demand."""

    planned: int
    results: Dict[int, Any]
    failures: Dict[int, HarnessFailure]
    degraded: bool
    elapsed_s: float
    resumed_trials: int = 0
    #: Per-trial metrics snapshots (``collect_metrics``), trial-id keyed.
    trial_metrics: Dict[int, dict] = dataclasses.field(default_factory=dict)
    #: The supervisor's own infrastructure metrics (dispatch counts,
    #: retries, worker spawns, trial-duration histogram).  Kept separate
    #: from trial metrics because they legitimately differ between serial,
    #: parallel and resumed executions of the same campaign.
    harness_metrics: dict = dataclasses.field(default_factory=dict)
    #: K hottest profiled trials (``profile_top_k``), slowest first.
    hot_trials: List["obs_profile.HotTrial"] = dataclasses.field(default_factory=list)

    def metrics_snapshot(self, include_harness: bool = False) -> dict:
        """Aggregate the per-trial snapshots (in trial-id order).

        The :func:`repro.obs.metrics.stable_view` of this snapshot is
        invariant across execution modes: serial, parallel and
        kill-and-resume runs of the same seeded campaign aggregate to the
        identical counters and timer counts.
        """
        merged = obs_metrics.merge_snapshots(
            *(self.trial_metrics[tid] for tid in sorted(self.trial_metrics))
        )
        if include_harness:
            merged = obs_metrics.merge_snapshots(merged, self.harness_metrics)
        return merged

    @property
    def completed(self) -> int:
        """Trials with any recorded outcome (simulated or harness)."""
        return len(self.results) + len(self.failures)

    @property
    def completeness(self) -> float:
        """Fraction of the planned campaign with a *simulated* outcome."""
        if self.planned <= 0:
            return 1.0
        return len(self.results) / self.planned

    def ordered_results(self) -> List[Any]:
        """Simulated results in trial-id order (harness failures skipped)."""
        return [self.results[tid] for tid in sorted(self.results)]

    def statistics(self) -> CampaignStatistics:
        """Merge into :class:`CampaignStatistics` (trial-id order).

        Valid when the trial function returns :class:`ExperimentRecord`;
        harness failures become ``HARNESS_*`` records, which the statistics
        exclude from every coverage estimator.
        """
        stats = CampaignStatistics(
            planned_trials=self.planned, degraded=self.degraded
        )
        for trial_id in sorted(set(self.results) | set(self.failures)):
            if trial_id in self.results:
                record = self.results[trial_id]
                if not isinstance(record, ExperimentRecord):
                    raise ConfigurationError(
                        "statistics() needs ExperimentRecord results, got "
                        f"{type(record).__name__} for trial {trial_id}"
                    )
                stats.add(record)
            else:
                stats.add(self.failures[trial_id].to_record())
        return stats


# ----------------------------------------------------------------------
# Result <-> JSON codec (journal)
# ----------------------------------------------------------------------

_RECORD_TAG = "__experiment_record__"


def _default_encode(result: Any) -> Any:
    if isinstance(result, ExperimentRecord):
        return {_RECORD_TAG: result.to_json()}
    try:
        json.dumps(result)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"trial result of type {type(result).__name__} is not "
            "JSON-serialisable; pass result_encoder/result_decoder in "
            "SupervisorConfig"
        ) from exc
    return result


def _default_decode(data: Any) -> Any:
    if isinstance(data, dict) and _RECORD_TAG in data:
        return ExperimentRecord.from_json(data[_RECORD_TAG])
    return data


# ----------------------------------------------------------------------
# Serial-mode timeout enforcement
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _alarm(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`TrialTimeoutError` after *timeout_s* (best effort).

    Uses ``SIGALRM``, so it only works on POSIX main threads; elsewhere the
    budget is skipped (worker mode enforces it by killing the process).
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise TrialTimeoutError(f"trial exceeded {timeout_s:.3f}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _run_one_trial(
    trial_fn: TrialFn,
    payload: Any,
    seed: int,
    collect_metrics: bool,
    profiled: bool,
) -> "tuple[Any, Optional[dict], float, Optional[str]]":
    """Execute one trial with observability capture (worker and serial).

    Returns ``(result, metrics_snapshot|None, duration_s, profile|None)``.
    Exceptions propagate to the caller's isolation boundary; the partial
    capture of a failed attempt is discarded (failed/retried attempts must
    not contribute metrics, or resumed and uninterrupted campaigns would
    disagree).
    """
    started = time.perf_counter()
    profile_text: Optional[str] = None
    snapshot: Optional[dict] = None
    if collect_metrics:
        with obs_metrics.capture() as registry:
            if profiled:
                result, profile_text = obs_profile.profiled_call(
                    trial_fn, payload, seed
                )
            else:
                result = trial_fn(payload, seed)
        snap = registry.snapshot()
        snapshot = None if obs_metrics.snapshot_is_empty(snap) else snap
    elif profiled:
        result, profile_text = obs_profile.profiled_call(trial_fn, payload, seed)
    else:
        result = trial_fn(payload, seed)
    return result, snapshot, time.perf_counter() - started, profile_text


def _worker_main(
    trial_fn: TrialFn,
    master_seed: int,
    conn: "mp_connection.Connection",
    collect_metrics: bool,
    profiled: bool,
    batch_replies: bool = False,
    run_config: Optional[runtime.RunConfig] = None,
) -> None:
    """Worker loop: receive trial chunks, reply per trial (or per chunk).

    Every per-trial exception is caught and reported — a worker only dies
    on genuinely fatal conditions (signals, interpreter errors), which the
    supervisor observes as a worker death and retries.  Each reply carries
    the trial's observability extras (metrics snapshot, wall-clock and —
    when profiling — the rendered cProfile stats), since plain dicts and
    strings are the only profile form that crosses the pipe.

    With ``batch_replies`` the per-trial tuples are accumulated and sent
    as one ``("batch", replies)`` message per chunk, amortising the
    pickle/IPC round-trip for cheap trials.

    ``run_config`` is the supervisor's effective run configuration,
    shipped explicitly in the bootstrap payload: the worker activates a
    matching :class:`repro.runtime.RunContext` for its whole lifetime, so
    the fast/reference mode (and every other config-scoped knob) is
    correct regardless of the ``multiprocessing`` start method — a
    ``spawn`` worker must not silently fall back to environment defaults.
    """
    # The supervisor owns SIGINT handling; workers must not die to Ctrl-C
    # racing ahead of the supervisor's orderly shutdown.
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    supervisor_pid = os.getppid()
    worker_ctx = runtime.RunContext(
        run_config if run_config is not None else runtime.RunConfig()
    )
    with runtime.activate(worker_ctx):
        _worker_loop(
            trial_fn, master_seed, conn, collect_metrics, profiled,
            batch_replies, supervisor_pid,
        )


def _worker_loop(
    trial_fn: TrialFn,
    master_seed: int,
    conn: "mp_connection.Connection",
    collect_metrics: bool,
    profiled: bool,
    batch_replies: bool,
    supervisor_pid: int,
) -> None:
    while True:
        try:
            # Poll rather than block: with the fork start method, sibling
            # workers inherit this pipe's supervisor-side end, so a
            # SIGKILLed supervisor never EOFs it — the reparenting check
            # is what keeps such workers from surviving as orphans.
            while not conn.poll(1.0):
                if os.getppid() != supervisor_pid:
                    return
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        chunk, directives = message
        directives = directives or {}
        chaos_kill = frozenset(directives.get("kill") or ())
        chaos_delay: "Mapping[int, float]" = directives.get("delay") or {}
        chaos_kill_idle = bool(directives.get("kill_idle"))
        batch: List["tuple[str, int, Any, Optional[dict]]"] = []
        for trial_id, payload in chunk:
            if trial_id in chaos_kill:
                # Chaos: die mid-trial, before any reply — the supervisor
                # sees EOF/worker death and retries the trial elsewhere.
                os.kill(os.getpid(), signal.SIGKILL)
            try:
                result, snapshot, duration, profile_text = _run_one_trial(
                    trial_fn, payload, derive_seed(master_seed, trial_id),
                    collect_metrics, profiled,
                )
                extra = {
                    "metrics": snapshot,
                    "duration_s": duration,
                    "profile": profile_text,
                }
                reply = ("ok", trial_id, result, extra)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                reply = ("error", trial_id, f"{type(exc).__name__}: {exc}", None)
            if trial_id in chaos_delay:
                # Chaos: hold the finished reply past its deadline.
                time.sleep(float(chaos_delay[trial_id]))
            if batch_replies:
                batch.append(reply)
                continue
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
        if batch_replies:
            try:
                conn.send(("batch", batch))
            except (BrokenPipeError, OSError):
                return
        if chaos_kill_idle:
            # Chaos: die *between* chunks — every reply above is already on
            # the pipe, so no trial is in flight when the supervisor
            # notices.  The fixed reap path must respawn without charging
            # any trial a harness_crash.
            os.kill(os.getpid(), signal.SIGKILL)


class _Worker:
    """Supervisor-side handle of one worker process."""

    def __init__(
        self,
        ctx: "multiprocessing.context.BaseContext",
        trial_fn: TrialFn,
        master_seed: int,
        collect_metrics: bool = True,
        profiled: bool = False,
        batch_replies: bool = False,
        run_config: Optional[runtime.RunConfig] = None,
    ) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.batch_replies = batch_replies
        self.process = ctx.Process(
            target=_worker_main,
            args=(trial_fn, master_seed, child_conn, collect_metrics,
                  profiled, batch_replies, run_config),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.assigned: Deque["tuple[int, Any]"] = deque()
        self.deadline: Optional[float] = None

    @property
    def current_trial(self) -> Optional["tuple[int, Any]"]:
        return self.assigned[0] if self.assigned else None

    def dispatch(
        self,
        chunk: List["tuple[int, Any]"],
        timeout_s: Optional[float],
        directives: "Optional[dict[str, object]]" = None,
    ) -> None:
        self.conn.send((chunk, directives))
        self.assigned.extend(chunk)
        if timeout_s:
            # Batch mode yields no per-trial progress messages, so the
            # deadline covers the whole chunk.
            scale = len(chunk) if self.batch_replies else 1
            self.deadline = time.monotonic() + timeout_s * scale
        else:
            self.deadline = None

    def trial_finished(self, timeout_s: Optional[float]) -> None:
        """Called after a result arrived: the next assigned trial starts now."""
        if self.assigned and timeout_s:
            self.deadline = time.monotonic() + timeout_s
        elif not self.assigned:
            self.deadline = None

    def shutdown(self) -> None:
        with contextlib.suppress(BrokenPipeError, OSError):
            self.conn.send(None)
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        self.conn.close()

    def kill(self) -> None:
        with contextlib.suppress(OSError, AttributeError):
            self.process.kill()
        self.process.join(timeout=2.0)
        with contextlib.suppress(OSError):
            self.conn.close()


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _RunState:
    """Mutable bookkeeping of one :meth:`CampaignSupervisor.run` pass."""

    results: Dict[int, Any]
    failures: Dict[int, HarnessFailure]
    journal: Optional[CampaignJournal]
    started: float
    trial_metrics: Dict[int, dict] = dataclasses.field(default_factory=dict)
    harness: MetricsRegistry = dataclasses.field(default_factory=MetricsRegistry)
    hot_trials: Optional["obs_profile.ProfileCollector"] = None
    reporter: Optional[ProgressReporter] = None


class CampaignSupervisor:
    """Executes a list of independent trials under full fault containment.

    ``trial_fn(payload, seed)`` must be deterministic in its arguments and,
    for worker mode on non-fork platforms, picklable; under the default
    Linux ``fork`` start method closures are fine.
    """

    def __init__(self, trial_fn: TrialFn, config: Optional[SupervisorConfig] = None) -> None:
        self.trial_fn = trial_fn
        self.config = config if config is not None else SupervisorConfig()
        self._encode = self.config.result_encoder or _default_encode
        self._decode = self.config.result_decoder or _default_decode

    # ------------------------------------------------------------------
    def run(self, payloads: Sequence[Any]) -> SupervisorResult:
        """Run one trial per payload; trial ``trial_offset + i`` gets seed
        ``derive_seed(master_seed, trial_offset + i)``."""
        started = time.monotonic()
        planned = len(payloads)
        state = _RunState(results={}, failures={}, journal=None, started=started)
        if self.config.profile_top_k > 0:
            state.hot_trials = obs_profile.ProfileCollector(
                top_k=self.config.profile_top_k
            )

        if self.config.journal_path is not None:
            state.journal = CampaignJournal(
                self.config.journal_path,
                JournalHeader(
                    campaign=self.config.campaign,
                    master_seed=self.config.master_seed,
                    total_trials=planned,
                ),
                fsync_interval=self.config.fsync_interval,
            )
            if state.journal.salvage is not None:
                salvage = state.journal.salvage
                state.harness.inc("harness.journal_salvages")
                state.harness.inc(
                    "harness.journal_entries_salvaged", salvage.entries_kept
                )
                state.harness.inc(
                    "harness.journal_quarantined_bytes",
                    salvage.quarantined_bytes,
                )
            for entry in state.journal.entries.values():
                if entry.is_harness_failure:
                    state.failures[entry.trial_id] = HarnessFailure(
                        trial_id=entry.trial_id,
                        kind=OutcomeClass(entry.status),
                        detail=entry.detail,
                        attempts=entry.attempts,
                    )
                else:
                    state.results[entry.trial_id] = self._decode(entry.result)
                if entry.metrics is not None:
                    # Replayed trials contribute their journaled snapshot —
                    # this is what keeps resume from double- (or under-)
                    # counting campaign metrics.
                    state.trial_metrics[entry.trial_id] = entry.metrics
        resumed = len(state.results) + len(state.failures)
        state.harness.inc("harness.trials_resumed", resumed)

        pending: Deque["tuple[int, Any]"] = deque(
            (trial_id, payload)
            for trial_id, payload in enumerate(
                payloads, self.config.trial_offset
            )
            if trial_id not in state.results and trial_id not in state.failures
        )

        state.reporter = self.config.progress
        if state.reporter is not None:
            state.reporter.start(total=planned, already_done=resumed)

        try:
            if self.config.workers <= 0:
                degraded = self._run_serial(pending, state)
            else:
                degraded = self._run_parallel(pending, state)
        finally:
            if state.journal is not None:
                state.journal.close()
            if state.reporter is not None:
                state.reporter.finish()

        hot = state.hot_trials.hottest() if state.hot_trials is not None else []
        for trial in hot:
            obs_profile.record_hot_trial(trial)
        result = SupervisorResult(
            planned=planned,
            results=state.results,
            failures=state.failures,
            degraded=degraded,
            elapsed_s=time.monotonic() - started,
            resumed_trials=resumed,
            trial_metrics=state.trial_metrics,
            harness_metrics=state.harness.snapshot(),
            hot_trials=hot,
        )
        # Surface the campaign in the caller's ambient registry: the
        # deterministic per-trial aggregate plus the harness's own
        # infrastructure counters.  Trials recorded into captured
        # registries (serial mode swaps one in per trial), so nothing is
        # counted twice here.
        if self.config.collect_metrics:
            obs_metrics.merge_into_active(result.metrics_snapshot())
            obs_metrics.merge_into_active(result.harness_metrics)
        return result

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _outcome_label(result: Any) -> str:
        """Progress-tally label of one simulated result."""
        if isinstance(result, ExperimentRecord):
            return result.outcome.value
        return "ok"

    def _record_success(
        self,
        state: _RunState,
        trial_id: int,
        result: Any,
        attempts: int,
        metrics: Optional[dict] = None,
        duration_s: Optional[float] = None,
        profile_text: Optional[str] = None,
    ) -> None:
        state.results[trial_id] = result
        if metrics is not None:
            state.trial_metrics[trial_id] = metrics
        state.harness.inc("harness.trials_ok")
        if duration_s is not None:
            state.harness.observe("harness.trial_duration_s", duration_s)
        if profile_text is not None and state.hot_trials is not None:
            state.hot_trials.record(obs_profile.HotTrial(
                campaign=self.config.campaign,
                trial_id=trial_id,
                duration_s=duration_s if duration_s is not None else 0.0,
                profile_text=profile_text,
            ))
        if state.journal is not None:
            state.journal.append(TrialEntry(
                trial_id=trial_id, status="ok",
                result=self._encode(result), attempts=attempts,
                metrics=metrics, duration_s=duration_s,
            ))
        if state.reporter is not None:
            state.reporter.note(self._outcome_label(result))
        if self.config.after_trial is not None:
            self.config.after_trial(trial_id)

    def _record_failure(self, state: _RunState, failure: HarnessFailure) -> None:
        state.failures[failure.trial_id] = failure
        state.harness.inc(f"harness.{failure.kind.value}")
        if state.journal is not None:
            state.journal.append(TrialEntry(
                trial_id=failure.trial_id, status=failure.kind.value,
                detail=failure.detail, attempts=failure.attempts,
            ))
        if state.reporter is not None:
            state.reporter.note(failure.kind.value)
        if self.config.after_trial is not None:
            self.config.after_trial(failure.trial_id)

    def _out_of_budget(self, started: float) -> bool:
        budget = self.config.budget_s
        return budget is not None and (time.monotonic() - started) >= budget

    def _failure_cap_hit(self, failures: Dict[int, HarnessFailure]) -> bool:
        cap = self.config.max_harness_failures
        return cap is not None and len(failures) >= cap

    # ------------------------------------------------------------------
    # Serial path (workers == 0)
    # ------------------------------------------------------------------

    def _run_serial(self, pending: Deque["tuple[int, Any]"], state: _RunState) -> bool:
        config = self.config
        profiled = config.profile_top_k > 0
        # Vectorised fast path: profiling needs per-trial calls, so it
        # always wins over batching.
        batched = config.batch_size > 0 and config.batch_runner is not None and not profiled
        while pending:
            if self._out_of_budget(state.started) or self._failure_cap_hit(state.failures):
                return True
            if batched:
                chunk = [
                    pending.popleft()
                    for _ in range(min(config.batch_size, len(pending)))
                ]
                if not self._run_batch_chunk(chunk, state):
                    # The runner raised: fall back to scalar execution for
                    # this chunk (usual retry/containment machinery), then
                    # keep batching — a bad payload poisons one chunk only.
                    for trial_id, payload in chunk:
                        self._run_serial_trial(trial_id, payload, state, profiled)
                continue
            trial_id, payload = pending.popleft()
            self._run_serial_trial(trial_id, payload, state, profiled)
        return False

    def _run_serial_trial(
        self, trial_id: int, payload: Any, state: _RunState, profiled: bool
    ) -> None:
        """One trial, in process, with timeout/retry containment."""
        config = self.config
        seed = derive_seed(config.master_seed, trial_id)
        attempts = 0
        while True:
            attempts += 1
            state.harness.inc("harness.trials_dispatched")
            try:
                with _alarm(config.timeout_s):
                    result, snapshot, duration, profile_text = _run_one_trial(
                        self.trial_fn, payload, seed,
                        config.collect_metrics, profiled,
                    )
            except TrialTimeoutError as exc:
                self._record_failure(
                    state,
                    HarnessFailure(trial_id, OutcomeClass.HARNESS_TIMEOUT,
                                   str(exc), attempts),
                )
                return
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                if attempts > config.max_retries:
                    self._record_failure(
                        state,
                        HarnessFailure(
                            trial_id, OutcomeClass.HARNESS_CRASH,
                            f"{type(exc).__name__}: {exc}", attempts,
                        ),
                    )
                    return
                state.harness.inc("harness.retries")
                time.sleep(config.backoff_s(attempts))
            else:
                self._record_success(
                    state, trial_id, result, attempts,
                    metrics=snapshot, duration_s=duration,
                    profile_text=profile_text,
                )
                return

    def _run_batch_chunk(
        self, chunk: List["tuple[int, Any]"], state: _RunState
    ) -> bool:
        """Run one chunk through ``config.batch_runner``.

        Returns False when the runner raised (caller falls back to scalar
        execution of the same trials); a short or misshapen reply list is
        treated the same way.  On success every trial is recorded exactly
        as the scalar path would have: attempts=1, the runner's per-trial
        metrics snapshot, and the chunk wall-clock split evenly across
        trials (per-trial timing is not observable in lockstep).
        """
        config = self.config
        seeds = [derive_seed(config.master_seed, tid) for tid, _ in chunk]
        state.harness.inc("harness.batch_chunks")
        started = time.perf_counter()
        try:
            replies = config.batch_runner([p for _, p in chunk], seeds)
            if len(replies) != len(chunk):
                raise ReproError(
                    f"batch_runner returned {len(replies)} replies "
                    f"for {len(chunk)} payloads"
                )
        except Exception:  # noqa: BLE001 — isolation boundary
            # Visible in harness metrics; the scalar rerun provides the
            # per-trial error reporting and dispatch accounting.
            state.harness.inc("harness.batch_fallbacks")
            return False
        per_trial_s = (time.perf_counter() - started) / len(chunk)
        state.harness.inc("harness.trials_dispatched", len(chunk))
        for (trial_id, _), (result, snapshot) in zip(chunk, replies):
            self._record_success(
                state, trial_id, result, attempts=1,
                metrics=snapshot if config.collect_metrics else None,
                duration_s=per_trial_s,
            )
        return True

    # ------------------------------------------------------------------
    # Parallel path (workers >= 1)
    # ------------------------------------------------------------------

    def _make_context(self) -> "multiprocessing.context.BaseContext":
        # fork keeps closures usable as trial functions and is the fast
        # path on Linux; fall back to the platform default elsewhere.
        # Either way the effective RunConfig travels in the bootstrap
        # payload (_worker_main), never implicitly "through fork".
        if self.config.start_method is not None:
            return multiprocessing.get_context(self.config.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _worker_run_config(self) -> runtime.RunConfig:
        """The run configuration shipped to every worker.

        A snapshot of the active context — including a transient
        ``fast_path()``/``reference_path()`` override in force at spawn
        time — with the parallel/interactive knobs stripped: a worker is
        always a serial, progress-less executor of its own trials.
        """
        ctx = runtime.current()
        return ctx.config.replace(fast=ctx.fast, jobs=0, progress=False)

    def _spawn_worker(self, ctx: "multiprocessing.context.BaseContext") -> Optional[_Worker]:
        """Spawn one worker, retrying transient start failures with backoff."""
        for attempt in range(1, self.config.max_retries + 2):
            try:
                return _Worker(
                    ctx, self.trial_fn, self.config.master_seed,
                    collect_metrics=self.config.collect_metrics,
                    profiled=self.config.profile_top_k > 0,
                    batch_replies=self.config.batch_replies,
                    run_config=self._worker_run_config(),
                )
            except OSError:
                if attempt > self.config.max_retries:
                    return None
                time.sleep(self.config.backoff_s(attempt))
        return None

    def _chunk_size(self, remaining: int) -> int:
        if self.config.chunk_size is not None:
            return max(1, self.config.chunk_size)
        # Small enough to keep the pool balanced and timeout granularity
        # tight, large enough to amortise the IPC per dispatch.
        return max(1, min(32, remaining // max(1, self.config.workers * 4)))

    def _run_parallel(self, pending: Deque["tuple[int, Any]"], state: _RunState) -> bool:
        config = self.config
        failures = state.failures
        ctx = self._make_context()
        workers: List[_Worker] = []
        attempts: Dict[int, int] = {}
        retry_at: Dict[int, float] = {}
        degraded = False
        chaos = (
            config.chaos
            if config.chaos is not None and config.chaos.any_events
            else None
        )
        chaos_fired: "set[int]" = set()
        chaos_delayed: "set[int]" = set()

        def arm_chaos(
            chunk: List["tuple[int, Any]"],
        ) -> "Optional[dict[str, object]]":
            """Chaos directives for *chunk* — first attempts only, each
            event armed at most once, so retries always run clean."""
            if chaos is None:
                return None
            fresh = tuple(
                tid for tid, _ in chunk
                if attempts.get(tid, 0) == 0 and tid not in chaos_fired
            )
            directives = chaos.directives_for(fresh)
            if directives is None:
                return None
            armed = (
                list(directives["kill"])  # type: ignore[arg-type]
                + list(directives["kill_idle"])  # type: ignore[arg-type]
                + list(directives["delay"])  # type: ignore[arg-type]
            )
            chaos_fired.update(armed)
            chaos_delayed.update(directives["delay"])  # type: ignore[arg-type]
            state.harness.inc("harness.chaos_injections", len(armed))
            return directives

        def fail_trial(
            trial_id: int, kind: OutcomeClass, detail: str,
            tries: Optional[int] = None,
        ) -> None:
            if tries is None:
                tries = attempts.get(trial_id, 0) + 1
            self._record_failure(state, HarnessFailure(trial_id, kind, detail, tries))
            attempts.pop(trial_id, None)
            retry_at.pop(trial_id, None)

        def crash_or_retry(trial_id: int, payload: Any, detail: str) -> None:
            """Transient-failure policy: bounded retry, then HARNESS_CRASH."""
            tries = attempts.get(trial_id, 0) + 1
            attempts[trial_id] = tries
            if tries > config.max_retries:
                fail_trial(trial_id, OutcomeClass.HARNESS_CRASH, detail, tries)
            else:
                state.harness.inc("harness.retries")
                retry_at[trial_id] = time.monotonic() + config.backoff_s(tries)
                pending.appendleft((trial_id, payload))

        def take_chunk(now: float) -> List["tuple[int, Any]"]:
            chunk: List["tuple[int, Any]"] = []
            size = self._chunk_size(len(pending))
            for _ in range(len(pending)):
                if len(chunk) >= size:
                    break
                trial_id, payload = pending.popleft()
                if retry_at.get(trial_id, 0.0) <= now:
                    chunk.append((trial_id, payload))
                else:
                    pending.append((trial_id, payload))
            return chunk

        def process_replies(worker: _Worker, message: Any) -> None:
            """Record every reply in one pipe message (streaming sends one
            reply per message; batch mode one ("batch", replies) bundle)."""
            replies = message[1] if message[0] == "batch" else [message]
            for kind, trial_id, body, extra in replies:
                # Match the finished trial inside the worker's chunk.
                payload = None
                while worker.assigned:
                    queued_id, queued_payload = worker.assigned.popleft()
                    if queued_id == trial_id:
                        payload = queued_payload
                        break
                    pending.appendleft((queued_id, queued_payload))
                if kind == "ok":
                    extra = extra or {}
                    self._record_success(
                        state, trial_id, body, attempts.get(trial_id, 0) + 1,
                        metrics=extra.get("metrics"),
                        duration_s=extra.get("duration_s"),
                        profile_text=extra.get("profile"),
                    )
                    attempts.pop(trial_id, None)
                    retry_at.pop(trial_id, None)
                else:
                    crash_or_retry(trial_id, payload, str(body))
                chaos_delayed.discard(trial_id)
                worker.trial_finished(config.timeout_s)

        def drain_worker(worker: _Worker) -> None:
            """Consume replies already on a doomed worker's pipe.

            A worker can die *after* sending results the supervisor has
            not read yet; those trials are acknowledged — reaping without
            draining would misclassify them as crashed (and, with
            ``max_retries=0``, lose them outright).
            """
            while worker.assigned:
                try:
                    if not worker.conn.poll(0):
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                process_replies(worker, message)

        def reap_worker(worker: _Worker, kind: OutcomeClass, detail: str) -> None:
            """Kill a worker; classify its current trial; requeue the rest."""
            drain_worker(worker)
            worker.kill()
            workers.remove(worker)
            if worker.assigned:
                trial_id, payload = worker.assigned.popleft()
                if kind is OutcomeClass.HARNESS_TIMEOUT:
                    fail_trial(trial_id, kind, detail)
                else:
                    crash_or_retry(trial_id, payload, detail)
            else:
                # Every assigned trial had in fact replied: the worker
                # died idle-equivalent, nothing is charged.
                state.harness.inc("harness.workers_lost_idle")
            # Untouched trials of the chunk go back unpenalised.
            while worker.assigned:
                pending.appendleft(worker.assigned.pop())

        try:
            while pending or any(w.assigned for w in workers):
                now = time.monotonic()
                if self._out_of_budget(state.started) or self._failure_cap_hit(failures):
                    degraded = True
                    break

                # Keep the pool at strength while there is work left.
                while len(workers) < config.workers and pending:
                    worker = self._spawn_worker(ctx)
                    if worker is None:
                        break
                    workers.append(worker)
                    state.harness.inc("harness.workers_spawned")
                if not workers:
                    # Pool spawn failed outright: degrade to in-process
                    # execution rather than losing the campaign.
                    self._run_serial(pending, state)
                    return True
                state.harness.gauge("harness.workers_live", len(workers))

                # Dispatch to idle workers.
                for worker in list(workers):
                    if worker.assigned or not pending:
                        continue
                    if not worker.process.is_alive():
                        # Died idle, *between* chunks: nothing was in
                        # flight, so no trial is charged a harness_crash —
                        # the worker is simply replaced.
                        state.harness.inc("harness.workers_lost_idle")
                        worker.kill()
                        workers.remove(worker)
                        continue
                    chunk = take_chunk(now)
                    if not chunk:
                        continue
                    try:
                        worker.dispatch(
                            chunk, config.timeout_s, arm_chaos(chunk)
                        )
                    except (BrokenPipeError, OSError):
                        # Worker died between the liveness check and the
                        # send: requeue the chunk unpenalised and replace
                        # the worker.
                        state.harness.inc("harness.workers_lost_idle")
                        worker.kill()
                        workers.remove(worker)
                        for item in reversed(chunk):
                            pending.appendleft(item)
                        continue
                    state.harness.inc("harness.trials_dispatched", len(chunk))

                # Wait for the next event: a result, a deadline, a retry
                # becoming eligible, or the budget check interval.
                deadlines = [w.deadline for w in workers if w.deadline is not None]
                wakeups = deadlines + [t for t in retry_at.values()] + [now + 0.25]
                poll = max(0.005, min(wakeups) - now)
                busy = [w for w in workers if w.assigned]
                ready = mp_connection.wait([w.conn for w in busy], timeout=poll) if busy else []

                for conn in ready:
                    worker = next(w for w in busy if w.conn is conn)
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        reap_worker(
                            worker, OutcomeClass.HARNESS_CRASH,
                            f"worker died (exitcode {worker.process.exitcode})",
                        )
                        continue
                    process_replies(worker, message)

                now = time.monotonic()
                for worker in list(workers):
                    if worker.assigned and not worker.process.is_alive():
                        reap_worker(
                            worker, OutcomeClass.HARNESS_CRASH,
                            f"worker died (exitcode {worker.process.exitcode})",
                        )
                    elif (
                        worker.assigned
                        and worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        trial_id = worker.assigned[0][0]
                        if trial_id in chaos_delayed:
                            # The deadline expired because *we* delayed the
                            # reply (chaos injection), not because the trial
                            # hung: retry it clean instead of recording a
                            # HARNESS_TIMEOUT the undisturbed run never saw.
                            chaos_delayed.discard(trial_id)
                            reap_worker(
                                worker, OutcomeClass.HARNESS_CRASH,
                                f"trial {trial_id} reply chaos-delayed past "
                                "its deadline; worker killed",
                            )
                        else:
                            reap_worker(
                                worker, OutcomeClass.HARNESS_TIMEOUT,
                                f"trial {trial_id} exceeded "
                                f"{config.timeout_s:.3f}s budget; worker killed",
                            )
                    elif not worker.assigned and not worker.process.is_alive():
                        # Idle death spotted outside the dispatch loop: same
                        # policy — replace silently, charge nothing.
                        state.harness.inc("harness.workers_lost_idle")
                        worker.kill()
                        workers.remove(worker)
                state.harness.gauge("harness.workers_live", len(workers))
        finally:
            for worker in workers:
                if worker.assigned:
                    worker.kill()
                else:
                    worker.shutdown()
        return degraded


# ----------------------------------------------------------------------
# Convenience front-end for injection campaigns
# ----------------------------------------------------------------------

def run_experiment_campaign(
    trial_fn: TrialFn,
    payloads: Sequence[Any],
    config: Optional[SupervisorConfig] = None,
) -> CampaignStatistics:
    """Run a campaign whose trials return :class:`ExperimentRecord`.

    Returns :class:`CampaignStatistics` over the completed trials in
    trial-id order — in a fully completed run, byte-identical to the
    historic serial loop over the same payloads.
    """
    supervisor = CampaignSupervisor(trial_fn, config)
    return supervisor.run(payloads).statistics()
