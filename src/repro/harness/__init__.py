"""Resilient campaign execution engine.

The supervisor that every large fault-injection campaign and Monte-Carlo
study runs on: crash-isolated parallel workers, per-trial wall-clock
timeouts, bounded retry with exponential backoff, a JSONL checkpoint
journal with deterministic per-trial seed derivation (interrupt/resume is
bit-identical), and graceful partial results on budget exhaustion.

On top of that single-supervisor core sit the node-level fault-tolerance
pieces the paper's framework uses — applied to the harness itself:

* :mod:`repro.harness.shards` — a sharded campaign coordinator: contiguous
  seed-range shards, one serial runner process per shard, lease/heartbeat
  failure detection, fencing-token takeover and commutative shard-journal
  merge;
* :mod:`repro.harness.leases` — the checkpointed lease files behind it;
* :mod:`repro.harness.chaos` — deterministic, seeded chaos injection
  (worker SIGKILLs, heartbeat stalls, journal-tail corruption, delayed
  replies) used to prove that recovery reproduces the undisturbed run
  bit-identically.

See :mod:`repro.harness.supervisor` for the core design notes.
"""

from .chaos import CORRUPTION_MODES, ChaosPolicy
from .journal import (
    DEFAULT_FSYNC_INTERVAL,
    JOURNAL_VERSION,
    CampaignJournal,
    JournalHeader,
    SalvageReport,
    TrialEntry,
)
from .leases import LEASE_ABANDONED, LEASE_DONE, LEASE_RUNNING, Lease, LeaseFile
from .seeds import derive_seed
from .shards import (
    ShardConfig,
    ShardSpec,
    plan_shards,
    run_sharded_campaign,
    shard_paths,
)
from .supervisor import (
    CampaignSupervisor,
    HarnessFailure,
    SupervisorConfig,
    SupervisorResult,
    TrialTimeoutError,
    run_experiment_campaign,
)

__all__ = [
    "CORRUPTION_MODES",
    "CampaignJournal",
    "CampaignSupervisor",
    "ChaosPolicy",
    "DEFAULT_FSYNC_INTERVAL",
    "HarnessFailure",
    "JOURNAL_VERSION",
    "JournalHeader",
    "LEASE_ABANDONED",
    "LEASE_DONE",
    "LEASE_RUNNING",
    "Lease",
    "LeaseFile",
    "SalvageReport",
    "ShardConfig",
    "ShardSpec",
    "SupervisorConfig",
    "SupervisorResult",
    "TrialEntry",
    "TrialTimeoutError",
    "derive_seed",
    "plan_shards",
    "run_experiment_campaign",
    "run_sharded_campaign",
    "shard_paths",
]
