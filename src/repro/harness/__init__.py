"""Resilient campaign execution engine.

The supervisor that every large fault-injection campaign and Monte-Carlo
study runs on: crash-isolated parallel workers, per-trial wall-clock
timeouts, bounded retry with exponential backoff, a JSONL checkpoint
journal with deterministic per-trial seed derivation (interrupt/resume is
bit-identical), and graceful partial results on budget exhaustion.

See :mod:`repro.harness.supervisor` for the design notes.
"""

from .journal import JOURNAL_VERSION, CampaignJournal, JournalHeader, TrialEntry
from .seeds import derive_seed
from .supervisor import (
    CampaignSupervisor,
    HarnessFailure,
    SupervisorConfig,
    SupervisorResult,
    TrialTimeoutError,
    run_experiment_campaign,
)

__all__ = [
    "CampaignJournal",
    "CampaignSupervisor",
    "HarnessFailure",
    "JOURNAL_VERSION",
    "JournalHeader",
    "SupervisorConfig",
    "SupervisorResult",
    "TrialEntry",
    "TrialTimeoutError",
    "derive_seed",
    "run_experiment_campaign",
]
