"""Checkpointed shard leases: fail-stop worker detection for the harness.

The paper's framework detects node failures with heartbeats and enforces
fail-stop semantics so a recovering node can be reintegrated without
corrupting the group.  The sharded campaign coordinator
(:mod:`repro.harness.shards`) applies the same mechanism to its own
workers: each shard is owned through a small JSON lease file holding the
owner's identity, a monotonically increasing **fencing token** and the
owner's last heartbeat timestamp.

* the shard runner refreshes the heartbeat after every journaled trial;
* the coordinator declares the lease **expired** when the heartbeat is
  older than the TTL (a dead, SIGKILLed or wedged runner all look the
  same from outside — exactly the paper's fail-stop abstraction), kills
  whatever process may still be attached, bumps the fencing token and
  reassigns the shard;
* a runner observing a lease token larger than its own has been fenced
  out — it must stop touching the shard journal immediately, which is
  what makes takeover safe even against a runner that was wedged rather
  than dead.

Lease writes are atomic (temp file + ``os.replace``), so a reader never
observes a half-written lease; a garbage lease file (crash mid-setup,
disk damage) simply reads as "no lease" and is reclaimed.

Wall-clock use is deliberate and legitimate here: leases measure the
*host* (is the owning process still making progress?), never simulated
time — :mod:`repro.harness` is DET001's home for exactly this kind of
infrastructure clock.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Optional, Union

#: Lease lifecycle states.
LEASE_RUNNING = "running"
LEASE_DONE = "done"
LEASE_ABANDONED = "abandoned"


@dataclasses.dataclass(frozen=True)
class Lease:
    """One shard's ownership record."""

    shard_id: int
    owner: str
    #: Fencing token: bumped by the coordinator on every takeover.  A
    #: runner holding a smaller token than the file has been superseded.
    token: int
    #: Host wall-clock timestamp of the owner's last sign of life.
    heartbeat: float
    state: str = LEASE_RUNNING

    def to_json(self) -> "dict[str, object]":
        return {
            "shard_id": self.shard_id,
            "owner": self.owner,
            "token": self.token,
            "heartbeat": self.heartbeat,
            "state": self.state,
        }

    @classmethod
    def from_json(cls, data: "dict[str, object]") -> "Lease":
        return cls(
            shard_id=int(data["shard_id"]),
            owner=str(data["owner"]),
            token=int(data["token"]),
            heartbeat=float(data["heartbeat"]),
            state=str(data.get("state", LEASE_RUNNING)),
        )

    def expired(self, ttl_s: float, now: Optional[float] = None) -> bool:
        """True when the heartbeat is older than *ttl_s* (running leases
        only — a finished or abandoned shard cannot expire)."""
        if self.state != LEASE_RUNNING:
            return False
        if now is None:
            now = time.time()
        return (now - self.heartbeat) > ttl_s


class LeaseFile:
    """Atomic reader/writer of one shard's lease."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def read(self) -> Optional[Lease]:
        """The current lease, or ``None`` for a missing/garbage file."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError, UnicodeDecodeError):
            return None
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                return None
            return Lease.from_json(data)
        except (ValueError, KeyError, TypeError):
            return None

    def write(self, lease: Lease) -> None:
        """Atomically replace the lease (temp file + rename + fsync)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(lease.to_json(), separators=(",", ":")))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def heartbeat(self, lease: Lease, state: Optional[str] = None) -> Lease:
        """Refresh *lease*'s heartbeat (and optionally its state) on disk
        and return the refreshed lease."""
        refreshed = dataclasses.replace(
            lease,
            heartbeat=time.time(),
            state=state if state is not None else lease.state,
        )
        self.write(refreshed)
        return refreshed

    def fenced_out(self, token: int) -> bool:
        """True when the on-disk lease carries a newer fencing token than
        *token* — the holder has been superseded and must stop."""
        current = self.read()
        return current is not None and current.token > token
