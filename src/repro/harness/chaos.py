"""Deterministic chaos injection for the campaign harness itself.

The repo's fault-injection campaigns prove the *paper's* node-level fault
tolerance by injecting faults into simulated nodes.  This module turns the
same discipline on the harness: a seeded :class:`ChaosPolicy` attacks the
campaign infrastructure — SIGKILLing workers at chosen trial indices,
stalling shard heartbeats until the lease expires, tearing or poisoning
journal tails, delaying worker replies past their timeout — and the
acceptance bar is the repo's signature move: under **any** chaos schedule
the recovered campaign must reproduce the undisturbed serial run's outcome
counts and deterministic metrics view bit-identically (see
``tests/harness/test_chaos_equivalence.py`` and ``tools/chaos_smoke.py``).

Every event is pinned to a trial index or shard id, so a schedule is
reproducible run-to-run; the only randomness — the bytes used to damage a
journal tail — is drawn from a ``random.Random`` seeded from the policy
seed.  Events fire **once**: worker-pool directives are armed by the
supervisor only on a trial's first attempt, and shard-runner events
trigger only when their trial is *executed* (a resumed trial replayed from
the journal never re-fires its event).

Spec grammar (the ``--chaos`` CLI knob), comma-separated events::

    kill:T          SIGKILL the pool worker handed trial T (before it replies)
    kill-idle:T     SIGKILL the pool worker after the chunk containing T
                    fully replied (death *between* chunks — no in-flight trial)
    delay:T:S       sleep S seconds before replying to trial T (reply past
                    the per-trial timeout)
    die:T           shard runner SIGKILLs itself right after journaling
                    trial T (fail-stop node death with a durable journal)
    stall:T         shard runner stops heartbeating after journaling trial
                    T but keeps computing (a wedged node; the coordinator
                    must expire the lease and take the shard over)
    corrupt:K:MODE  damage shard K's journal tail at its first takeover;
                    MODE is ``tear`` (truncate mid-line), ``garbage``
                    (append invalid-UTF-8 bytes and a torn line) or
                    ``schema`` (append valid-JSON wrong-schema lines)

Example: ``--chaos "die:40,stall:80,corrupt:0:tear"``.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

from ..errors import ConfigurationError

#: Journal-corruption modes understood by :meth:`ChaosPolicy.corrupt_journal`.
CORRUPTION_MODES = ("tear", "garbage", "schema")


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic, seeded schedule of harness-level fault injections.

    Immutable and picklable: the same policy object travels to the shard
    runner processes (installed process-wide via :func:`install`) and is
    consulted by the supervisor when arming worker-pool directives.
    """

    #: Seed for the corruption byte generator (the only entropy source).
    seed: int = 0
    #: Trials whose pool worker is SIGKILLed before replying (first attempt).
    kill_trials: "frozenset[int]" = frozenset()
    #: Trials whose pool worker is SIGKILLed *after* its chunk fully
    #: replied — the worker dies idle, between chunks.
    kill_idle_trials: "frozenset[int]" = frozenset()
    #: trial id -> seconds the worker sleeps before replying (first attempt).
    delay_trials: "Mapping[int, float]" = dataclasses.field(
        default_factory=dict
    )
    #: Trials after whose journal append the shard runner SIGKILLs itself.
    die_after_trials: "frozenset[int]" = frozenset()
    #: Trials after which the shard runner stops heartbeating (wedge).
    stall_after_trials: "frozenset[int]" = frozenset()
    #: shard id -> corruption mode applied to its journal at first takeover.
    corrupt_shards: "Mapping[int, str]" = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for shard_id, mode in self.corrupt_shards.items():
            if mode not in CORRUPTION_MODES:
                raise ConfigurationError(
                    f"unknown journal-corruption mode {mode!r} for shard "
                    f"{shard_id}; choose from {CORRUPTION_MODES}"
                )
        for trial_id, delay_s in self.delay_trials.items():
            if delay_s < 0:
                raise ConfigurationError(
                    f"delay for trial {trial_id} must be >= 0, got {delay_s}"
                )

    # ------------------------------------------------------------------
    # Spec parsing (the --chaos CLI knob)
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "ChaosPolicy":
        """Parse the comma-separated event grammar (module docstring)."""
        kill: "set[int]" = set()
        kill_idle: "set[int]" = set()
        delay: "dict[int, float]" = {}
        die: "set[int]" = set()
        stall: "set[int]" = set()
        corrupt: "dict[int, str]" = {}
        for token in filter(None, (t.strip() for t in spec.split(","))):
            parts = token.split(":")
            try:
                kind = parts[0]
                if kind == "kill" and len(parts) == 2:
                    kill.add(int(parts[1]))
                elif kind == "kill-idle" and len(parts) == 2:
                    kill_idle.add(int(parts[1]))
                elif kind == "delay" and len(parts) == 3:
                    delay[int(parts[1])] = float(parts[2])
                elif kind == "die" and len(parts) == 2:
                    die.add(int(parts[1]))
                elif kind == "stall" and len(parts) == 2:
                    stall.add(int(parts[1]))
                elif kind == "corrupt" and len(parts) == 3:
                    corrupt[int(parts[1])] = parts[2]
                else:
                    raise ValueError(token)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad chaos event {token!r}; grammar: kill:T, "
                    "kill-idle:T, delay:T:S, die:T, stall:T, corrupt:K:MODE"
                ) from exc
        return cls(
            seed=seed,
            kill_trials=frozenset(kill),
            kill_idle_trials=frozenset(kill_idle),
            delay_trials=delay,
            die_after_trials=frozenset(die),
            stall_after_trials=frozenset(stall),
            corrupt_shards=corrupt,
        )

    def describe(self) -> str:
        """The canonical spec string of this policy (round-trips)."""
        tokens = []
        tokens += [f"kill:{t}" for t in sorted(self.kill_trials)]
        tokens += [f"kill-idle:{t}" for t in sorted(self.kill_idle_trials)]
        tokens += [
            f"delay:{t}:{s:g}" for t, s in sorted(self.delay_trials.items())
        ]
        tokens += [f"die:{t}" for t in sorted(self.die_after_trials)]
        tokens += [f"stall:{t}" for t in sorted(self.stall_after_trials)]
        tokens += [
            f"corrupt:{k}:{m}" for k, m in sorted(self.corrupt_shards.items())
        ]
        return ",".join(tokens)

    # ------------------------------------------------------------------
    # Event queries
    # ------------------------------------------------------------------
    @property
    def any_events(self) -> bool:
        return bool(
            self.kill_trials or self.kill_idle_trials or self.delay_trials
            or self.die_after_trials or self.stall_after_trials
            or self.corrupt_shards
        )

    def dies_after(self, trial_id: int) -> bool:
        return trial_id in self.die_after_trials

    def stalls_after(self, trial_id: int) -> bool:
        return trial_id in self.stall_after_trials

    def corruption_mode(self, shard_id: int) -> Optional[str]:
        return self.corrupt_shards.get(shard_id)

    # ------------------------------------------------------------------
    # Journal corruption (coordinator-side, applied at takeover)
    # ------------------------------------------------------------------
    def corrupt_journal(
        self, path: Union[str, Path], shard_id: int, mode: Optional[str] = None
    ) -> Optional[str]:
        """Damage *path*'s tail the way a torn write or bad disk would.

        Only the suffix *beyond the last intact line boundary at worst one
        entry deep* is touched — acknowledged-and-synced entries stay
        intact, mirroring what real torn writes can and cannot destroy.
        Returns the mode applied (``None`` when the file is missing or
        too small to damage).
        """
        mode = mode if mode is not None else self.corruption_mode(shard_id)
        if mode is None:
            return None
        path = Path(path)
        if not path.exists():
            return None
        raw = path.read_bytes()
        rng = random.Random((self.seed << 16) ^ (shard_id + 1))
        if mode == "tear":
            # Truncate inside the final line: the classic torn write.  The
            # newline of the previous line survives, so exactly one entry
            # is lost (and deterministically re-run on resume).
            body = raw[:-1] if raw.endswith(b"\n") else raw
            cut = body.rfind(b"\n") + 1
            if cut == 0 or cut >= len(body):
                # Nothing after the header / last boundary to tear: tearing
                # into the header would make the journal unresumable, which
                # no torn *append* can do.
                return None
            keep = rng.randrange(cut, len(body))
            path.write_bytes(raw[:keep])
        elif mode == "garbage":
            # Invalid UTF-8 noise followed by a torn JSON-ish line.
            noise = bytes(rng.randrange(0x80, 0x100) for _ in range(24))
            with path.open("ab") as handle:
                handle.write(noise + b"\n")
                handle.write(b'{"kind":"trial","trial_id":')
        elif mode == "schema":
            # Well-formed JSON that is not a journal record.
            lines = [
                json.dumps({"kind": "trial", "bogus": True}),
                json.dumps({"kind": "lease", "token": rng.randrange(1 << 16)}),
                json.dumps([1, 2, 3]),
            ]
            with path.open("ab") as handle:
                handle.write(("\n".join(lines) + "\n").encode("utf-8"))
        else:  # pragma: no cover — guarded by __post_init__
            raise ConfigurationError(f"unknown corruption mode {mode!r}")
        return mode

    # ------------------------------------------------------------------
    # Worker-pool directives (supervisor-side arming)
    # ------------------------------------------------------------------
    def directives_for(
        self, trial_ids: "Tuple[int, ...]"
    ) -> "Optional[dict[str, object]]":
        """The directive payload shipped with one dispatched chunk.

        The supervisor calls this only with trial ids on their *first*
        attempt that have not been armed before, which is what gives
        worker-pool events their fire-once semantics: the retry of a
        chaos-killed trial runs clean.
        """
        kill = [t for t in trial_ids if t in self.kill_trials]
        kill_idle = [t for t in trial_ids if t in self.kill_idle_trials]
        delay = {t: self.delay_trials[t] for t in trial_ids
                 if t in self.delay_trials}
        if not (kill or kill_idle or delay):
            return None
        return {"kill": kill, "kill_idle": kill_idle, "delay": delay}


class _ProcessChaos:
    """Process-scoped installed chaos policy.

    Exists per *process* by design — the shard-runner and worker bootstrap
    install the campaign's policy here so harness code deep in the trial
    loop can consult it without threading it through every signature.
    Everyone outside this module goes through :func:`install` /
    :func:`active_policy`; direct access to this holder is fenced by
    reprolint's CTX002 home-module map.
    """

    policy: Optional[ChaosPolicy] = None


def install(policy: Optional[ChaosPolicy]) -> None:
    """Install (or clear, with ``None``) this process's chaos policy."""
    _ProcessChaos.policy = policy


def active_policy() -> Optional[ChaosPolicy]:
    """The chaos policy installed in this process (``None`` = no chaos)."""
    return _ProcessChaos.policy
