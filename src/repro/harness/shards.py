"""Sharded, crash-tolerant campaign coordinator (node-level FT, self-applied).

The paper's framework keeps a distributed real-time application alive by
detecting node failures with heartbeats, enforcing fail-stop semantics and
reintegrating recovered nodes.  This module applies the same design to the
campaign harness itself:

* a campaign's payload list is split into contiguous **seed-range shards**
  (:func:`plan_shards`); trial ids, and therefore per-trial seeds, stay
  *campaign-global* (``SupervisorConfig.trial_offset``), so shard journals
  merge into exactly the whole-campaign result;
* each shard is executed by a **shard runner** process — a serial
  :class:`repro.harness.supervisor.CampaignSupervisor` over the shard's
  slice, journaling every trial — that owns the shard through a
  checkpointed **lease** (:mod:`repro.harness.leases`): heartbeat after
  every journaled trial, fencing token, atomic writes;
* the **coordinator** monitors runner processes and leases.  A dead runner
  (crash, SIGKILL) or an expired lease (wedged runner) triggers a
  *takeover*: the old process is killed, the fencing token bumped, and a
  fresh runner respawned — it resumes from the shard journal and re-runs
  only the missing trials.  Deterministic per-trial seeds make the
  recovered campaign bit-identical to an undisturbed one;
* a shard that keeps dying is **abandoned** after ``max_takeovers``
  takeovers; the campaign degrades gracefully — the merged result carries
  ``degraded=True`` and partial statistics instead of an exception.

Chaos injection (:mod:`repro.harness.chaos`) plugs in at two points: the
runner's after-trial hook (``die:T`` SIGKILLs the runner after journaling
trial T; ``stall:T`` stops heartbeats and wedges the runner so the lease
must expire) and the coordinator's takeover path (``corrupt:K:MODE``
damages shard K's journal tail before the replacement runner salvages it).

Wall-clock (`time.time`/`time.monotonic`) is legitimate here: it measures
the *host* — liveness of runner processes — never simulated time
(:mod:`repro.harness` is DET001's home for infrastructure clocks).
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..faults.outcomes import OutcomeClass
from ..obs import metrics as obs_metrics
from ..obs.metrics import MetricsRegistry
from . import chaos as chaos_mod
from .journal import CampaignJournal, JournalHeader
from .leases import LEASE_ABANDONED, LEASE_DONE, Lease, LeaseFile
from .supervisor import (
    CampaignSupervisor,
    HarnessFailure,
    SupervisorConfig,
    SupervisorResult,
    TrialFn,
    _default_decode,
)

#: Exit code of a runner that observed a newer fencing token and stopped.
FENCED_EXIT_CODE = 3


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of the campaign's global trial-id range."""

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def plan_shards(total: int, count: int) -> List[ShardSpec]:
    """Split ``total`` trials into ``count`` contiguous, near-equal shards.

    Never returns an empty shard: ``count`` is clamped to ``total`` (one
    shard minimum, even for an empty campaign).
    """
    if total < 0:
        raise ConfigurationError("total trials must be >= 0")
    if count < 1:
        raise ConfigurationError("shard count must be >= 1")
    count = max(1, min(count, total)) if total else 1
    base, extra = divmod(total, count)
    specs: List[ShardSpec] = []
    start = 0
    for shard_id in range(count):
        size = base + (1 if shard_id < extra else 0)
        specs.append(ShardSpec(shard_id, start, start + size))
        start += size
    return specs


def shard_paths(
    journal_path: Union[str, Path], shard_id: int
) -> "tuple[Path, Path]":
    """``(shard journal, shard lease)`` paths derived from the campaign's
    base journal path (``x.jsonl`` -> ``x.shard3.jsonl`` / ``x.shard3.lease``).
    """
    base = Path(journal_path)
    stem = base.stem if base.suffix else base.name
    suffix = base.suffix if base.suffix else ".jsonl"
    journal = base.with_name(f"{stem}.shard{shard_id}{suffix}")
    lease = base.with_name(f"{stem}.shard{shard_id}.lease")
    return journal, lease


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded coordinator.

    Attributes
    ----------
    shards:
        Number of shard runner processes (each runs its slice serially).
    lease_ttl_s:
        A running lease whose heartbeat is older than this is expired;
        the coordinator takes the shard over.  Must comfortably exceed
        ``heartbeat_s`` plus the slowest single trial.
    heartbeat_s:
        Minimum interval between a runner's lease heartbeats (refreshed
        from the after-trial hook, so the effective rate is
        ``max(heartbeat_s, trial duration)``).
    poll_s:
        Coordinator monitor-loop period.
    max_takeovers:
        A shard taken over more than this many times is abandoned — the
        campaign degrades instead of thrashing forever.
    """

    shards: int = 2
    lease_ttl_s: float = 2.0
    heartbeat_s: float = 0.2
    poll_s: float = 0.05
    max_takeovers: int = 5

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        if self.heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if self.lease_ttl_s <= self.heartbeat_s:
            raise ConfigurationError(
                "lease_ttl_s must exceed heartbeat_s, or live runners "
                "would be taken over spuriously"
            )
        if self.poll_s <= 0:
            raise ConfigurationError("poll_s must be positive")
        if self.max_takeovers < 0:
            raise ConfigurationError("max_takeovers must be >= 0")


# ----------------------------------------------------------------------
# Shard runner (child process)
# ----------------------------------------------------------------------

def _shard_runner_main(
    trial_fn: TrialFn,
    payloads: Sequence[Any],
    spec: ShardSpec,
    config: SupervisorConfig,
    journal_path: Path,
    lease_path: Path,
    token: int,
    heartbeat_s: float,
    policy: "Optional[chaos_mod.ChaosPolicy]",
) -> None:
    """Run one shard serially, heartbeating its lease after every trial.

    Dies by ``os.kill(SIGKILL)`` at a chaos ``die:T`` point (fail-stop
    death with a durable journal), wedges forever after a chaos
    ``stall:T`` point (heartbeats stop; the coordinator must expire the
    lease), and exits :data:`FENCED_EXIT_CODE` the moment it observes a
    newer fencing token — a superseded runner must not touch the shard.
    """
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    chaos_mod.install(policy)
    lease_file = LeaseFile(lease_path)
    lease = lease_file.heartbeat(Lease(
        shard_id=spec.shard_id,
        owner=f"pid{os.getpid()}",
        token=token,
        heartbeat=time.time(),
    ))
    stalled = False
    last_beat = time.monotonic()

    def after_trial(trial_id: int) -> None:
        # Only called for freshly *executed* trials (journal replays on
        # resume never re-enter here), which is what gives die/stall
        # events their fire-once semantics across takeovers.
        nonlocal lease, stalled, last_beat
        if policy is not None:
            if policy.dies_after(trial_id):
                # The journal entry for this trial is already flushed:
                # dying here loses nothing acknowledged.
                os.kill(os.getpid(), signal.SIGKILL)
            if policy.stalls_after(trial_id):
                stalled = True
        if stalled:
            return
        now = time.monotonic()
        if now - last_beat >= heartbeat_s:
            if lease_file.fenced_out(token):
                os._exit(FENCED_EXIT_CODE)
            lease = lease_file.heartbeat(lease)
            last_beat = now

    runner_config = dataclasses.replace(
        config,
        workers=0,  # shard-level parallelism comes from the shards
        journal_path=journal_path,
        campaign=f"{config.campaign}/shard{spec.shard_id}",
        trial_offset=spec.start,
        after_trial=after_trial,  # reprolint: disable=PKL001 -- shard runner is serial (workers=0 above): the lease-heartbeat hook never crosses a process boundary
        progress=None,
        chaos=None,  # pool directives are meaningless in a serial runner
        budget_s=None,  # the coordinator owns the campaign budget
    )
    CampaignSupervisor(trial_fn, runner_config).run(payloads)
    if stalled:
        # A wedged node: alive, journal intact, no heartbeats.  The
        # coordinator expires the lease and kills this process.
        while True:  # pragma: no cover — exits only by SIGKILL
            time.sleep(0.25)
    if lease_file.fenced_out(token):
        os._exit(FENCED_EXIT_CODE)
    lease_file.heartbeat(lease, state=LEASE_DONE)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _ShardState:
    """Coordinator-side bookkeeping of one shard."""

    spec: ShardSpec
    journal_path: Path
    lease_file: LeaseFile
    token: int = 0
    takeovers: int = 0
    process: Optional["multiprocessing.process.BaseProcess"] = None
    done: bool = False
    abandoned: bool = False
    corrupted: bool = False


def _kill_process(process: "Optional[multiprocessing.process.BaseProcess]") -> None:
    if process is None:
        return
    with contextlib.suppress(OSError, AttributeError):
        process.kill()
    process.join(timeout=5.0)


def run_sharded_campaign(
    trial_fn: TrialFn,
    payloads: Sequence[Any],
    config: Optional[SupervisorConfig] = None,
    shard_config: Optional[ShardConfig] = None,
) -> SupervisorResult:
    """Run a campaign across crash-tolerant shard runner processes.

    Requires ``config.journal_path`` (shard journals and leases derive
    from it).  Chaos comes from ``config.chaos``: ``die``/``stall``
    events fire inside the runners, ``corrupt`` at the coordinator's
    takeover path.  The merged :class:`SupervisorResult` is — for a
    completed campaign — bit-identical to the undisturbed serial run
    over the same payloads: same results, same statistics, same
    deterministic metrics view.
    """
    config = config if config is not None else SupervisorConfig()
    shard_config = shard_config if shard_config is not None else ShardConfig()
    if config.journal_path is None:
        raise ConfigurationError(
            "sharded campaigns need journal_path: shard journals and "
            "lease files derive from it"
        )
    policy = (
        config.chaos
        if config.chaos is not None and config.chaos.any_events
        else None
    )
    started = time.monotonic()
    harness = MetricsRegistry()
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)

    shards: List[_ShardState] = []
    for spec in plan_shards(len(payloads), shard_config.shards):
        journal_path, lease_path = shard_paths(config.journal_path, spec.shard_id)
        shard = _ShardState(spec, journal_path, LeaseFile(lease_path))
        # Resume across *coordinator* deaths: start fencing tokens above
        # whatever a previous coordinator issued, so runners orphaned by
        # a killed coordinator observe a newer token at their next
        # heartbeat and stop (their journal entries remain valid — trials
        # are deterministic, so even a raced duplicate append is an
        # identical record).
        existing = shard.lease_file.read()
        if existing is not None:
            shard.token = existing.token
        shards.append(shard)

    def spawn(shard: _ShardState) -> None:
        shard.token += 1
        # The coordinator stamps a fresh lease before the runner exists,
        # so the TTL countdown covers a runner that dies during startup.
        shard.lease_file.write(Lease(
            shard_id=shard.spec.shard_id,
            owner=f"coordinator#t{shard.token}",
            token=shard.token,
            heartbeat=time.time(),
        ))
        shard.process = ctx.Process(
            target=_shard_runner_main,
            args=(
                trial_fn,
                payloads[shard.spec.start:shard.spec.stop],
                shard.spec,
                config,
                shard.journal_path,
                shard.lease_file.path,
                shard.token,
                shard_config.heartbeat_s,
                policy,
            ),
            daemon=True,
        )
        shard.process.start()
        harness.inc("harness.shard_runners_spawned")

    def take_over(shard: _ShardState, reason: str) -> None:
        # Fail-stop enforcement: whatever is (or is not) attached to the
        # lease gets killed before the shard is reassigned — combined
        # with fencing tokens this keeps a wedged-but-alive runner from
        # racing its replacement on the journal.
        _kill_process(shard.process)
        shard.takeovers += 1
        harness.inc("harness.lease_takeovers")
        if (
            policy is not None
            and not shard.corrupted
            and policy.corruption_mode(shard.spec.shard_id) is not None
        ):
            shard.corrupted = True
            if policy.corrupt_journal(shard.journal_path, shard.spec.shard_id):
                harness.inc("harness.chaos_journal_corruptions")
        if shard.takeovers > shard_config.max_takeovers:
            shard.abandoned = True
            harness.inc("harness.shards_abandoned")
            shard.lease_file.write(Lease(
                shard_id=shard.spec.shard_id,
                owner="coordinator",
                token=shard.token + 1,
                heartbeat=time.time(),
                state=LEASE_ABANDONED,
            ))
            return
        spawn(shard)

    budget_exhausted = False
    try:
        for shard in shards:
            spawn(shard)
        while True:
            active = [s for s in shards if not s.done and not s.abandoned]
            if not active:
                break
            if (
                config.budget_s is not None
                and (time.monotonic() - started) >= config.budget_s
            ):
                budget_exhausted = True
                break
            for shard in active:
                process = shard.process
                assert process is not None
                exitcode = process.exitcode
                if exitcode is not None:
                    lease = shard.lease_file.read()
                    if (
                        exitcode == 0
                        and lease is not None
                        and lease.state == LEASE_DONE
                    ):
                        shard.done = True
                        process.join()
                    else:
                        take_over(
                            shard, f"runner exited with code {exitcode}"
                        )
                else:
                    lease = shard.lease_file.read()
                    if lease is None or lease.expired(shard_config.lease_ttl_s):
                        take_over(shard, "lease expired (dead or wedged)")
            time.sleep(shard_config.poll_s)
    finally:
        for shard in shards:
            if shard.process is not None and shard.process.is_alive():
                _kill_process(shard.process)

    # ------------------------------------------------------------------
    # Merge shard journals into one campaign result.  Trial ids are
    # campaign-global, so the merge is a plain commutative dict union.
    # ------------------------------------------------------------------
    decode = config.result_decoder or _default_decode
    results: Dict[int, Any] = {}
    failures: Dict[int, HarnessFailure] = {}
    trial_metrics: Dict[int, dict] = {}
    degraded = budget_exhausted or any(s.abandoned for s in shards)
    for shard in shards:
        if not shard.journal_path.exists():
            degraded = True
            continue
        journal = CampaignJournal(
            shard.journal_path,
            JournalHeader(
                campaign=f"{config.campaign}/shard{shard.spec.shard_id}",
                master_seed=config.master_seed,
                total_trials=shard.spec.size,
            ),
            fsync_interval=config.fsync_interval,
        )
        try:
            if journal.salvage is not None:
                harness.inc(
                    "harness.journal_entries_salvaged",
                    journal.salvage.entries_kept,
                )
            # Salvages usually happen inside replacement *runners* (their
            # metrics die with them), but every salvage leaves a
            # quarantine file behind — count those, not just merge-time
            # salvages, so takeover-and-salvage events reach the
            # harness-health report.
            quarantine = shard.journal_path.with_name(
                shard.journal_path.name + ".corrupt"
            )
            if quarantine.exists():
                harness.inc("harness.journal_salvages")
                harness.inc(
                    "harness.journal_quarantined_bytes",
                    quarantine.stat().st_size,
                )
            for entry in journal.entries.values():
                if entry.is_harness_failure:
                    failures[entry.trial_id] = HarnessFailure(
                        trial_id=entry.trial_id,
                        kind=OutcomeClass(entry.status),
                        detail=entry.detail,
                        attempts=entry.attempts,
                    )
                else:
                    results[entry.trial_id] = decode(entry.result)
                if entry.metrics is not None:
                    trial_metrics[entry.trial_id] = entry.metrics
        finally:
            journal.close()
    if len(results) + len(failures) < len(payloads):
        degraded = True
    harness.gauge(
        "harness.shards_done", sum(1 for s in shards if s.done)
    )

    result = SupervisorResult(
        planned=len(payloads),
        results=results,
        failures=failures,
        degraded=degraded,
        elapsed_s=time.monotonic() - started,
        resumed_trials=0,
        trial_metrics=trial_metrics,
        harness_metrics=harness.snapshot(),
    )
    if config.collect_metrics:
        obs_metrics.merge_into_active(result.metrics_snapshot())
        obs_metrics.merge_into_active(result.harness_metrics)
    return result
