"""Communication schedule: static TDMA segment plus dynamic segment.

The paper assumes a time-triggered protocol, "or even more preferable ... a
mix of event- and time-triggered communication (such as provided by the
FlexRay protocol [9])".  A :class:`CommunicationSchedule` describes one
communication cycle:

* a **static segment** of fixed-length slots, each statically assigned to
  one sending node and one frame id (all critical messages live here);
* a **dynamic segment** of mini-slots in which pending event-triggered
  frames are arbitrated by frame id (lower id = higher priority), exactly
  the FlexRay flexible-TDMA scheme;
* an inter-cycle **network idle time**.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class StaticSlot:
    """One static-segment slot: who sends which frame."""

    slot_index: int
    sender: str
    frame_id: int

    def __post_init__(self) -> None:
        if self.slot_index < 0:
            raise ConfigurationError("slot index must be non-negative")
        if self.frame_id < 0:
            raise ConfigurationError("frame id must be non-negative")


@dataclasses.dataclass(frozen=True)
class CommunicationSchedule:
    """One communication cycle's layout (times in simulator ticks).

    Attributes
    ----------
    static_slots:
        Slot assignments; slot *i* starts at ``i * slot_duration``.
    slot_duration:
        Length of each static slot.
    minislot_count / minislot_duration:
        Dynamic-segment geometry; a dynamic frame consumes a whole number
        of mini-slots (we charge one per frame for simplicity).
    idle_duration:
        Network idle time closing the cycle.
    """

    static_slots: Sequence[StaticSlot]
    slot_duration: int
    minislot_count: int = 0
    minislot_duration: int = 0
    idle_duration: int = 0

    def __post_init__(self) -> None:
        if self.slot_duration <= 0:
            raise ConfigurationError("slot duration must be positive")
        if self.minislot_count < 0 or self.minislot_duration < 0 or self.idle_duration < 0:
            raise ConfigurationError("segment durations must be non-negative")
        if self.minislot_count > 0 and self.minislot_duration <= 0:
            raise ConfigurationError("mini-slots need a positive duration")
        indices = [slot.slot_index for slot in self.static_slots]
        if indices != sorted(indices) or len(indices) != len(set(indices)):
            raise ConfigurationError("static slots must have unique, ascending indices")
        frame_ids = [slot.frame_id for slot in self.static_slots]
        if len(frame_ids) != len(set(frame_ids)):
            raise ConfigurationError("static frame ids must be unique")

    # ------------------------------------------------------------------
    @property
    def static_duration(self) -> int:
        """Length of the static segment."""
        count = (self.static_slots[-1].slot_index + 1) if self.static_slots else 0
        return count * self.slot_duration

    @property
    def dynamic_duration(self) -> int:
        """Length of the dynamic segment."""
        return self.minislot_count * self.minislot_duration

    @property
    def cycle_duration(self) -> int:
        """Full communication-cycle length."""
        return self.static_duration + self.dynamic_duration + self.idle_duration

    # ------------------------------------------------------------------
    def slot_start(self, slot_index: int) -> int:
        """Offset of a static slot's start within the cycle."""
        return slot_index * self.slot_duration

    def dynamic_start(self) -> int:
        """Offset of the dynamic segment within the cycle."""
        return self.static_duration

    def sender_of(self, frame_id: int) -> Optional[str]:
        """Statically assigned sender of *frame_id* (None if dynamic)."""
        for slot in self.static_slots:
            if slot.frame_id == frame_id:
                return slot.sender
        return None

    def slots_of(self, sender: str) -> List[StaticSlot]:
        """All static slots owned by *sender*."""
        return [slot for slot in self.static_slots if slot.sender == sender]


def round_robin_schedule(
    senders: Sequence[str],
    slot_duration: int,
    minislot_count: int = 0,
    minislot_duration: int = 0,
    idle_duration: int = 0,
    first_frame_id: int = 1,
) -> CommunicationSchedule:
    """One static slot per sender, in the given order (a TTP/C-style TDMA
    round, the common case for the BBW system)."""
    slots = [
        StaticSlot(slot_index=i, sender=sender, frame_id=first_frame_id + i)
        for i, sender in enumerate(senders)
    ]
    return CommunicationSchedule(
        static_slots=slots,
        slot_duration=slot_duration,
        minislot_count=minislot_count,
        minislot_duration=minislot_duration,
        idle_duration=idle_duration,
    )
