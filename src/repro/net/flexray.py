"""The bus engine: cycle-by-cycle execution of the communication schedule.

:class:`FlexRayBus` drives the static TDMA slots and the dynamic mini-slot
arbitration on the discrete-event simulator.  Transmission is *reliable*
(the paper's assumption: "the network ... provides reliable transmission of
messages"): every sealed frame reaches every other controller at the end of
its slot.  What the bus does **not** hide is *silence* — a node that skips
its slot is visible to all receivers as a missing frame, which is exactly
the omission/fail-silent observability the system-level redundancy
management relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetworkError
from ..sim import PRIORITY_HARDWARE, Simulator, TraceRecorder
from .controller import NetworkInterface
from .frame import Frame
from .schedule import CommunicationSchedule


class FlexRayBus:
    """A broadcast bus executing a :class:`CommunicationSchedule`.

    Parameters
    ----------
    sim:
        Simulator supplying the time base.
    schedule:
        The cycle layout (static slots, dynamic segment, idle time).
    trace:
        Optional trace recorder (categories ``bus.frame``, ``bus.omission``,
        ``bus.cycle``).
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: CommunicationSchedule,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._controllers: Dict[str, NetworkInterface] = {}
        self.cycle = 0
        self._started = False
        self.frames_delivered = 0
        self.omissions_observed = 0

    # ------------------------------------------------------------------
    def attach(self, controller: NetworkInterface) -> None:
        """Connect a node's controller to the bus."""
        if controller.node_name in self._controllers:
            raise NetworkError(f"controller {controller.node_name!r} already attached")
        self._controllers[controller.node_name] = controller

    def controller(self, node_name: str) -> NetworkInterface:
        """Look up an attached controller."""
        try:
            return self._controllers[node_name]
        except KeyError:
            raise NetworkError(f"no controller named {node_name!r}") from None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing communication cycles (call once)."""
        if self._started:
            raise NetworkError("bus already started")
        for slot in self.schedule.static_slots:
            if slot.sender not in self._controllers:
                raise NetworkError(
                    f"static slot {slot.slot_index} assigned to unattached "
                    f"node {slot.sender!r}"
                )
        self._started = True
        self._begin_cycle()

    def _begin_cycle(self) -> None:
        cycle_start = self.sim.now
        self.trace.emit(cycle_start, "bus.cycle", "bus", cycle=self.cycle)
        for slot in self.schedule.static_slots:
            slot_end = cycle_start + self.schedule.slot_start(slot.slot_index) + self.schedule.slot_duration
            self.sim.schedule_at(
                slot_end,
                self._make_static_slot_handler(slot.sender, slot.frame_id),
                priority=PRIORITY_HARDWARE,
                label=f"bus:slot{slot.slot_index}",
            )
        if self.schedule.minislot_count:
            self.sim.schedule_at(
                cycle_start + self.schedule.dynamic_start(),
                self._dynamic_segment,
                priority=PRIORITY_HARDWARE,
                label="bus:dynamic",
            )
        self.sim.schedule_at(
            cycle_start + self.schedule.cycle_duration,
            self._end_cycle,
            priority=PRIORITY_HARDWARE,
            label="bus:cycle-end",
        )

    def _make_static_slot_handler(self, sender: str, frame_id: int):
        def handle() -> None:
            controller = self._controllers[sender]
            frame = controller.provide_static_frame(frame_id, self.cycle, self.sim.now)
            if frame is None:
                self.omissions_observed += 1
                self.trace.emit(
                    self.sim.now, "bus.omission", "bus",
                    sender=sender, frame_id=frame_id, cycle=self.cycle,
                )
                return
            self._broadcast(frame)

        return handle

    def _dynamic_segment(self) -> None:
        pending: List[Frame] = []
        for controller in self._controllers.values():
            pending.extend(controller.provide_dynamic_frames(self.cycle, self.sim.now))
        # FlexRay arbitration: lower frame id wins a mini-slot first.
        pending.sort(key=lambda f: (f.frame_id, f.sender))
        budget = self.schedule.minislot_count
        for frame in pending[:budget]:
            self._broadcast(frame)
        # Frames beyond the budget are dropped this cycle; senders may
        # re-queue.  Count them as observed omissions for diagnostics.
        dropped = max(0, len(pending) - budget)
        if dropped:
            self.omissions_observed += dropped
            self.trace.emit(
                self.sim.now, "bus.dynamic_overflow", "bus", dropped=dropped
            )

    def _broadcast(self, frame: Frame) -> None:
        self.frames_delivered += 1
        self.trace.emit(
            self.sim.now, "bus.frame", "bus",
            frame_id=frame.frame_id, sender=frame.sender, cycle=frame.cycle,
        )
        for controller in self._controllers.values():
            controller.deliver(frame, self.sim.now)

    def _end_cycle(self) -> None:
        self.cycle += 1
        self._begin_cycle()
