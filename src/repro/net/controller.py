"""Network interface (communication controller) of one node.

Each node owns a :class:`NetworkInterface` — the "NI" box of the paper's
Figure 1.  The host side writes outgoing payloads into transmit buffers and
reads the freshest valid frames from receive buffers; the bus side polls the
transmit buffers at the node's static slots and delivers frames from other
nodes.

The interface also enforces the *fail-silent boundary*: while the node is
silent (shut down or restarting), the controller transmits nothing — the
bus-guardian behaviour that keeps a failed host from babbling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetworkError
from .frame import Frame, ReceivedFrame


class NetworkInterface:
    """Per-node communication controller.

    Parameters
    ----------
    node_name:
        Must match the sender names in the communication schedule.
    """

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self._tx_static: Dict[int, Tuple[int, ...]] = {}
        self._tx_dynamic: List[Tuple[int, Tuple[int, ...]]] = []
        self._rx: Dict[int, ReceivedFrame] = {}
        self._silent = False
        self.frames_sent = 0
        self.frames_received = 0
        self.crc_errors = 0

    # ------------------------------------------------------------------
    # Host-side API
    # ------------------------------------------------------------------
    def write_tx(self, frame_id: int, payload: Sequence[int]) -> None:
        """Stage a payload for the node's static slot carrying *frame_id*.

        The payload is transmitted in every cycle until overwritten (state
        message semantics, as in TTP/C and FlexRay static frames).
        """
        self._tx_static[frame_id] = tuple(int(w) & 0xFFFF_FFFF for w in payload)

    def clear_tx(self, frame_id: int) -> None:
        """Stop transmitting *frame_id* (an explicit omission)."""
        self._tx_static.pop(frame_id, None)

    def send_event(self, frame_id: int, payload: Sequence[int]) -> None:
        """Queue an event-triggered frame for the dynamic segment."""
        self._tx_dynamic.append(
            (frame_id, tuple(int(w) & 0xFFFF_FFFF for w in payload))
        )

    def read_rx(self, frame_id: int) -> Optional[ReceivedFrame]:
        """Freshest received frame with *frame_id*, or None."""
        return self._rx.get(frame_id)

    def read_fresh(
        self, frame_id: int, now: int, max_age: int
    ) -> Optional[ReceivedFrame]:
        """Like :meth:`read_rx` but only if received within *max_age* ticks.

        Receivers use this to detect omission failures of a sender: a stale
        or missing frame means the sender skipped its slot.
        """
        received = self._rx.get(frame_id)
        if received is None or received.age_at(now) > max_age:
            return None
        return received

    # ------------------------------------------------------------------
    # Fail-silence boundary
    # ------------------------------------------------------------------
    @property
    def silent(self) -> bool:
        return self._silent

    def go_silent(self) -> None:
        """Stop transmitting (node shut down or restarting)."""
        self._silent = True
        self._tx_dynamic.clear()

    def resume(self) -> None:
        """Re-enable transmission after reintegration."""
        self._silent = False

    # ------------------------------------------------------------------
    # Bus-side API (called by the bus engine only)
    # ------------------------------------------------------------------
    def provide_static_frame(
        self, frame_id: int, cycle: int, timestamp: int
    ) -> Optional[Frame]:
        """Frame for the node's static slot, or None (omission)."""
        if self._silent:
            return None
        payload = self._tx_static.get(frame_id)
        if payload is None:
            return None
        self.frames_sent += 1
        return Frame.seal(frame_id, self.node_name, payload, cycle, timestamp)

    def provide_dynamic_frames(
        self, cycle: int, timestamp: int
    ) -> List[Frame]:
        """Drain the event queue into sealed frames (bus arbitrates)."""
        if self._silent or not self._tx_dynamic:
            return []
        frames = [
            Frame.seal(frame_id, self.node_name, payload, cycle, timestamp)
            for frame_id, payload in self._tx_dynamic
        ]
        self._tx_dynamic.clear()
        return frames

    def deliver(self, frame: Frame, now: int) -> None:
        """Bus delivers a frame; CRC-invalid frames are dropped and counted
        (the receiver-side end-to-end check)."""
        if frame.sender == self.node_name:
            return  # a node does not consume its own transmission
        if not frame.valid:
            self.crc_errors += 1
            return
        self.frames_received += 1
        self._rx[frame.frame_id] = ReceivedFrame(frame=frame, received_at=now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkInterface({self.node_name!r}, silent={self._silent}, "
            f"sent={self.frames_sent}, received={self.frames_received})"
        )
