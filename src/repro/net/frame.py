"""Frames of the time-triggered communication protocol.

A frame carries a tuple of 32-bit words plus a CRC-16 over its header and
payload — end-to-end error detection on the communication path (Table 1 /
Section 2.6).  The bus itself is assumed reliable (Section 2.1), but the CRC
lets the receiving node detect corruption introduced *before* transmission
(e.g. a fault hitting the transmit buffer), closing the end-to-end argument.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..core.integrity import crc16, words_to_bytes
from ..errors import NetworkError


@dataclasses.dataclass(frozen=True)
class Frame:
    """One transmitted frame.

    Attributes
    ----------
    frame_id:
        Protocol-wide identifier; in the dynamic segment it doubles as the
        arbitration priority (lower id wins, as in FlexRay).
    sender:
        Transmitting node's name.
    payload:
        Tuple of 32-bit words.
    cycle:
        Communication-cycle counter at transmission.
    timestamp:
        Simulated time of transmission completion.
    crc:
        CRC-16 sealed by the sender over (frame_id, payload).
    """

    frame_id: int
    sender: str
    payload: Tuple[int, ...]
    cycle: int
    timestamp: int
    crc: int

    @staticmethod
    def compute_crc(frame_id: int, payload: Sequence[int]) -> int:
        """CRC-16 over the id word followed by the payload words."""
        return crc16(words_to_bytes([frame_id, *payload]))

    @classmethod
    def seal(
        cls,
        frame_id: int,
        sender: str,
        payload: Sequence[int],
        cycle: int,
        timestamp: int,
    ) -> "Frame":
        """Build a frame with a freshly computed CRC."""
        payload = tuple(int(w) & 0xFFFF_FFFF for w in payload)
        return cls(
            frame_id=frame_id,
            sender=sender,
            payload=payload,
            cycle=cycle,
            timestamp=timestamp,
            crc=cls.compute_crc(frame_id, payload),
        )

    @property
    def valid(self) -> bool:
        """True when the CRC matches the content."""
        return self.crc == self.compute_crc(self.frame_id, self.payload)

    def check(self) -> "Frame":
        """Return self if valid, else raise :class:`NetworkError`."""
        if not self.valid:
            raise NetworkError(
                f"CRC error in frame {self.frame_id} from {self.sender!r}"
            )
        return self

    def corrupted(self, word_index: int, new_value: int) -> "Frame":
        """A copy with one payload word overwritten and the *old* CRC —
        fault-injection helper producing a detectably invalid frame."""
        if not 0 <= word_index < len(self.payload):
            raise NetworkError(f"word index {word_index} outside payload")
        payload = list(self.payload)
        payload[word_index] = int(new_value) & 0xFFFF_FFFF
        return dataclasses.replace(self, payload=tuple(payload))


@dataclasses.dataclass(frozen=True)
class ReceivedFrame:
    """A frame as seen by one receiver, with reception metadata."""

    frame: Frame
    received_at: int

    @property
    def fresh_age(self) -> int:
        """Alias kept for symmetry; age must be computed by the caller
        against its own clock (received_at is absolute)."""
        return self.received_at

    def age_at(self, now: int) -> int:
        """Ticks elapsed since reception."""
        return now - self.received_at


def require_payload_length(frame: Frame, expected: int) -> Frame:
    """Validate payload arity (protocol schema check)."""
    if len(frame.payload) != expected:
        raise NetworkError(
            f"frame {frame.frame_id} from {frame.sender!r} has "
            f"{len(frame.payload)} words, expected {expected}"
        )
    return frame
