"""Time-triggered communication substrate (FlexRay-like, Section 2.1).

A broadcast bus with a static TDMA segment for critical state messages and
a dynamic, priority-arbitrated segment for event-triggered traffic, plus
per-node communication controllers enforcing the fail-silence boundary.
"""

from .controller import NetworkInterface
from .flexray import FlexRayBus
from .frame import Frame, ReceivedFrame, require_payload_length
from .schedule import CommunicationSchedule, StaticSlot, round_robin_schedule

__all__ = [
    "CommunicationSchedule",
    "FlexRayBus",
    "Frame",
    "NetworkInterface",
    "ReceivedFrame",
    "StaticSlot",
    "require_payload_length",
    "round_robin_schedule",
]
