"""Temporal error masking (TEM) — the paper's key mechanism (Section 2.5).

The logic is implemented as a **pure state machine**,
:class:`TemStateMachine`, decoupled from any notion of time or scheduling.
Two drivers use it:

* the DES kernel (:mod:`repro.kernel.scheduler`) plays copies out over
  simulated time with preemption and budget timers;
* the direct fault-injection harness (:mod:`repro.faults.campaign`) drives
  it with back-to-back machine runs.

Protocol
--------
The driver repeatedly calls :meth:`TemStateMachine.next_action`:

* ``RUN_COPY`` — execute one more copy of the task, then report the outcome
  with :meth:`copy_completed` (a result was produced) or
  :meth:`copy_aborted` (an EDM terminated the copy);
* ``DELIVER`` — two matching results exist; commit the result/state;
* ``OMIT`` — enforce an omission failure (deadline exhausted, or three
  disagreeing results).

The *deadline check* is delegated to a driver-supplied predicate
``can_run_another_copy()``, because only the driver knows the current time,
remaining slack and pending higher-priority load.  This mirrors the paper:
"The kernel always checks the deadline of the task after an error is
detected to determine whether it is possible to execute an additional task
copy and still meet the deadline."
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional

from ..errors import ReproError
from ..obs import metrics as obs_metrics
from ..types import Result
from .comparison import majority_vote, results_match


#: Mechanism marker recorded when a recovery is skipped because the task's
#: weakly-hard (m,k) window still has miss budget.  It rides in
#: ``TemReport.detection_mechanisms`` (and hence mechanism counts) and
#: prefixes the omission reason, so scalar, batch and journal paths all
#: carry it without schema changes.
MK_BUDGET_MISS = "mk_budget_miss"


class TemAction(enum.Enum):
    """What the driver must do next."""

    RUN_COPY = "run_copy"
    DELIVER = "deliver"
    OMIT = "omit"


class TemOutcome(enum.Enum):
    """Terminal classification of one TEM-protected job."""

    #: Delivered with no error observed anywhere (scenario i).
    OK = "ok"
    #: Errors occurred but a correct-by-vote result was delivered
    #: (scenarios ii-iv).
    MASKED = "masked"
    #: No result delivered before the deadline (omission failure).
    OMISSION = "omission"

    @property
    def counter_name(self) -> str:
        """Metrics counter name for this outcome (``tem.outcome.<value>``)."""
        return "tem.outcome." + self.value


@dataclasses.dataclass
class TemReport:
    """Statistics of one completed TEM job (for coverage accounting)."""

    outcome: TemOutcome
    delivered_result: Optional[Result]
    copies_run: int
    errors_detected: int
    detection_mechanisms: List[str]
    omission_reason: Optional[str] = None


class TemStateMachine:
    """Drives one job of one critical task through TEM.

    Parameters
    ----------
    can_run_another_copy:
        Deadline predicate supplied by the driver; consulted before every
        recovery copy (and before the mandatory second copy, since enforcing
        an omission beats blowing the deadline mid-copy).
    max_copies:
        Hard cap on total executions per job — the fault-tolerant schedule
        reserves slack for a bounded number of recoveries (Section 2.8);
        reaching the cap forces an omission.
    accept_miss:
        Optional weakly-hard predicate (Liang et al., arXiv:2008.06192).
        Consulted only when an error has been detected and a *recovery*
        copy would be needed: returning True converts the recovery into a
        controlled miss (an omission tagged :data:`MK_BUDGET_MISS`) that
        the task's (m,k) window absorbs, freeing the reserved slack.
        ``None`` — or a predicate that always refuses, e.g. a (0,1)
        window — leaves the classic hard-deadline behaviour untouched.
    """

    #: TEM needs two matching results; with a single spare that is at most
    #: two clean copies plus one recovery per anticipated fault.
    DEFAULT_MAX_COPIES = 5

    def __init__(
        self,
        can_run_another_copy: Callable[[], bool],
        max_copies: int = DEFAULT_MAX_COPIES,
        accept_miss: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._can_run_another_copy = can_run_another_copy
        self._max_copies = max_copies
        self._accept_miss = accept_miss
        self._results: List[Result] = []
        self._copies_run = 0
        self._errors_detected = 0
        self._mechanisms: List[str] = []
        self._finished: Optional[TemReport] = None
        self._pending_copy = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once DELIVER or OMIT has been decided."""
        return self._finished is not None

    @property
    def report(self) -> TemReport:
        """The terminal report; raises if the job is still in progress."""
        if self._finished is None:
            raise ReproError("TEM job still in progress; no report yet")
        return self._finished

    @property
    def copies_run(self) -> int:
        return self._copies_run

    @property
    def errors_detected(self) -> int:
        """Detected errors so far (comparison mismatches and EDM aborts)."""
        return self._errors_detected

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------
    def next_action(self) -> TemAction:
        """What should the driver do now?"""
        if self._finished is not None:
            return TemAction.DELIVER if self._finished.delivered_result is not None else TemAction.OMIT
        if self._pending_copy:
            raise ReproError("previous copy not yet reported; call copy_completed/aborted")
        # Two completed results: compare (the TEM error-detection comparison).
        if len(self._results) >= 2:
            vote = majority_vote(self._results)
            if vote is not None:
                self._finish_delivered(vote)
                return TemAction.DELIVER
            if len(self._results) >= 3:
                # Three disagreeing results: no majority -> omission.
                self._finish_omitted("no_majority")
                return TemAction.OMIT
            # Mismatch between the two results counts as a detected error.
            self._note_error("comparison")
            return self._try_start_copy(reason="comparison mismatch")
        return self._try_start_copy(reason="initial copies")

    def copy_completed(self, result: Result) -> None:
        """Report that the running copy finished and produced *result*."""
        self._expect_pending()
        self._results.append(tuple(result))

    def copy_aborted(self, mechanism: str) -> None:
        """Report that an EDM terminated the running copy.

        Following Section 2.5, the aborted copy yields no result; the state
        machine will ask for a replacement copy if the deadline allows.
        """
        self._expect_pending()
        self._note_error(mechanism)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _expect_pending(self) -> None:
        if not self._pending_copy:
            raise ReproError("no copy is currently running")
        self._pending_copy = False

    def _note_error(self, mechanism: str) -> None:
        self._errors_detected += 1
        self._mechanisms.append(mechanism)

    def _try_start_copy(self, reason: str) -> TemAction:
        if self._copies_run >= self._max_copies:
            self._finish_omitted(f"copy budget exhausted ({reason})")
            return TemAction.OMIT
        # Weakly-hard short-circuit: once an error is detected, the next
        # copy is a *recovery* — if the (m,k) window can absorb one more
        # miss, take the controlled miss instead of re-executing.  The
        # mandatory first and second copies (errors_detected == 0) are
        # never skipped, so error detection coverage is unchanged.
        if (
            self._accept_miss is not None
            and self._copies_run > 0
            and self._errors_detected > 0
            and self._accept_miss()
        ):
            self._mechanisms.append(MK_BUDGET_MISS)
            self._finish_omitted(f"{MK_BUDGET_MISS}: recovery skipped ({reason})")
            return TemAction.OMIT
        # The first copy always runs (no error handled yet); subsequent
        # copies are gated by the deadline check.
        if self._copies_run > 0 and not self._can_run_another_copy():
            self._finish_omitted(f"deadline does not allow another copy ({reason})")
            return TemAction.OMIT
        self._copies_run += 1
        self._pending_copy = True
        return TemAction.RUN_COPY

    def _finish_delivered(self, result: Result) -> None:
        outcome = TemOutcome.OK if self._errors_detected == 0 else TemOutcome.MASKED
        self._finished = TemReport(
            outcome=outcome,
            delivered_result=result,
            copies_run=self._copies_run,
            errors_detected=self._errors_detected,
            detection_mechanisms=list(self._mechanisms),
        )
        self._account()

    def _finish_omitted(self, reason: str) -> None:
        self._finished = TemReport(
            outcome=TemOutcome.OMISSION,
            delivered_result=None,
            copies_run=self._copies_run,
            errors_detected=self._errors_detected,
            detection_mechanisms=list(self._mechanisms),
            omission_reason=reason,
        )
        self._account()

    def _account(self) -> None:
        """Metrics once per terminal job — shared by both TEM drivers (the
        DES kernel and the direct injection harness)."""
        report = self._finished
        assert report is not None
        _account_report(report)


def _account_report(report: TemReport) -> None:
    """Metrics once per terminal TEM job (temporal and spatial alike)."""
    registry = obs_metrics.active()
    registry.inc("tem.jobs")
    registry.inc(report.outcome.counter_name)
    registry.inc("tem.copies", report.copies_run)
    registry.inc("tem.errors_detected", report.errors_detected)
    if report.omission_reason is not None and report.omission_reason.startswith(
        MK_BUDGET_MISS
    ):
        registry.inc("tem.mk_accepted_misses")


class SpatialTem:
    """Spatial-redundancy TEM: copies race concurrently on distinct cores.

    The EFTOS voting-farm arrangement (arXiv:1401.2920) applied at node
    level (ROADMAP item 4): instead of running the two copies of a
    critical job back to back on one core, the kernel launches them
    *concurrently* on different cores and compares at joint completion; a
    recovery copy (launched on a third core when one exists) replaces any
    copy an EDM aborts, or breaks the tie between two disagreeing results.

    Protocol — the driver (:class:`repro.kernel.scheduler.Scheduler`):

    * calls :meth:`claim_launches` and starts exactly that many new
      copies (two at release, replacements/tie-breakers later);
    * reports every copy's end with :meth:`copy_completed` or
      :meth:`copy_aborted`, then re-checks :attr:`finished` and calls
      :meth:`claim_launches` again while undecided;
    * on :attr:`finished`, reads :attr:`report` and cancels any copy
      still running (the decision races the slowest copy).

    Deliver/omit rules match :class:`TemStateMachine`: two matching
    results deliver (MASKED when any error was detected on the way),
    three disagreeing results or an exhausted copy/deadline/miss budget
    force an omission.  ``accept_miss`` is consulted exactly when a
    *recovery* launch (third copy onward) would be needed after a
    detected error, mirroring the temporal machine's weakly-hard
    short-circuit.
    """

    def __init__(
        self,
        can_run_another_copy: Callable[[], bool],
        max_copies: int = TemStateMachine.DEFAULT_MAX_COPIES,
        accept_miss: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._can_run_another_copy = can_run_another_copy
        self._max_copies = max_copies
        self._accept_miss = accept_miss
        self._results: List[Result] = []
        self._mechanisms: List[str] = []
        self._errors_detected = 0
        self._launched = 0
        self._in_flight = 0
        self._mismatch_noted = False
        self._finished: Optional[TemReport] = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished is not None

    @property
    def report(self) -> TemReport:
        if self._finished is None:
            raise ReproError("spatial TEM job still in progress; no report yet")
        return self._finished

    @property
    def copies_launched(self) -> int:
        return self._launched

    @property
    def in_flight(self) -> int:
        """Copies launched but not yet reported complete/aborted."""
        return self._in_flight

    @property
    def errors_detected(self) -> int:
        return self._errors_detected

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------
    def claim_launches(self) -> int:
        """Copies the driver must launch *now* (0 once decided).

        May instead settle the job as an omission when no further launch
        is allowed and the copies still in flight cannot produce a
        decision on their own.
        """
        if self._finished is not None:
            return 0
        claimed = 0
        while self._needed(claimed) > 0:
            if self._launched + claimed >= self._max_copies:
                if self._in_flight + claimed == 0:
                    self._finish_omitted("copy budget exhausted (spatial)")
                break
            if self._launched + claimed >= 2:
                # A recovery launch after a detected error: the weakly-hard
                # miss budget may absorb the miss instead (cf. the temporal
                # machine's accept_miss short-circuit).
                if (
                    self._accept_miss is not None
                    and self._errors_detected > 0
                    and self._accept_miss()
                ):
                    self._mechanisms.append(MK_BUDGET_MISS)
                    self._finish_omitted(
                        f"{MK_BUDGET_MISS}: recovery skipped (spatial)"
                    )
                    break
            if self._launched + claimed >= 1 and not self._can_run_another_copy():
                if self._in_flight + claimed == 0:
                    self._finish_omitted(
                        "deadline does not allow another copy (spatial)"
                    )
                break
            claimed += 1
        if self._finished is not None:
            return 0
        self._launched += claimed
        self._in_flight += claimed
        return claimed

    def copy_completed(self, result: Result) -> None:
        """One concurrent copy finished and produced *result*."""
        self._expect_in_flight()
        self._results.append(tuple(result))
        self._evaluate()

    def copy_aborted(self, mechanism: str) -> None:
        """An EDM terminated one concurrent copy."""
        self._expect_in_flight()
        self._note_error(mechanism)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _needed(self, claimed: int) -> int:
        """Further live copies needed to still reach a decision."""
        required = 2 if len(self._results) < 2 else len(self._results) + 1
        return (required - len(self._results)) - (self._in_flight + claimed)

    def _expect_in_flight(self) -> None:
        if self._in_flight <= 0:
            raise ReproError("no spatial copy is currently in flight")
        self._in_flight -= 1

    def _note_error(self, mechanism: str) -> None:
        self._errors_detected += 1
        self._mechanisms.append(mechanism)

    def _evaluate(self) -> None:
        if self._finished is not None or len(self._results) < 2:
            return
        vote = majority_vote(self._results)
        if vote is not None:
            outcome = (
                TemOutcome.OK if self._errors_detected == 0 else TemOutcome.MASKED
            )
            self._finished = TemReport(
                outcome=outcome,
                delivered_result=vote,
                copies_run=self._launched,
                errors_detected=self._errors_detected,
                detection_mechanisms=list(self._mechanisms),
            )
            _account_report(self._finished)
            return
        if len(self._results) >= 3:
            self._finish_omitted("no_majority")
            return
        # Two disagreeing results: one detected comparison error, noted
        # once; a tie-breaking copy is claimed by the next claim_launches.
        if not self._mismatch_noted:
            self._mismatch_noted = True
            self._note_error("comparison")

    def _finish_omitted(self, reason: str) -> None:
        self._finished = TemReport(
            outcome=TemOutcome.OMISSION,
            delivered_result=None,
            copies_run=self._launched,
            errors_detected=self._errors_detected,
            detection_mechanisms=list(self._mechanisms),
            omission_reason=reason,
        )
        _account_report(self._finished)


def run_tem_direct(
    execute_copy: Callable[[int], "tuple[Optional[Result], Optional[str]]"],
    can_run_another_copy: Callable[[], bool] = lambda: True,
    max_copies: int = TemStateMachine.DEFAULT_MAX_COPIES,
    accept_miss: Optional[Callable[[], bool]] = None,
) -> TemReport:
    """Convenience driver running TEM to completion without a scheduler.

    Parameters
    ----------
    execute_copy:
        Called with the copy index (0-based); returns ``(result, None)``
        for a completed copy or ``(None, mechanism)`` when an EDM fired.
    accept_miss:
        Optional weakly-hard predicate forwarded to
        :class:`TemStateMachine` (skip a recovery when the (m,k) miss
        budget allows); ``None`` keeps the hard-deadline behaviour.

    Used by fault-injection campaigns and unit tests.
    """
    machine = TemStateMachine(
        can_run_another_copy, max_copies=max_copies, accept_miss=accept_miss
    )
    copy_index = 0
    while True:
        action = machine.next_action()
        if action is not TemAction.RUN_COPY:
            return machine.report
        result, mechanism = execute_copy(copy_index)
        copy_index += 1
        if mechanism is not None:
            machine.copy_aborted(mechanism)
        else:
            if result is None:
                raise ReproError("execute_copy returned neither result nor mechanism")
            machine.copy_completed(result)
