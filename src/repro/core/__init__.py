"""Light-weight node-level fault tolerance — the paper's core contribution.

Modules:

* :mod:`~repro.core.tem` — temporal error masking state machine (Fig 3);
* :mod:`~repro.core.comparison` — result comparison and majority voting;
* :mod:`~repro.core.integrity` — duplication/CRC end-to-end checks (2.6);
* :mod:`~repro.core.control_flow` — signature monitoring (2.7);
* :mod:`~repro.core.diagnosis` — permanent-fault suspicion & off-line
  diagnosis (2.5);
* :mod:`~repro.core.policies` — the per-class error strategy table (2.2).
"""

from .comparison import detects_mismatch, majority_vote, results_match
from .control_flow import (
    ControlFlowError,
    SignatureMonitor,
    fold_signature,
    instrument_assembly,
)
from .diagnosis import (
    DIAGNOSIS_TICKS,
    REINTEGRATION_TICKS,
    DiagnosisResult,
    OfflineDiagnosis,
    PermanentFaultSuspector,
    restart_duration_ticks,
)
from .integrity import (
    ChecksummedBlock,
    DuplicatedValue,
    IntegrityError,
    ProtectedStore,
    crc16,
    words_to_bytes,
)
from .policies import (
    ErrorResponse,
    ExecutionClass,
    MissBudgetPolicy,
    NlftPolicy,
    fail_silent_policy,
    nlft_policy,
    weakly_hard_policy,
)
from .tem import (
    MK_BUDGET_MISS,
    SpatialTem,
    TemAction,
    TemOutcome,
    TemReport,
    TemStateMachine,
    run_tem_direct,
)

__all__ = [
    "ChecksummedBlock",
    "ControlFlowError",
    "DIAGNOSIS_TICKS",
    "DiagnosisResult",
    "DuplicatedValue",
    "ErrorResponse",
    "ExecutionClass",
    "IntegrityError",
    "MK_BUDGET_MISS",
    "MissBudgetPolicy",
    "NlftPolicy",
    "OfflineDiagnosis",
    "PermanentFaultSuspector",
    "ProtectedStore",
    "REINTEGRATION_TICKS",
    "SignatureMonitor",
    "SpatialTem",
    "TemAction",
    "TemOutcome",
    "TemReport",
    "TemStateMachine",
    "crc16",
    "detects_mismatch",
    "fail_silent_policy",
    "fold_signature",
    "instrument_assembly",
    "majority_vote",
    "nlft_policy",
    "restart_duration_ticks",
    "results_match",
    "run_tem_direct",
    "weakly_hard_policy",
    "words_to_bytes",
]
