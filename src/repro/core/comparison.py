"""Result comparison and majority voting for temporal error masking.

TEM compares the outputs of redundant executions bit-exactly (replica
determinism is assumed within a node: same inputs, same code, same
processor).  The majority voter accepts a result when at least two of three
copies agree (Section 2.5: "If the majority voter detects two matching
results, these are accepted as a valid result of the task.  Otherwise, no
result is delivered, which leads to an omission failure.").
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..types import Result


def results_match(a: Optional[Result], b: Optional[Result]) -> bool:
    """Bit-exact comparison of two result tuples.

    ``None`` (no result, e.g. from an aborted copy) never matches anything,
    including another ``None`` — an absent result carries no information.
    """
    if a is None or b is None:
        return False
    return tuple(a) == tuple(b)


def majority_vote(results: Sequence[Optional[Result]]) -> Optional[Result]:
    """Return the value agreed by at least two results, or None.

    The paper votes over exactly three copies; we accept any number >= 2 to
    keep the primitive reusable (e.g. for duplex output selection at the
    system level).
    """
    concrete = [tuple(r) for r in results if r is not None]
    for index, candidate in enumerate(concrete):
        for other in concrete[index + 1 :]:
            if other == candidate:
                return candidate
    return None


def detects_mismatch(results: Sequence[Optional[Result]]) -> bool:
    """True if a pairwise comparison over completed results finds any
    disagreement (the TEM error-detection comparison)."""
    concrete = [tuple(r) for r in results if r is not None]
    return any(a != b for a, b in zip(concrete, concrete[1:]))
