"""Data integrity checks and end-to-end error detection (Section 2.6).

Data must be protected not only *during* computation (TEM covers that) but
also before and after it.  The paper lists two software techniques on top of
ECC memory:

* **duplication with comparison** for small items — store two copies, compare
  before use;
* **CRC checksums** for larger structures.

Both are provided here as guarded containers, plus an end-to-end message
wrapper used by the communication layer.  All check failures raise
:class:`IntegrityError`, which the kernel treats as a detected error (on a
duplex node: omission failure + re-acquisition from the partner; Section
2.6).
"""

from __future__ import annotations

import dataclasses
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from ..errors import ReproError

T = TypeVar("T")

#: CRC-16/CCITT-FALSE parameters (poly 0x1021, init 0xFFFF) — a standard
#: choice in automotive/embedded protocols.
_CRC16_POLY = 0x1021
_CRC16_INIT = 0xFFFF


class IntegrityError(ReproError):
    """A data integrity check failed (duplication mismatch or bad CRC)."""

    mechanism = "data_integrity"


def crc16(data: bytes, initial: int = _CRC16_INIT) -> int:
    """CRC-16/CCITT-FALSE over *data* (bitwise reference implementation)."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Serialise 32-bit words big-endian for checksumming."""
    out = bytearray()
    for word in words:
        out.extend(int(word & 0xFFFF_FFFF).to_bytes(4, "big"))
    return bytes(out)


class DuplicatedValue(Generic[T]):
    """A value stored twice; reads compare the copies (Section 2.6:
    "The simplest is to duplicate the data and conduct a comparison before
    it is used to reveal discrepancies").

    The two copies are independent attributes so a fault injector can
    corrupt one of them (:meth:`corrupt_primary` / :meth:`corrupt_shadow`).
    """

    def __init__(self, value: T) -> None:
        self._primary = value
        self._shadow = value

    def read(self) -> T:
        """Return the value after comparing the copies."""
        if self._primary != self._shadow:
            raise IntegrityError(
                f"duplication mismatch: {self._primary!r} != {self._shadow!r}"
            )
        return self._primary

    def write(self, value: T) -> None:
        """Update both copies atomically."""
        self._primary = value
        self._shadow = value

    # Fault-injection hooks ------------------------------------------------
    def corrupt_primary(self, value: T) -> None:
        self._primary = value

    def corrupt_shadow(self, value: T) -> None:
        self._shadow = value


@dataclasses.dataclass
class ChecksummedBlock:
    """A list of words protected by a CRC-16 (for larger structures).

    Typical use: a task's state data between jobs, or an output message
    buffer awaiting transmission.
    """

    words: List[int]
    checksum: int

    @classmethod
    def seal(cls, words: Sequence[int]) -> "ChecksummedBlock":
        """Create a block with a freshly computed checksum."""
        words = [int(w) & 0xFFFF_FFFF for w in words]
        return cls(words=words, checksum=crc16(words_to_bytes(words)))

    def verify(self) -> List[int]:
        """Return the words after checking the CRC; raises on mismatch."""
        actual = crc16(words_to_bytes(self.words))
        if actual != self.checksum:
            raise IntegrityError(
                f"CRC mismatch: stored {self.checksum:#06x}, computed {actual:#06x}"
            )
        return list(self.words)

    def corrupt_word(self, index: int, new_value: int) -> None:
        """Fault-injection hook: overwrite one word without re-sealing."""
        self.words[index] = int(new_value) & 0xFFFF_FFFF


class ProtectedStore:
    """A small key-value store for task *state data* with CRC protection.

    State data is only committed when TEM has produced two matching results
    (Section 2.5: "The task result is delivered and the state data are only
    updated when two matching results have been produced"), so the store
    offers an explicit :meth:`commit` and keeps the previous sealed value
    until then.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, ChecksummedBlock] = {}
        self.check_failures = 0

    def commit(self, key: str, words: Sequence[int]) -> None:
        """Seal and store a new value for *key*."""
        self._blocks[key] = ChecksummedBlock.seal(words)

    def fetch(self, key: str, default: Optional[Sequence[int]] = None) -> List[int]:
        """Return the verified value; raises :class:`IntegrityError` on
        corruption, KeyError for unknown keys without a default."""
        block = self._blocks.get(key)
        if block is None:
            if default is not None:
                return list(default)
            raise KeyError(key)
        try:
            return block.verify()
        except IntegrityError:
            self.check_failures += 1
            raise

    def invalidate(self, key: str) -> None:
        """Drop a (possibly corrupt) entry, forcing recovery from defaults
        or from the partner node."""
        self._blocks.pop(key, None)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._blocks)

    def block(self, key: str) -> ChecksummedBlock:
        """Raw access for fault injection and tests."""
        return self._blocks[key]
