"""Control-flow error detection by signature monitoring (Section 2.7).

A control-flow error — a corrupted PC or branch target — may escape the MMU
(if it lands inside the task's region) and even TEM (if it jumps straight to
the output-writing code, bypassing the comparison).  The paper requires
"specific checks ... to avoid that such control flow errors pass undetected".

We implement assigned-signature monitoring: the task's program embeds ``SIG
<value>`` checkpoints (see :mod:`repro.cpu.isa`); the machine folds the
values into a running signature; the kernel compares the accumulated
signature of a completed copy against the precomputed reference.  A copy
that skipped or repeated blocks yields a different signature and is treated
as a detected error — crucially, this check runs *in the kernel, after* the
copy, so it also guards the path between computation and output commit.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cpu.machine import Machine
from ..errors import ReproError

#: Multiplier of the folding function — must match Machine's SIG semantics.
SIGNATURE_MULTIPLIER = 31
SIGNATURE_MASK = 0xFFFF_FFFF


class ControlFlowError(ReproError):
    """A signature check failed: the copy deviated from its control flow."""

    mechanism = "control_flow"


def fold_signature(checkpoints: Sequence[int], initial: int = 0) -> int:
    """Reference signature for a checkpoint sequence.

    Mirrors the SIG instruction: ``sig = sig * 31 + value`` per checkpoint,
    truncated to 32 bits.
    """
    signature = initial
    for value in checkpoints:
        signature = (signature * SIGNATURE_MULTIPLIER + (int(value) & 0xFFFF)) & SIGNATURE_MASK
    return signature


class SignatureMonitor:
    """Kernel-side verifier of a task's control-flow signature.

    Parameters
    ----------
    expected_checkpoints:
        The checkpoint values in correct execution order (the values of the
        ``SIG`` instructions along the one legal path; tasks with branches
        place SIGs only on the common path).
    """

    def __init__(self, expected_checkpoints: Sequence[int]) -> None:
        self._expected = fold_signature(expected_checkpoints)
        self.checks = 0
        self.failures = 0

    @property
    def expected_signature(self) -> int:
        return self._expected

    def verify_value(self, signature: int) -> None:
        """Check an accumulated signature value; raise on mismatch."""
        self.checks += 1
        if signature != self._expected:
            self.failures += 1
            raise ControlFlowError(
                f"control-flow signature {signature:#010x} != expected "
                f"{self._expected:#010x}"
            )

    def verify_machine(self, machine: Machine) -> None:
        """Check the signature a machine accumulated during the last copy."""
        self.verify_value(machine.signature)


def instrument_assembly(source: str, checkpoints: Sequence[int]) -> str:
    """Prepend/append SIG checkpoints around an assembly body.

    A convenience for tests and examples: emits ``SIG c0`` before the body
    and one ``SIG`` per remaining checkpoint immediately before every HALT.
    For precise placement write the SIGs in the source directly.
    """
    if not checkpoints:
        return source
    head = f"    SIG {checkpoints[0]}\n"
    tail_lines: List[str] = [f"    SIG {value}" for value in checkpoints[1:]]
    tail = "\n".join(tail_lines)
    out_lines: List[str] = []
    for line in source.splitlines():
        stripped = line.split(";")[0].strip().upper()
        if stripped == "HALT" and tail:
            out_lines.append(tail)
        out_lines.append(line)
    return head + "\n".join(out_lines)
