"""Permanent-fault suspicion and off-line diagnosis (Section 2.5).

"Errors that are repeated for some time are considered to be caused by
permanent faults.  In this case, the node is shut down for off-line
diagnosis to establish whether a transient or a permanent fault caused the
error.  For transient faults, the node may be re-integrated."

:class:`PermanentFaultSuspector` implements the run-time heuristic: a
sliding window of recent jobs; when the number of error-affected jobs inside
the window reaches a threshold, the node is declared *suspect* and must shut
down for diagnosis.  :class:`OfflineDiagnosis` models the diagnosis step
itself with the paper's timing (1.4 s hardware reset + self-test).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Optional

from ..errors import ConfigurationError
from ..units import seconds

#: Paper timing: restart/reintegration 1.6 s [16] + reset & diagnostics 1.4 s.
DIAGNOSIS_TICKS = seconds(1.4)
REINTEGRATION_TICKS = seconds(1.6)


class PermanentFaultSuspector:
    """Sliding-window detector of repeated errors.

    Parameters
    ----------
    window_jobs:
        How many most-recent jobs the window spans.
    threshold:
        Number of error-affected jobs within the window that triggers
        suspicion.  The default (3 of 8) tolerates bursts of independent
        transients while reacting within a handful of periods to a stuck-at
        fault that corrupts every execution.
    """

    def __init__(self, window_jobs: int = 8, threshold: int = 3) -> None:
        if window_jobs <= 0:
            raise ConfigurationError("window_jobs must be positive")
        if not 1 <= threshold <= window_jobs:
            raise ConfigurationError("need 1 <= threshold <= window_jobs")
        self.window_jobs = window_jobs
        self.threshold = threshold
        self._history: Deque[bool] = deque(maxlen=window_jobs)

    def record_job(self, had_error: bool) -> bool:
        """Record one finished job; returns True when suspicion triggers."""
        self._history.append(bool(had_error))
        return self.suspicious

    @property
    def error_count(self) -> int:
        """Error-affected jobs currently inside the window."""
        return sum(self._history)

    @property
    def suspicious(self) -> bool:
        """True when the error density exceeds the threshold."""
        return self.error_count >= self.threshold

    def reset(self) -> None:
        """Clear the window (after a node restart/reintegration)."""
        self._history.clear()


@dataclasses.dataclass
class DiagnosisResult:
    """Outcome of an off-line diagnosis run."""

    permanent_fault_found: bool
    duration_ticks: int


class OfflineDiagnosis:
    """Models the off-line self-test a shut-down node performs.

    The diagnosis itself is assumed fault-free (paper Section 3.2.2: "The
    repair (recovery) action is assumed to be fault-free"); whether a
    permanent fault is *present* is told to us by the fault injector via
    the ``permanent_fault_present`` flag of :meth:`run`.
    """

    def __init__(self, duration_ticks: int = DIAGNOSIS_TICKS) -> None:
        if duration_ticks <= 0:
            raise ConfigurationError("diagnosis duration must be positive")
        self.duration_ticks = duration_ticks
        self.runs = 0

    def run(self, permanent_fault_present: bool) -> DiagnosisResult:
        """Perform one diagnosis; the node reintegrates iff no permanent
        fault is found."""
        self.runs += 1
        return DiagnosisResult(
            permanent_fault_found=permanent_fault_present,
            duration_ticks=self.duration_ticks,
        )


def restart_duration_ticks(diagnosis: Optional[OfflineDiagnosis] = None) -> int:
    """Total fail-silent repair time: diagnosis + OS restart/reintegration.

    With the paper's numbers this is 1.4 s + 1.6 s = 3 s, matching
    mu_R = 1200 repairs/hour.
    """
    diagnosis_ticks = diagnosis.duration_ticks if diagnosis is not None else DIAGNOSIS_TICKS
    return diagnosis_ticks + REINTEGRATION_TICKS
