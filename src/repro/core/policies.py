"""Error-handling strategies per execution class (Section 2.2).

The light-weight NLFT framework prescribes one strategy per class of
execution:

1. **Critical tasks** — tolerate all transient faults via TEM; enforce an
   omission failure when recovery cannot meet the deadline.
2. **Non-critical tasks** — shut the task down on the first detected error;
   the rest of the node keeps running.
3. **Real-time kernel** — any detected error silences the node; recovery is
   escalated to the system level.

:class:`NlftPolicy` encodes this decision table so node implementations and
campaign classifiers share a single source of truth, and so ablation studies
can swap in alternative policies (e.g. :func:`fail_silent_policy`, which
models a conventional FS node by escalating *every* detected error).

The weakly-hard extension (Liang et al., arXiv:2008.06192) adds
:class:`MissBudgetPolicy`: a critical task whose (m,k) window still has miss
budget answers a detected error with :attr:`ErrorResponse.ACCEPT_MISS` — a
controlled, budgeted omission instead of a recovery copy — and falls back to
full TEM once the budget is exhausted.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from ..kernel.task import Criticality, MKWindow, WeaklyHardConstraint


class ExecutionClass(enum.Enum):
    """Where an error was detected."""

    CRITICAL_TASK = "critical_task"
    NON_CRITICAL_TASK = "non_critical_task"
    KERNEL = "kernel"


class ErrorResponse(enum.Enum):
    """What the node does about a detected error."""

    #: Re-execute under TEM; omission if the deadline forbids recovery.
    MASK_WITH_TEM = "mask_with_tem"
    #: Stop the offending task, keep the node alive.
    SHUTDOWN_TASK = "shutdown_task"
    #: Node becomes silent; system-level redundancy takes over.
    FAIL_SILENT = "fail_silent"
    #: Deliver nothing this period, reintegrate quickly.
    OMISSION = "omission"
    #: Weakly-hard: take a controlled miss the (m,k) budget absorbs instead
    #: of running a recovery copy; fall back to MASK_WITH_TEM when spent.
    ACCEPT_MISS = "accept_miss"


@dataclasses.dataclass(frozen=True)
class NlftPolicy:
    """The strategy table of Section 2.2 (overridable per entry)."""

    critical_task: ErrorResponse = ErrorResponse.MASK_WITH_TEM
    non_critical_task: ErrorResponse = ErrorResponse.SHUTDOWN_TASK
    kernel: ErrorResponse = ErrorResponse.FAIL_SILENT

    def response_for(self, execution_class: ExecutionClass) -> ErrorResponse:
        """Strategy for an error detected in the given execution class."""
        return {
            ExecutionClass.CRITICAL_TASK: self.critical_task,
            ExecutionClass.NON_CRITICAL_TASK: self.non_critical_task,
            ExecutionClass.KERNEL: self.kernel,
        }[execution_class]

    def classify(self, criticality: Criticality) -> ExecutionClass:
        """Map a task's criticality to its execution class."""
        if criticality is Criticality.CRITICAL:
            return ExecutionClass.CRITICAL_TASK
        return ExecutionClass.NON_CRITICAL_TASK


def nlft_policy() -> NlftPolicy:
    """The paper's light-weight NLFT strategy table."""
    return NlftPolicy()


@dataclasses.dataclass(frozen=True)
class MissBudgetPolicy:
    """Weakly-hard NLFT: the Section 2.2 table plus an (m,k) miss budget.

    Wraps a base :class:`NlftPolicy` with a per-task
    :class:`~repro.kernel.task.WeaklyHardConstraint`.  The policy itself is
    immutable; per-job state lives in the
    :class:`~repro.kernel.task.MKWindow` the caller threads through
    :meth:`response_for` (and, at the TEM layer, through the
    ``accept_miss`` hook via :meth:`MKWindow.can_accept_miss`).
    """

    constraint: WeaklyHardConstraint
    base: NlftPolicy = dataclasses.field(default_factory=NlftPolicy)

    def make_window(self) -> MKWindow:
        """Fresh sliding miss window for one task instance."""
        return MKWindow(self.constraint)

    def response_for(
        self, execution_class: ExecutionClass, window: Optional[MKWindow] = None
    ) -> ErrorResponse:
        """Strategy for an error, given the task's current miss window.

        Critical-task errors become :attr:`ErrorResponse.ACCEPT_MISS` while
        the window has budget; everything else (and an exhausted or absent
        window) defers to the base table.
        """
        if (
            execution_class is ExecutionClass.CRITICAL_TASK
            and window is not None
            and window.can_accept_miss()
        ):
            return ErrorResponse.ACCEPT_MISS
        return self.base.response_for(execution_class)

    def classify(self, criticality: Criticality) -> ExecutionClass:
        return self.base.classify(criticality)


def weakly_hard_policy(
    max_misses: int, window_jobs: int, base: Optional[NlftPolicy] = None
) -> MissBudgetPolicy:
    """Miss-budget-aware NLFT with an (m,k) = (max_misses, window_jobs)
    constraint; (0, 1) degenerates to the base policy exactly."""
    return MissBudgetPolicy(
        constraint=WeaklyHardConstraint(max_misses=max_misses, window_jobs=window_jobs),
        base=base if base is not None else nlft_policy(),
    )


def fail_silent_policy() -> NlftPolicy:
    """A conventional fail-silent node: every detected error silences the
    node (the FS baseline of the dependability analysis, Section 3.2.1)."""
    return NlftPolicy(
        critical_task=ErrorResponse.FAIL_SILENT,
        non_critical_task=ErrorResponse.FAIL_SILENT,
        kernel=ErrorResponse.FAIL_SILENT,
    )
