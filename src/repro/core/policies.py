"""Error-handling strategies per execution class (Section 2.2).

The light-weight NLFT framework prescribes one strategy per class of
execution:

1. **Critical tasks** — tolerate all transient faults via TEM; enforce an
   omission failure when recovery cannot meet the deadline.
2. **Non-critical tasks** — shut the task down on the first detected error;
   the rest of the node keeps running.
3. **Real-time kernel** — any detected error silences the node; recovery is
   escalated to the system level.

:class:`NlftPolicy` encodes this decision table so node implementations and
campaign classifiers share a single source of truth, and so ablation studies
can swap in alternative policies (e.g. :func:`fail_silent_policy`, which
models a conventional FS node by escalating *every* detected error).
"""

from __future__ import annotations

import dataclasses
import enum

from ..kernel.task import Criticality


class ExecutionClass(enum.Enum):
    """Where an error was detected."""

    CRITICAL_TASK = "critical_task"
    NON_CRITICAL_TASK = "non_critical_task"
    KERNEL = "kernel"


class ErrorResponse(enum.Enum):
    """What the node does about a detected error."""

    #: Re-execute under TEM; omission if the deadline forbids recovery.
    MASK_WITH_TEM = "mask_with_tem"
    #: Stop the offending task, keep the node alive.
    SHUTDOWN_TASK = "shutdown_task"
    #: Node becomes silent; system-level redundancy takes over.
    FAIL_SILENT = "fail_silent"
    #: Deliver nothing this period, reintegrate quickly.
    OMISSION = "omission"


@dataclasses.dataclass(frozen=True)
class NlftPolicy:
    """The strategy table of Section 2.2 (overridable per entry)."""

    critical_task: ErrorResponse = ErrorResponse.MASK_WITH_TEM
    non_critical_task: ErrorResponse = ErrorResponse.SHUTDOWN_TASK
    kernel: ErrorResponse = ErrorResponse.FAIL_SILENT

    def response_for(self, execution_class: ExecutionClass) -> ErrorResponse:
        """Strategy for an error detected in the given execution class."""
        return {
            ExecutionClass.CRITICAL_TASK: self.critical_task,
            ExecutionClass.NON_CRITICAL_TASK: self.non_critical_task,
            ExecutionClass.KERNEL: self.kernel,
        }[execution_class]

    def classify(self, criticality: Criticality) -> ExecutionClass:
        """Map a task's criticality to its execution class."""
        if criticality is Criticality.CRITICAL:
            return ExecutionClass.CRITICAL_TASK
        return ExecutionClass.NON_CRITICAL_TASK


def nlft_policy() -> NlftPolicy:
    """The paper's light-weight NLFT strategy table."""
    return NlftPolicy()


def fail_silent_policy() -> NlftPolicy:
    """A conventional fail-silent node: every detected error silences the
    node (the FS baseline of the dependability analysis, Section 3.2.1)."""
    return NlftPolicy(
        critical_task=ErrorResponse.FAIL_SILENT,
        non_critical_task=ErrorResponse.FAIL_SILENT,
        kernel=ErrorResponse.FAIL_SILENT,
    )
