"""Priority-assignment policies for the fixed-priority kernel.

Section 2.8: "In our kernel, priority assignments are made on the basis of
the *criticality* of the task ... e.g. a brake request is assigned a higher
priority than a diagnostic request."

Policies provided:

* :func:`assign_criticality_monotonic` — the paper's policy: all critical
  tasks above all non-critical ones; within a class, deadline-monotonic
  (shorter relative deadline = higher priority), which is optimal for
  constrained-deadline FP scheduling within each band.
* :func:`assign_deadline_monotonic` — plain deadline-monotonic.
* :func:`audsley_assignment` — Audsley's optimal priority-ordering
  algorithm with a pluggable feasibility test (works with the plain and the
  fault-tolerant RTA alike).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from ..errors import SchedulingError
from .task import Criticality, TaskSpec


def _with_priorities(ordered: Sequence[TaskSpec]) -> List[TaskSpec]:
    """Re-issue specs with priorities 0..n-1 following the given order."""
    return [dataclasses.replace(task, priority=index) for index, task in enumerate(ordered)]


def assign_deadline_monotonic(tasks: Sequence[TaskSpec]) -> List[TaskSpec]:
    """Deadline-monotonic order (ties broken by name for determinism)."""
    ordered = sorted(tasks, key=lambda t: (t.relative_deadline, t.name))
    return _with_priorities(ordered)


def assign_criticality_monotonic(tasks: Sequence[TaskSpec]) -> List[TaskSpec]:
    """The paper's policy: criticality first, deadline-monotonic within.

    Critical tasks occupy the highest priority band so that a non-critical
    overrun can never delay a brake command — together with MMU confinement
    this realises the "no interaction between critical and non-critical
    tasks" requirement of Section 2.2.
    """
    ordered = sorted(
        tasks,
        key=lambda t: (t.criticality is not Criticality.CRITICAL, t.relative_deadline, t.name),
    )
    return _with_priorities(ordered)


def audsley_assignment(
    tasks: Sequence[TaskSpec],
    feasible_at: Callable[[Sequence[TaskSpec], TaskSpec], bool],
) -> Optional[List[TaskSpec]]:
    """Audsley's optimal priority assignment.

    Assigns the *lowest* priority level to any task that is feasible there
    (given all others at higher priority), then recurses on the rest.  If no
    task fits a level, no fixed-priority assignment exists for this
    feasibility test and None is returned.

    Parameters
    ----------
    feasible_at:
        ``feasible_at(task_set_with_priorities, task)`` must return True
        when *task* meets its deadline with the priorities encoded in
        *task_set_with_priorities* (the candidate occupies the lowest level).
    """
    remaining = list(tasks)
    assigned: List[TaskSpec] = []
    level = len(remaining) - 1
    while remaining:
        placed = False
        for candidate in sorted(remaining, key=lambda t: t.name):
            trial_rest = [
                dataclasses.replace(t, priority=i)
                for i, t in enumerate(t2 for t2 in remaining if t2 is not candidate)
            ]
            trial_candidate = dataclasses.replace(candidate, priority=level)
            if feasible_at(trial_rest + [trial_candidate], trial_candidate):
                assigned.append(dataclasses.replace(candidate, priority=level))
            else:
                continue
            remaining.remove(candidate)
            level -= 1
            placed = True
            break
        if not placed:
            return None
    # Re-normalise priorities to 0..n-1 preserving the found order.
    ordered = sorted(assigned, key=lambda t: t.priority)
    return _with_priorities(ordered)


def validate_distinct_priorities(tasks: Sequence[TaskSpec]) -> None:
    """Raise when two tasks share a priority level."""
    priorities = [t.priority for t in tasks]
    if len(priorities) != len(set(priorities)):
        raise SchedulingError(f"priorities are not distinct: {priorities}")
