"""Shared resources with fault-tolerant access protocols (ROADMAP item 4).

Multicore nodes share data structures — sensor images, actuator command
buffers, the kernel's own tables — across cores.  A fault striking a task
*inside* a critical section is qualitatively worse than one striking
straight-line code: with a classical lock the error can leave the resource
held, stretching every other core's blocking time; with an optimistic
protocol the failed attempt simply never commits.  Two protocols are
modelled so the campaigns can measure that trade (blocking-time blowup vs
retry overhead):

* :attr:`ResourceProtocol.LOCK` — a classical MSRP/priority-ceiling-style
  spin lock: a task that finds the resource busy *spins* (burning its own
  budget) until granted, and both spinning and holding tasks run
  non-preemptively so the blocking a high-priority task suffers is bounded
  by one critical section per remote core — plus the kernel's cleanup
  delay when a fault aborts a holder mid-section.
* :attr:`ResourceProtocol.LOCK_FREE` — a LEFT-RS-style lock-free retry
  loop (arXiv:2512.21701): a task enters its section optimistically,
  snapshots the resource's *commit counter*, and at the end commits only
  if no other core committed meanwhile; otherwise it re-executes the
  section.  Faulty attempts never commit, so an aborted task leaves no
  state for others to clean up.

The :class:`ResourceManager` is pure bookkeeping — holders, waiter queues,
commit counters, statistics.  All *timing* (spin durations, retry
re-execution, cleanup delays) is played out by the DES scheduler
(:mod:`repro.kernel.scheduler`), which consults the manager at section
boundaries.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SchedulingError


class ResourceProtocol(enum.Enum):
    """How tasks arbitrate access to a shared resource."""

    #: Classical spin lock with non-preemptable holders (MSRP-style).
    LOCK = "lock"
    #: LEFT-RS-style optimistic retry loop (commit-counter conflict check).
    LOCK_FREE = "lock_free"


@dataclasses.dataclass(frozen=True)
class CriticalSection:
    """One shared-resource access inside a task's copy.

    Offsets are ticks of *pure computation* into the copy: the section is
    entered when the copy has executed ``start`` ticks and left
    ``duration`` ticks of execution later.  Spins and retries stretch the
    wall-clock picture but not these computation offsets.
    """

    resource: str
    start: int
    duration: int

    def __post_init__(self) -> None:
        if not self.resource:
            raise ConfigurationError("critical section needs a resource name")
        if self.start < 0:
            raise ConfigurationError("critical section start must be non-negative")
        if self.duration <= 0:
            raise ConfigurationError("critical section duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration


def validate_sections(sections: "Tuple[CriticalSection, ...]", wcet: int, name: str) -> None:
    """Sections must be ordered, non-overlapping and inside the WCET."""
    previous_end = 0
    for section in sections:
        if section.start < previous_end:
            raise ConfigurationError(
                f"task {name!r}: critical sections must be ordered and "
                f"non-overlapping (section on {section.resource!r} starts at "
                f"{section.start}, previous ends at {previous_end})"
            )
        if section.end > wcet:
            raise ConfigurationError(
                f"task {name!r}: critical section on {section.resource!r} "
                f"ends at {section.end}, past the WCET {wcet}"
            )
        previous_end = section.end


@dataclasses.dataclass
class ResourceStats:
    """Per-node resource-contention accounting (campaign bookkeeping).

    Tick-valued counters are charged by the scheduler (only it knows the
    simulated clock); event counts are charged here.
    """

    #: Successful acquisitions (LOCK grants + LOCK_FREE commits).
    acquisitions: int = 0
    #: LOCK: requests that found the resource busy and had to spin.
    contentions: int = 0
    #: LOCK: total ticks spent spinning (remote blocking).
    blocking_ticks: int = 0
    #: LOCK_FREE: section re-executions forced by a remote commit.
    retries: int = 0
    #: LOCK_FREE: total ticks of section re-execution.
    retry_ticks: int = 0
    #: Copies aborted by a fault while inside (or spinning on) a section.
    cs_faults: int = 0
    #: LOCK: extra holding ticks spent cleaning up after a faulted holder.
    cleanup_ticks: int = 0


@dataclasses.dataclass
class _ResourceState:
    name: str
    holder: Optional[object] = None
    commit_count: int = 0
    #: Waiters as (priority, arrival_seq, job) — granted best priority
    #: first, FIFO within a priority (deterministic).
    waiters: List["Tuple[int, int, object]"] = dataclasses.field(default_factory=list)


class ResourceManager:
    """Bookkeeping for one node's shared resources under one protocol."""

    def __init__(self, protocol: ResourceProtocol = ResourceProtocol.LOCK) -> None:
        self.protocol = protocol
        self.stats = ResourceStats()
        self._resources: Dict[str, _ResourceState] = {}
        self._arrival_seq = 0

    def _state(self, name: str) -> _ResourceState:
        state = self._resources.get(name)
        if state is None:
            state = _ResourceState(name=name)
            self._resources[name] = state
        return state

    # ------------------------------------------------------------------
    # LOCK protocol
    # ------------------------------------------------------------------
    def lock_acquire(self, name: str, job: object, priority: int) -> bool:
        """Try to take the lock; False enqueues *job* as a spinning waiter."""
        state = self._state(name)
        if state.holder is None:
            state.holder = job
            self.stats.acquisitions += 1
            return True
        self._arrival_seq += 1
        state.waiters.append((priority, self._arrival_seq, job))
        self.stats.contentions += 1
        return False

    def lock_release(self, name: str, job: object) -> Optional[object]:
        """Release the lock; returns the waiter to grant next (if any).

        The grantee becomes the holder immediately — the scheduler only
        has to fold its spin time and resume its segment.
        """
        state = self._state(name)
        if state.holder is not job:
            raise SchedulingError(f"resource {name!r} released by a non-holder")
        state.holder = None
        state.commit_count += 1
        if not state.waiters:
            return None
        state.waiters.sort(key=lambda w: (w[0], w[1]))
        _, _, grantee = state.waiters.pop(0)
        state.holder = grantee
        self.stats.acquisitions += 1
        return grantee

    def cancel_wait(self, name: str, job: object) -> None:
        """Remove *job* from the waiter queue (abort/preemption cleanup)."""
        state = self._state(name)
        state.waiters = [w for w in state.waiters if w[2] is not job]

    def holder_of(self, name: str) -> Optional[object]:
        return self._state(name).holder

    # ------------------------------------------------------------------
    # LOCK_FREE protocol
    # ------------------------------------------------------------------
    def free_begin(self, name: str) -> int:
        """Optimistic section entry: snapshot the commit counter."""
        return self._state(name).commit_count

    def free_commit(self, name: str, entry_count: int) -> bool:
        """Commit if nobody else committed since entry; else signal retry."""
        state = self._state(name)
        if state.commit_count != entry_count:
            self.stats.retries += 1
            return False
        state.commit_count += 1
        self.stats.acquisitions += 1
        return True

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop holders and waiters (node shutdown/restart).

        Commit counters survive — they are monotone version numbers, and
        restarting a node must not make a stale in-flight snapshot on
        another node suddenly look current.
        """
        for name in sorted(self._resources):
            state = self._resources[name]
            state.holder = None
            state.waiters.clear()
