"""Execution-time monitoring (budget timers).

Section 2.4: "To ensure that a task does not execute for too long, which may
prevent other tasks from executing, an execution time monitor may be used.
For example, budget timers [2] may be used to monitor the execution time of
individual pre-emptive tasks."

A budget is expressed in *consumed CPU time* of one execution copy — it keeps
counting across preemptions (the monitored quantity is the task's own
execution time, not elapsed wall-clock time).  When the consumed time reaches
the budget, the kernel terminates the copy and treats the violation as a
detected error (EDM mechanism ``"execution_time"``).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError

#: Default slack factor on top of the WCET before the timer fires.  A real
#: kernel programs the budget slightly above the WCET to absorb measurement
#: jitter; 1.2 is a conventional engineering margin.
DEFAULT_BUDGET_FACTOR = 1.2


@dataclasses.dataclass
class ExecutionBudget:
    """Tracks one copy's CPU-time consumption against its budget.

    Attributes
    ----------
    budget:
        Maximum CPU time (ticks) the copy may consume.
    consumed:
        CPU time consumed so far (updated by the scheduler at every
        preemption and completion point).
    """

    budget: int
    consumed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")
        if self.consumed < 0:
            raise ConfigurationError("consumed time cannot be negative")

    @property
    def remaining(self) -> int:
        """CPU time left before the timer fires (never negative)."""
        return max(0, self.budget - self.consumed)

    @property
    def exhausted(self) -> bool:
        """True once consumption has reached the budget."""
        return self.consumed >= self.budget

    def consume(self, amount: int) -> None:
        """Account *amount* ticks of execution."""
        if amount < 0:
            raise ConfigurationError(f"cannot consume negative time {amount}")
        self.consumed += amount


def budget_for_wcet(wcet: int, factor: float = DEFAULT_BUDGET_FACTOR) -> int:
    """Budget for a copy with the given WCET (rounded up, at least WCET+1).

    The +1 guarantees that a copy running exactly its WCET never trips the
    timer even when the factor rounds down to the WCET itself.
    """
    if wcet <= 0:
        raise ConfigurationError(f"wcet must be positive, got {wcet}")
    if factor < 1.0:
        raise ConfigurationError(f"budget factor must be >= 1, got {factor}")
    return max(int(wcet * factor), wcet + 1)
