"""Classic fixed-priority response-time analysis (RTA).

Standard worst-case response-time analysis for preemptive fixed-priority
scheduling of sporadic/periodic tasks with constrained deadlines
(Joseph & Pandya / Audsley et al.; the textbook treatment is Burns &
Wellings [6], which the paper cites for its scheduling framework)::

    R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j

iterated to the least fixed point.  A task set is schedulable when
R_i <= D_i for every task.

This module analyses *plain* execution (each job runs one copy).  The
fault-tolerant analysis accounting for TEM's double execution and recovery
slack lives in :mod:`repro.kernel.ft_analysis`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from ..errors import SchedulingError
from .task import TaskSpec


@dataclasses.dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of RTA for one task."""

    task: str
    response_time: Optional[int]  # None when the iteration diverged
    deadline: int

    @property
    def schedulable(self) -> bool:
        return self.response_time is not None and self.response_time <= self.deadline


@dataclasses.dataclass(frozen=True)
class AnalysisResult:
    """RTA outcome for a whole task set."""

    per_task: List[ResponseTimeResult]

    @property
    def schedulable(self) -> bool:
        """True iff every task meets its deadline."""
        return all(r.schedulable for r in self.per_task)

    def response_time(self, task: str) -> Optional[int]:
        for result in self.per_task:
            if result.task == task:
                return result.response_time
        raise SchedulingError(f"unknown task {task!r} in analysis result")


def higher_priority(tasks: Sequence[TaskSpec], task: TaskSpec) -> List[TaskSpec]:
    """Tasks with strictly higher priority than *task* (lower number)."""
    return [t for t in tasks if t.priority < task.priority]


def jobs_in(task: TaskSpec, interval: int) -> int:
    """Worst-case number of *task* jobs with releases inside any interval
    of the given length — the ``ceil(w / T)`` bound every RTA interference
    term uses, and the job count the (m,k)-aware analysis feeds into
    :meth:`~repro.kernel.task.WeaklyHardConstraint.max_misses_in`."""
    if interval <= 0:
        return 0
    return math.ceil(interval / task.period)


def response_time(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    cost: Optional[Dict[str, int]] = None,
    limit_factor: int = 100,
) -> Optional[int]:
    """Worst-case response time of *task* under the given per-copy costs.

    Parameters
    ----------
    cost:
        Optional override of each task's execution demand (used by the
        fault-tolerant analysis to inject doubled TEM costs); defaults to
        each task's WCET.
    limit_factor:
        Divergence guard — the iteration aborts (returns None) once the
        candidate response time exceeds ``limit_factor * deadline``.
    """
    demand = cost if cost is not None else {t.name: t.wcet for t in tasks}
    own_cost = demand[task.name]
    interference_sources = higher_priority(tasks, task)
    r = own_cost
    bound = task.relative_deadline * limit_factor
    while True:
        total = own_cost + sum(
            math.ceil(r / t.period) * demand[t.name] for t in interference_sources
        )
        if total == r:
            return r
        if total > bound:
            return None
        r = total


def analyse(tasks: Sequence[TaskSpec], cost: Optional[Dict[str, int]] = None) -> AnalysisResult:
    """Run RTA for every task; see :func:`response_time`."""
    if not tasks:
        raise SchedulingError("cannot analyse an empty task set")
    results = [
        ResponseTimeResult(
            task=t.name,
            response_time=response_time(tasks, t, cost=cost),
            deadline=t.relative_deadline,
        )
        for t in tasks
    ]
    return AnalysisResult(per_task=results)


def utilization(tasks: Sequence[TaskSpec], cost: Optional[Dict[str, int]] = None) -> float:
    """Total processor utilization sum(C_i / T_i)."""
    demand = cost if cost is not None else {t.name: t.wcet for t in tasks}
    return sum(demand[t.name] / t.period for t in tasks)
