"""Task model of the real-time kernel.

The paper's basic task model (Figure 2) is a periodic *read input - compute -
write output* loop.  A :class:`TaskSpec` describes the static attributes —
period, deadline, worst-case execution time (WCET), priority, criticality —
and an :class:`Executable` provides the computation.

Priority convention: **lower number = higher priority** (priority 0 is the
most urgent).  Priorities are assigned on the basis of task *criticality*
(Section 2.8): every critical task outranks every non-critical task; see
:mod:`repro.kernel.priority`.

Two executable flavours exist:

* :class:`CallableExecutable` — a plain Python function plus an execution
  time; fast, used in long distributed simulations.  Fault effects on these
  tasks are modelled through
  :class:`~repro.cpu.profiles.ManifestationProfile`.
* :class:`MachineExecutable` — a mini-ISA program on a simulated processor;
  slower but with *emergent* fault behaviour, used by the fault-injection
  campaigns that estimate coverage (experiment E5).
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..cpu.assembler import AssembledProgram
from ..cpu.machine import Machine
from ..errors import ConfigurationError

from ..types import Result
from .resources import CriticalSection, validate_sections


class Criticality(enum.Enum):
    """Task criticality classes of Section 2.2."""

    CRITICAL = "critical"
    NON_CRITICAL = "non_critical"


class TemMode(enum.Enum):
    """How a critical task's redundant copies are arranged (ROADMAP item 4).

    TEMPORAL is the paper's mechanism — copies run back to back on one
    core.  SPATIAL runs the two copies *concurrently on different cores*
    (node-level spatial redundancy, cf. the EFTOS voting farm,
    arXiv:1401.2920) with the comparison at joint completion and the
    recovery copy placed on a third core when one exists.  On a
    single-core node SPATIAL degenerates to TEMPORAL — there is no second
    core to be spatial on.
    """

    TEMPORAL = "temporal"
    SPATIAL = "spatial"


@dataclasses.dataclass(frozen=True)
class WeaklyHardConstraint:
    """A weakly-hard ``(m, k)`` deadline constraint (Liang et al.,
    arXiv:2008.06192): in *any* window of ``window_jobs`` (k) consecutive
    jobs, at most ``max_misses`` (m) may miss their deadline.

    ``(0, 1)`` is the hard-deadline degenerate case — no job may ever
    miss — under which every weakly-hard code path must behave
    bit-identically to the hard-deadline implementation (the differential
    gate in ``tests/faults/test_mk_degeneracy.py`` enforces this).
    """

    max_misses: int
    window_jobs: int

    def __post_init__(self) -> None:
        if self.window_jobs < 1:
            raise ConfigurationError("(m,k): window k must be >= 1")
        if not 0 <= self.max_misses < self.window_jobs:
            raise ConfigurationError(
                f"(m,k): need 0 <= m < k, got m={self.max_misses} "
                f"k={self.window_jobs} (m >= k would constrain nothing)"
            )

    @property
    def is_hard(self) -> bool:
        """True when no miss is ever tolerated (m = 0)."""
        return self.max_misses == 0

    def max_misses_in(self, jobs: int) -> int:
        """Largest miss count any *jobs*-long run can carry without some
        k-window exceeding m misses.

        The extremal pattern packs m misses at the start of every k-aligned
        block: ``floor(jobs / k) * m`` full blocks plus up to ``m`` misses
        in the final partial block.
        """
        if jobs <= 0:
            return 0
        full, rest = divmod(jobs, self.window_jobs)
        return full * self.max_misses + min(rest, self.max_misses)


class MKWindow:
    """Sliding-window miss counter enforcing one task's (m,k) constraint.

    The window remembers the outcomes of the last ``k - 1`` jobs (miss =
    True); :meth:`can_accept_miss` answers the recovery policy's question
    — *may the next job miss without any k-window exceeding m misses?* —
    and :meth:`record` appends a job's actual outcome.

    The counter is checkpointable: :meth:`state` serialises the exact
    history and :meth:`resume` reconstructs it, and the property suite
    (``tests/property/test_mk_window.py``) proves that splitting any
    record sequence at any point across a checkpoint/resume leaves every
    subsequent decision unchanged.  The ``jobs``/``misses``/``violations``
    counters are shard-local statistics, deliberately excluded from the
    checkpoint: a resumed window restarts them at zero, and campaign
    totals are summed across shard records rather than read off a single
    window.
    """

    __slots__ = ("constraint", "_history", "jobs", "misses", "violations")

    def __init__(
        self,
        constraint: WeaklyHardConstraint,
        history: Iterable[int] = (),
    ) -> None:
        self.constraint = constraint
        self._history: "collections.deque[int]" = collections.deque(
            (1 if h else 0 for h in history),
            maxlen=constraint.window_jobs - 1,
        )
        self.jobs = 0
        self.misses = 0
        self.violations = 0

    # ------------------------------------------------------------------
    @property
    def recent_misses(self) -> int:
        """Misses among the last ``k - 1`` recorded jobs."""
        return sum(self._history)

    def can_accept_miss(self) -> bool:
        """True iff a miss on the *next* job keeps every window within m.

        Only windows ending at the next job are newly completed, so the
        check is local: misses in the last ``k - 1`` outcomes plus the
        candidate miss must not exceed m.
        """
        return self.recent_misses + 1 <= self.constraint.max_misses

    def record(self, missed: bool) -> bool:
        """Append one job's outcome; returns True when this miss pushed a
        k-window past m misses (an (m,k) violation — node-level failure
        in the weakly-hard dependability model)."""
        violated = bool(missed) and not self.can_accept_miss()
        self.jobs += 1
        if missed:
            self.misses += 1
        if violated:
            self.violations += 1
        self._history.append(1 if missed else 0)
        return violated

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def state(self) -> Tuple[int, ...]:
        """The window history (last ``k - 1`` outcomes), oldest first, as
        JSON-friendly ints.  The ``jobs``/``misses``/``violations``
        statistics counters are *not* part of the checkpoint (see the
        class docstring)."""
        return tuple(self._history)

    @classmethod
    def resume(
        cls, constraint: WeaklyHardConstraint, state: Iterable[int]
    ) -> "MKWindow":
        """Reconstruct a window from :meth:`state` output.

        Every subsequent :meth:`can_accept_miss`/:meth:`record` decision
        matches the original window's; the statistics counters restart at
        zero (they are shard-local, not checkpointed)."""
        return cls(constraint, history=state)


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Static description of a periodic task.

    All times are simulator ticks (microseconds).

    Attributes
    ----------
    name:
        Unique identifier within a node.
    period:
        Release period.
    wcet:
        Worst-case execution time of *one* copy (TEM doubles/triples the
        demand for critical tasks; the schedulability analysis accounts
        for that, not the spec).
    deadline:
        Relative deadline; defaults to the period.
    priority:
        Fixed priority; lower number = higher priority.
    criticality:
        CRITICAL tasks run under temporal error masking; NON_CRITICAL tasks
        run once and are shut down on error (Section 2.2).
    offset:
        Release offset of the first job.
    weakly_hard:
        Optional (m,k) constraint: the task tolerates up to m deadline
        misses in any k consecutive jobs (``None`` = hard deadline, the
        paper's default).  Consumed by the miss-budget-aware recovery
        policy (:mod:`repro.core.tem`) and the (m,k)-aware FT-RTA
        (:func:`repro.kernel.ft_analysis.mk_response_time`).
    core:
        Home core under partitioned multicore scheduling (``None`` =
        core 0, which on an M = 1 node is the paper's single processor).
        Ignored under global scheduling.
    tem_mode:
        Copy arrangement for critical tasks: temporal masking (the
        paper's TEM) or spatial redundancy across cores.
    critical_sections:
        Shared-resource accesses inside one copy
        (:class:`~repro.kernel.resources.CriticalSection` offsets in
        computation ticks); must be ordered, non-overlapping and inside
        the WCET.
    """

    name: str
    period: int
    wcet: int
    priority: int
    deadline: Optional[int] = None
    criticality: Criticality = Criticality.CRITICAL
    offset: int = 0
    weakly_hard: Optional[WeaklyHardConstraint] = None
    core: Optional[int] = None
    tem_mode: TemMode = TemMode.TEMPORAL
    critical_sections: Tuple[CriticalSection, ...] = ()

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"task {self.name!r}: period must be positive")
        if self.wcet <= 0:
            raise ConfigurationError(f"task {self.name!r}: wcet must be positive")
        if self.relative_deadline <= 0:
            raise ConfigurationError(f"task {self.name!r}: deadline must be positive")
        if self.wcet > self.relative_deadline:
            raise ConfigurationError(
                f"task {self.name!r}: wcet {self.wcet} exceeds deadline "
                f"{self.relative_deadline}"
            )
        if self.offset < 0:
            raise ConfigurationError(f"task {self.name!r}: offset must be non-negative")
        if self.core is not None and self.core < 0:
            raise ConfigurationError(f"task {self.name!r}: core must be non-negative")
        if self.critical_sections:
            validate_sections(self.critical_sections, self.wcet, self.name)

    @property
    def relative_deadline(self) -> int:
        """Deadline relative to release (defaults to the period)."""
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        """Single-copy utilization C/T."""
        return self.wcet / self.period

    @property
    def is_critical(self) -> bool:
        return self.criticality is Criticality.CRITICAL


@dataclasses.dataclass
class CopyPlan:
    """What one execution copy *would* do, as planned at dispatch time.

    The scheduler plays the plan out over simulated time; a fault arriving
    mid-copy may revise it (abort earlier, corrupt the result, stretch the
    duration).

    Attributes
    ----------
    duration:
        Execution time the copy needs (ticks of pure CPU time).
    result:
        Output tuple produced if the copy completes.
    detected_error:
        EDM mechanism name if a hardware/software check fires, else None.
    error_at:
        CPU time into the copy at which the EDM fires.
    bypasses_comparison:
        True for the rare control-flow error that jumps past the
        comparison/vote and delivers an unchecked result (Section 2.7).
    """

    duration: int
    result: Optional[Result]
    detected_error: Optional[str] = None
    error_at: Optional[int] = None
    bypasses_comparison: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("copy duration must be positive")
        if self.detected_error is not None:
            if self.error_at is None:
                self.error_at = self.duration
            if not 0 <= self.error_at <= self.duration:
                raise ConfigurationError("error_at must fall within the copy duration")


class Executable:
    """Computation behind a task.  Subclasses produce :class:`CopyPlan`s."""

    def plan_copy(self, inputs: Result, copy_index: int) -> CopyPlan:
        """Plan one execution copy for the given inputs.

        *copy_index* counts the copies of the current job (0-based); an
        executable may use it for diversity, logging, or test scripting.
        """
        raise NotImplementedError


class CallableExecutable(Executable):
    """A Python function with a fixed (or callable) execution time.

    Parameters
    ----------
    fn:
        Maps the input tuple to the output tuple — the *compute* phase of
        Figure 2.
    execution_time:
        Ticks of CPU time per copy, or a callable ``(inputs, copy_index) ->
        ticks`` for data-dependent timing.
    """

    def __init__(
        self,
        fn: Callable[[Result], Result],
        execution_time: "int | Callable[[Result, int], int]",
    ) -> None:
        self._fn = fn
        self._execution_time = execution_time

    def plan_copy(self, inputs: Result, copy_index: int) -> CopyPlan:
        if callable(self._execution_time):
            duration = int(self._execution_time(inputs, copy_index))
        else:
            duration = int(self._execution_time)
        outputs = tuple(self._fn(tuple(inputs)))
        return CopyPlan(duration=duration, result=outputs)


class MachineExecutable(Executable):
    """A mini-ISA program run on a dedicated simulated processor.

    The machine is *owned* by the executable: each copy re-prepares it
    (fresh registers, fresh stack), writes the inputs to ``input_base``,
    runs to HALT and reads ``output_count`` words from ``output_base``.

    Hardware exceptions and budget overruns surface in the returned
    :class:`CopyPlan` so the TEM machinery reacts exactly as the paper
    describes.
    """

    #: MMU protection-domain name used for task execution.
    TASK_DOMAIN = "task"

    def __init__(
        self,
        machine: Machine,
        program: AssembledProgram,
        entry: str = "start",
        input_base: int = 0x1800,
        output_base: int = 0x1900,
        input_count: int = 0,
        output_count: int = 1,
        max_steps: int = 100_000,
        confine_with_mmu: bool = True,
        stack_words: int = 256,
    ) -> None:
        self.machine = machine
        self.program = program
        self.entry_address = program.address_of(entry) if entry in program.labels else program.origin
        self.input_base = input_base
        self.output_base = output_base
        self.input_count = input_count
        self.output_count = output_count
        self.max_steps = max_steps
        self.confine_with_mmu = confine_with_mmu
        machine.load_program(program)
        machine.seal_rom()
        if confine_with_mmu:
            self._install_regions(stack_words)

    def _install_regions(self, stack_words: int) -> None:
        """Confine the task to its code, data and stack (Section 2.4).

        With these regions installed and the task run in its own protection
        domain, a corrupted PC or SP that leaves the task's footprint is
        caught by the MMU as an address error — the fault-confinement EDM
        of Table 1.
        """
        from ..cpu.mmu import Region

        mmu = self.machine.mmu
        mmu.add_region(Region(
            base=self.program.origin, size=max(1, self.program.size),
            permissions="rx", domain=self.TASK_DOMAIN, name="code",
        ))
        data_base = min(self.input_base, self.output_base)
        data_end = max(self.input_base + max(1, self.input_count),
                       self.output_base + self.output_count)
        mmu.add_region(Region(
            base=data_base, size=data_end - data_base,
            permissions="rw", domain=self.TASK_DOMAIN, name="data",
        ))
        stack_top = self.machine.memory.size_words
        mmu.add_region(Region(
            base=stack_top - stack_words, size=stack_words,
            permissions="rw", domain=self.TASK_DOMAIN, name="stack",
        ))

    def plan_copy(self, inputs: Result, copy_index: int) -> CopyPlan:
        machine = self.machine
        machine.prepare(self.entry_address)
        if self.input_count:
            machine.write_words(self.input_base, [int(v) for v in inputs[: self.input_count]])
        if self.confine_with_mmu:
            machine.mmu.enter_domain(self.TASK_DOMAIN)
        try:
            run = machine.run(max_steps=self.max_steps)
        finally:
            machine.mmu.enter_kernel()
        duration = max(1, run.cycles * machine.cycle_ticks)
        if run.exception is not None:
            return CopyPlan(
                duration=duration,
                result=None,
                detected_error=run.exception.mechanism,
                error_at=duration,
            )
        if not run.halted:
            # Budget exhausted at machine level -> timing EDM.
            return CopyPlan(
                duration=duration,
                result=None,
                detected_error="execution_time",
                error_at=duration,
            )
        outputs = tuple(machine.read_words(self.output_base, self.output_count))
        return CopyPlan(duration=duration, result=outputs)


def validate_task_set(tasks: Sequence[TaskSpec]) -> None:
    """Reject duplicate names or duplicate priorities within one node.

    Distinct priorities keep the fixed-priority scheduler deterministic —
    the paper's kernel assigns unique, criticality-derived priorities.
    """
    names = [t.name for t in tasks]
    if len(names) != len(set(names)):
        raise ConfigurationError(f"duplicate task names in {names}")
    priorities = [t.priority for t in tasks]
    if len(priorities) != len(set(priorities)):
        raise ConfigurationError(
            f"duplicate priorities {priorities}; fixed-priority scheduling "
            "requires unique priorities"
        )
