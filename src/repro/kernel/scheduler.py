"""Fixed-priority preemptive M-core scheduler with TEM support.

This is the heart of the simulated real-time kernel (Sections 2.5 and 2.8,
extended to multicore nodes per ROADMAP item 4).  Responsibilities:

* periodic job release for every registered task;
* fixed-priority preemptive dispatching over M cores (lower priority
  number wins) under a partitioned or global placement policy
  (:class:`~repro.kernel.cores.PlacementPolicy`); with M = 1 both reduce
  bit-identically to the paper's single-processor kernel;
* playing execution *copies* out over simulated time, including budget
  timers (execution-time monitoring) and EDM-triggered aborts;
* driving a :class:`~repro.core.tem.TemStateMachine` per critical job —
  double execution, comparison, recovery copies, majority vote, deadline
  checks, omission enforcement — or, for tasks marked
  :attr:`~repro.kernel.task.TemMode.SPATIAL`, a
  :class:`~repro.core.tem.SpatialTem` coordinator racing concurrent copies
  on distinct cores;
* arbitrating shared-resource critical sections through a
  :class:`~repro.kernel.resources.ResourceManager` (MSRP-style spin lock
  or LEFT-RS-style lock-free retries), including the kernel-side cleanup
  when a fault aborts a copy *inside* a section;
* enforcing weakly-hard (m,k) miss budgets: the scheduler owns one
  checkpointable :class:`~repro.kernel.task.MKWindow` per weakly-hard
  task and threads its ``accept_miss`` hook into the TEM machinery;
* shutting down non-critical tasks on their first detected error
  (Section 2.2, strategy 2);
* escalating kernel-level errors to the node (strategy 3: fail-silent).

Fault effects (:class:`~repro.cpu.profiles.FaultEffect`) are applied through
:meth:`Scheduler.apply_fault_effect`, which the node layer calls when the
fault injector strikes the host processor (optionally naming the struck
core on a multicore node).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.tem import SpatialTem, TemAction, TemOutcome, TemStateMachine
from ..cpu.profiles import FaultEffect
from ..errors import ConfigurationError, SchedulingError
from ..sim import PRIORITY_KERNEL, PRIORITY_OBSERVER, EventHandle, Simulator, TraceRecorder
from .budget import DEFAULT_BUDGET_FACTOR, ExecutionBudget, budget_for_wcet
from .cores import CoreSet, PlacementPolicy
from .resources import ResourceManager, ResourceProtocol
from .task import (
    CopyPlan,
    Criticality,
    Executable,
    MKWindow,
    Result,
    TaskSpec,
    TemMode,
    validate_task_set,
)


@dataclasses.dataclass(frozen=True)
class KernelConfig:
    """Tunable kernel overheads and policies.

    Attributes
    ----------
    budget_factor:
        Budget-timer margin over the WCET (Section 2.4).
    comparison_cost:
        Kernel time added to every copy after the first for the result
        comparison / vote bookkeeping.
    tem_max_copies:
        Hard per-job cap on executions (bounds reserved recovery slack).
    context_switch_cost:
        Added once at every dispatch/resume.
    fail_silent_mode:
        When True the kernel models a conventional *fail-silent* node
        (the paper's FS baseline): detection machinery runs unchanged —
        double execution, comparison, EDMs — but the reaction to ANY
        detected error is to silence the node instead of recovering.
    cores:
        Number of identical cores on this node (M).  The default of 1 is
        the paper's single-processor node, reproduced bit for bit.
    placement:
        Partitioned (per-task home cores) or global (one shared ready
        queue, migration allowed) fixed-priority scheduling.
    resource_protocol:
        Arbitration for shared-resource critical sections: MSRP-style
        spin lock or LEFT-RS-style lock-free retry loop.
    cs_fault_cleanup_cost:
        Extra ticks the kernel keeps a *lock* held while cleaning up
        after a fault aborted the holder mid-section (the blocking-time
        blowup the lock-free protocol avoids by construction).
    """

    budget_factor: float = DEFAULT_BUDGET_FACTOR
    comparison_cost: int = 0
    tem_max_copies: int = TemStateMachine.DEFAULT_MAX_COPIES
    context_switch_cost: int = 0
    fail_silent_mode: bool = False
    cores: int = 1
    placement: PlacementPolicy = PlacementPolicy.PARTITIONED
    resource_protocol: ResourceProtocol = ResourceProtocol.LOCK
    cs_fault_cleanup_cost: int = 0

    def __post_init__(self) -> None:
        if self.comparison_cost < 0 or self.context_switch_cost < 0:
            raise ConfigurationError("kernel overheads must be non-negative")
        if self.tem_max_copies < 2:
            raise ConfigurationError("TEM needs at least two copies per job")
        if self.cores < 1:
            raise ConfigurationError("a node needs at least one core")
        if self.cs_fault_cleanup_cost < 0:
            raise ConfigurationError("cleanup cost must be non-negative")


class JobState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


@dataclasses.dataclass
class JobStats:
    """Per-scheduler counters (coverage/outcome accounting)."""

    released: int = 0
    delivered_ok: int = 0
    delivered_masked: int = 0
    omissions: int = 0
    deadline_misses: int = 0
    edm_detections: int = 0
    undetected_wrong_outputs: int = 0
    kernel_errors: int = 0
    noncritical_shutdowns: int = 0
    preemptions: int = 0
    #: Global-FP only: jobs resumed on a different core than they last ran.
    migrations: int = 0
    #: Weakly-hard misses the scheduler-owned (m,k) windows could NOT absorb.
    mk_violations: int = 0


@dataclasses.dataclass
class _Section:
    """Runtime state of one critical section within the current copy.

    ``enter_at``/``exit_at`` are *consumed-time* offsets; spins and
    retries stretch them together with the plan duration so that the
    computation inside and after the section keeps its length.
    """

    resource: str
    length: int
    enter_at: int
    exit_at: int
    entered: bool = False
    done: bool = False
    entry_count: int = 0
    retries: int = 0


class Job:
    """One released instance of a task (or one spatial copy of one)."""

    _sequence = 0

    def __init__(self, task: TaskSpec, release_time: int, inputs: Result) -> None:
        Job._sequence += 1
        self.job_id = f"{task.name}#{Job._sequence}"
        self.task = task
        self.release_time = release_time
        self.absolute_deadline = release_time + task.relative_deadline
        self.inputs = tuple(inputs)
        self.state = JobState.READY
        self.tem: Optional[TemStateMachine] = None
        self.copy_index = 0
        self.plan: Optional[CopyPlan] = None
        self.budget: Optional[ExecutionBudget] = None
        self.consumed = 0
        self.deadline_event: Optional[EventHandle] = None
        self.delivered: Optional[Result] = None
        # --- multicore state ---
        self.core: Optional[int] = None  # core of the last dispatch
        self.home_core: Optional[int] = None  # placement override (spatial copies)
        self.sections: List[_Section] = []
        self.spinning_on: Optional[_Section] = None
        self.holding: List[str] = []
        # --- spatial TEM ---
        self.spatial: Optional["_SpatialState"] = None  # on the logical job
        self.spatial_parent: Optional["Job"] = None  # on each copy
        self.launch_index = 0


@dataclasses.dataclass
class _SpatialState:
    """Book-keeping for one spatially-redundant job (the logical parent)."""

    tem: SpatialTem
    copies: List[Job] = dataclasses.field(default_factory=list)
    next_index: int = 0


@dataclasses.dataclass
class _Running:
    job: Job
    started_at: int
    event: EventHandle
    core: int = 0
    #: Context-switch ticks charged at the head of this segment (zero for
    #: in-place continuations at section boundaries).
    overhead: int = 0


@dataclasses.dataclass
class _TaskEntry:
    spec: TaskSpec
    executable: Executable
    input_provider: Callable[[], Result]
    active: bool = True
    release_event: Optional[EventHandle] = None
    #: Sporadic tasks are released on demand (events), never periodically;
    #: their spec.period is interpreted as the minimum inter-arrival time.
    sporadic: bool = False
    last_release: Optional[int] = None


class Scheduler:
    """The per-node real-time kernel.

    Parameters
    ----------
    sim:
        The discrete-event simulator providing the time base.
    name:
        Node/kernel name used in traces.
    trace:
        Optional shared :class:`TraceRecorder`.
    rng:
        Random generator used only for fault-effect realisation (result
        corruption patterns); scheduling itself is deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "kernel",
        trace: Optional[TraceRecorder] = None,
        rng: Optional[np.random.Generator] = None,
        config: Optional[KernelConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config if config is not None else KernelConfig()
        self.stats = JobStats()
        self._cores = CoreSet(self.config.cores)
        self.resources = ResourceManager(self.config.resource_protocol)
        self._tasks: Dict[str, _TaskEntry] = {}
        self._ready: List[Job] = []
        self._started = False
        self._silent = False
        self._latent_effects: List[FaultEffect] = []
        self._mk_windows: Dict[str, MKWindow] = {}
        # Node-layer callbacks.
        self.on_deliver: Optional[Callable[[TaskSpec, Job, Result], None]] = None
        self.on_omission: Optional[Callable[[TaskSpec, Job, str], None]] = None
        self.on_kernel_error: Optional[Callable[[str], None]] = None
        self.on_undetected_output: Optional[Callable[[TaskSpec, Job, Result], None]] = None
        self.on_noncritical_shutdown: Optional[Callable[[TaskSpec], None]] = None

    # ------------------------------------------------------------------
    # Task registration / lifecycle
    # ------------------------------------------------------------------
    def add_task(
        self,
        spec: TaskSpec,
        executable: Executable,
        input_provider: Optional[Callable[[], Result]] = None,
    ) -> None:
        """Register a task before :meth:`start`."""
        if self._started:
            raise SchedulingError("cannot add tasks after the kernel started")
        if spec.name in self._tasks:
            raise SchedulingError(f"task {spec.name!r} already registered")
        if (
            spec.core is not None
            and self.config.placement is PlacementPolicy.PARTITIONED
            and spec.core >= self.config.cores
        ):
            raise ConfigurationError(
                f"task {spec.name!r} is pinned to core {spec.core} but the "
                f"node has only {self.config.cores} core(s)"
            )
        self._tasks[spec.name] = _TaskEntry(
            spec=spec,
            executable=executable,
            input_provider=input_provider if input_provider is not None else tuple,
        )
        if spec.weakly_hard is not None:
            self._mk_windows[spec.name] = MKWindow(spec.weakly_hard)
        validate_task_set([entry.spec for entry in self._tasks.values()])

    def add_sporadic_task(
        self,
        spec: TaskSpec,
        executable: Executable,
        input_provider: Optional[Callable[[], Result]] = None,
    ) -> None:
        """Register a *sporadic* task (Section 2.8: FP scheduling "allows
        both periodic and sporadic task executions").

        The task is never released periodically; call
        :meth:`release_sporadic` when its triggering event occurs (e.g. a
        frame arriving in the dynamic network segment).  ``spec.period`` is
        interpreted as the minimum inter-arrival time, which the kernel
        enforces — the schedulability analyses treat sporadic tasks exactly
        like periodic ones under that reading.
        """
        self.add_task(spec, executable, input_provider)
        self._tasks[spec.name].sporadic = True

    def release_sporadic(self, name: str, inputs: Optional[Result] = None) -> bool:
        """Release one job of a sporadic task now.

        Returns False (and releases nothing) when the minimum inter-arrival
        time has not yet elapsed — the kernel's guard against event storms
        that would invalidate the schedulability guarantee — or when the
        node is silent.  *inputs* overrides the task's input provider for
        this job.
        """
        entry = self._tasks.get(name)
        if entry is None:
            raise SchedulingError(f"unknown task {name!r}")
        if not entry.sporadic:
            raise SchedulingError(f"task {name!r} is periodic, not sporadic")
        if self._silent or not entry.active or not self._started:
            return False
        if (
            entry.last_release is not None
            and self.sim.now - entry.last_release < entry.spec.period
        ):
            self.trace.emit(
                self.sim.now, "kernel.sporadic_rejected", self.name,
                task=name, since_last=self.sim.now - entry.last_release,
            )
            return False
        self._do_release(entry, inputs)
        return True

    def start(self) -> None:
        """Begin releasing jobs (call once, before running the simulator)."""
        if self._started:
            raise SchedulingError("kernel already started")
        if not self._tasks:
            raise SchedulingError("no tasks registered")
        self._started = True
        for entry in self._tasks.values():
            if not entry.sporadic:
                self._schedule_release(entry, self.sim.now + entry.spec.offset)

    def shutdown(self) -> None:
        """Stop all activity immediately (node becomes silent).

        Cancels pending releases, the running segments and deadline events.
        Used for fail-silent failures and node restarts.
        """
        self._silent = True
        for entry in self._tasks.values():
            if entry.release_event is not None:
                entry.release_event.cancel()
                entry.release_event = None
        for core in range(self._cores.count):
            slot = self._cores.slots[core]
            if slot is not None:
                slot.event.cancel()
                self._cores.slots[core] = None
        for job in self._ready:
            if job.deadline_event is not None:
                job.deadline_event.cancel()
        self._ready.clear()
        self.resources.reset()

    def restart(self) -> None:
        """Re-arm the kernel after a node restart (fresh job streams)."""
        if not self._started:
            raise SchedulingError("kernel was never started")
        self._silent = False
        self._latent_effects.clear()
        for entry in self._tasks.values():
            entry.active = True
            if not entry.sporadic and entry.release_event is None:
                self._schedule_release(entry, self.sim.now)

    @property
    def silent(self) -> bool:
        """True while the node is shut down (fail-silent)."""
        return self._silent

    @property
    def busy(self) -> bool:
        """True if a copy is executing on any core right now."""
        return self._cores.busy

    @property
    def cores(self) -> int:
        """Number of cores on this node."""
        return self._cores.count

    def running_on(self, core: int) -> Optional[Job]:
        """The job executing on *core* right now (None when idle)."""
        slot = self._cores.slots[core]
        return slot.job if slot is not None else None

    def active_tasks(self) -> List[str]:
        """Names of tasks still scheduled (non-critical ones may shut down)."""
        return [name for name, entry in self._tasks.items() if entry.active]

    # ------------------------------------------------------------------
    # Weakly-hard (m,k) window ownership (ROADMAP item 3 remainder)
    # ------------------------------------------------------------------
    def mk_window(self, name: str) -> Optional[MKWindow]:
        """The scheduler-owned miss window of one weakly-hard task."""
        return self._mk_windows.get(name)

    def mk_state(self) -> Dict[str, "Tuple[int, ...]"]:
        """Checkpoint of every task's (m,k) window (JSON-friendly).

        Part of the kernel's resumable state: pair it with the
        simulator/journal checkpoint and feed it back through
        :meth:`restore_mk_state` so miss-budget decisions after a resume
        are bit-identical to an uninterrupted run (the
        :class:`~repro.kernel.task.MKWindow` checkpoint contract).
        """
        return {name: self._mk_windows[name].state() for name in sorted(self._mk_windows)}

    def restore_mk_state(self, state: Mapping[str, Iterable[int]]) -> None:
        """Restore :meth:`mk_state` output into the scheduler's windows."""
        for name in sorted(state):
            window = self._mk_windows.get(name)
            if window is None:
                raise SchedulingError(f"no weakly-hard window for task {name!r}")
            self._mk_windows[name] = MKWindow.resume(
                window.constraint, tuple(state[name])
            )

    def _record_mk(self, job: Job, missed: bool) -> None:
        """Feed one terminal job outcome into the task's miss window."""
        if job.spatial_parent is not None:  # copies are not jobs
            return
        window = self._mk_windows.get(job.task.name)
        if window is None:
            return
        if window.record(missed):
            self.stats.mk_violations += 1
            self.trace.emit(
                self.sim.now, "kernel.mk_violation", self.name, job=job.job_id
            )

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------
    def _schedule_release(self, entry: _TaskEntry, when: int) -> None:
        entry.release_event = self.sim.schedule_at(
            when,
            lambda: self._release(entry),
            priority=PRIORITY_KERNEL,
            label=f"{self.name}:release:{entry.spec.name}",
        )

    def _release(self, entry: _TaskEntry) -> None:
        if self._silent or not entry.active:
            return
        self._schedule_release(entry, self.sim.now + entry.spec.period)
        self._do_release(entry, None)

    def _do_release(self, entry: _TaskEntry, inputs: Optional[Result]) -> None:
        spec = entry.spec
        entry.last_release = self.sim.now
        if inputs is None:
            inputs = tuple(entry.input_provider())
        job = Job(spec, self.sim.now, tuple(inputs))
        self.stats.released += 1
        self.trace.emit(self.sim.now, "kernel.release", self.name, job=job.job_id)
        if spec.is_critical:
            window = self._mk_windows.get(spec.name)
            accept_miss = window.can_accept_miss if window is not None else None
            if spec.tem_mode is TemMode.SPATIAL and self._cores.count > 1:
                # Spatial redundancy: concurrent copies on distinct cores.
                job.spatial = _SpatialState(
                    tem=SpatialTem(
                        can_run_another_copy=self._deadline_predicate(job),
                        max_copies=self.config.tem_max_copies,
                        accept_miss=accept_miss,
                    )
                )
                job.deadline_event = self.sim.schedule_at(
                    job.absolute_deadline,
                    lambda: self._deadline_check(job),
                    priority=PRIORITY_OBSERVER,
                    label=f"{self.name}:deadline:{job.job_id}",
                )
                self._spawn_spatial_copies(job)
                self._dispatch()
                return
            job.tem = TemStateMachine(
                can_run_another_copy=self._deadline_predicate(job),
                max_copies=self.config.tem_max_copies,
                accept_miss=accept_miss,
            )
            action = job.tem.next_action()
            if action is not TemAction.RUN_COPY:  # pragma: no cover - cannot happen
                raise SchedulingError("fresh TEM job did not request a copy")
        job.deadline_event = self.sim.schedule_at(
            job.absolute_deadline,
            lambda: self._deadline_check(job),
            priority=PRIORITY_OBSERVER,
            label=f"{self.name}:deadline:{job.job_id}",
        )
        self._ready.append(job)
        self._dispatch()

    def _deadline_predicate(self, job: Job) -> Callable[[], bool]:
        def can_run_another_copy() -> bool:
            cost = job.task.wcet + self.config.comparison_cost
            return self.sim.now + cost <= job.absolute_deadline

        return can_run_another_copy

    # ------------------------------------------------------------------
    # Spatial TEM copy management
    # ------------------------------------------------------------------
    def _spatial_core(self, task: TaskSpec, index: int) -> Optional[int]:
        """Home core for spatial copy *index* (None = go anywhere).

        Partitioned placement spreads the two copies across neighbouring
        cores and puts the recovery copy on a third core when one exists;
        global placement lets the shared ready queue spread them.
        """
        if self.config.placement is not PlacementPolicy.PARTITIONED:
            return None
        base = task.core if task.core is not None else 0
        return (base + index) % self._cores.count

    def _spawn_spatial_copies(self, parent: Job) -> None:
        state = parent.spatial
        assert state is not None
        count = state.tem.claim_launches()
        if state.tem.finished:
            self._settle_spatial(parent)
            return
        for _ in range(count):
            index = state.next_index
            state.next_index += 1
            copy = Job(parent.task, parent.release_time, parent.inputs)
            copy.spatial_parent = parent
            copy.launch_index = index
            copy.home_core = self._spatial_core(parent.task, index)
            state.copies.append(copy)
            category = "tem.recovery" if index >= 2 else "tem.copy"
            self.trace.emit(
                self.sim.now, category, self.name,
                job=parent.job_id, copy=index + 1,
            )
            self._ready.append(copy)

    def _spatial_copy_finished(self, job: Job) -> Job:
        """Retire one spatial copy; returns its logical parent."""
        parent = job.spatial_parent
        assert parent is not None and parent.spatial is not None
        job.state = JobState.FINISHED
        if job in parent.spatial.copies:
            parent.spatial.copies.remove(job)
        self._end_copy_cleanup(job, faulted=False)
        return parent

    def _advance_spatial(self, parent: Job) -> None:
        state = parent.spatial
        assert state is not None
        if self.config.fail_silent_mode and state.tem.errors_detected > 0:
            self._cancel_spatial_copies(parent)
            self._finish_job(parent)
            self.fail_silent_escalation("fs_detected_error")
            return
        if not state.tem.finished:
            # _spawn_spatial_copies settles itself when the claim ends the
            # machine (omission cap / deadline refusal) — don't settle twice.
            self._spawn_spatial_copies(parent)
            return
        self._settle_spatial(parent)

    def _settle_spatial(self, parent: Job) -> None:
        state = parent.spatial
        assert state is not None
        report = state.tem.report
        self._cancel_spatial_copies(parent)
        if report.delivered_result is not None:
            self.trace.emit(
                self.sim.now, "tem.vote", self.name,
                job=parent.job_id, outcome=report.outcome.value,
                copies=report.copies_run,
            )
            self._finish_delivered(
                parent,
                report.delivered_result,
                masked=report.outcome is TemOutcome.MASKED,
            )
            return
        self._finish_omitted(parent, report.omission_reason or "tem")

    def _cancel_spatial_copies(self, parent: Job) -> None:
        """Abort every copy still live — the decision races the slowest
        copy, which may be running on a remote core right now."""
        state = parent.spatial
        assert state is not None
        for copy in list(state.copies):
            state.copies.remove(copy)
            copy.state = JobState.FINISHED
            if copy in self._ready:
                self._ready.remove(copy)
            core = self._core_running_job(copy)
            if core is not None:
                slot = self._cores.slots[core]
                assert slot is not None
                slot.event.cancel()
                self._cores.slots[core] = None
                self.trace.emit(
                    self.sim.now, "tem.cancel", self.name,
                    job=parent.job_id, core=core,
                )
            self._end_copy_cleanup(copy, faulted=False)

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def _home_core(self, job: Job) -> int:
        if job.home_core is not None:
            return job.home_core
        if job.task.core is not None:
            return job.task.core
        return 0

    def _preemptable(self, slot: _Running) -> bool:
        """MSRP rule: spinning and lock-holding jobs run non-preemptively
        (preemption is deferred to the section exit)."""
        return not slot.job.holding and slot.job.spinning_on is None

    def _dispatch(self) -> None:
        if self._silent:
            return
        if self.config.placement is PlacementPolicy.PARTITIONED:
            for core in range(self._cores.count):
                self._dispatch_core(core)
        else:
            while self._dispatch_global():
                pass

    def _best_for_core(self, core: int) -> Optional[Job]:
        return min(
            (j for j in self._ready if self._home_core(j) == core),
            key=lambda j: j.task.priority,
            default=None,
        )

    def _dispatch_core(self, core: int) -> None:
        """Single-core fixed-priority dispatch of one partition."""
        best = self._best_for_core(core)
        slot = self._cores.slots[core]
        if slot is not None:
            if best is None or best.task.priority >= slot.job.task.priority:
                return
            if not self._preemptable(slot):
                return
            self._preempt(core)
            best = self._best_for_core(core)
        if best is None:
            return
        self._ready.remove(best)
        self._start_segment(best, core)

    def _dispatch_global(self) -> bool:
        """One global-FP placement step; True when a job was started."""
        best = min(self._ready, key=lambda j: j.task.priority, default=None)
        if best is None:
            return False
        core = self._cores.idle_core()
        if core is None:
            core = self._cores.victim_core(
                urgency=lambda slot: slot.job.task.priority,
                preemptable=self._preemptable,
            )
            if core is None:
                return False
            victim = self._cores.slots[core]
            assert victim is not None
            if best.task.priority >= victim.job.task.priority:
                return False
            self._preempt(core)
            best = min(self._ready, key=lambda j: j.task.priority, default=None)
            if best is None:  # pragma: no cover - preempted job re-queued
                return False
        self._ready.remove(best)
        self._start_segment(best, core)
        return True

    def _preempt(self, core: int) -> None:
        slot = self._cores.slots[core]
        assert slot is not None
        job = slot.job
        elapsed = self.sim.now - slot.started_at
        job.consumed += elapsed
        if job.budget is not None:
            job.budget.consume(elapsed)
        slot.event.cancel()
        job.state = JobState.READY
        self._ready.append(job)
        self._cores.slots[core] = None
        self.stats.preemptions += 1
        self.trace.emit(
            self.sim.now, "kernel.preempt", self.name,
            job=job.job_id, **self._core_kwargs(core),
        )

    def _core_kwargs(self, core: int) -> Dict[str, int]:
        """Trace detail: name the core only on a multicore node, keeping
        single-core traces (and the E6 timeline) byte-identical."""
        if self._cores.count > 1:
            return {"core": core}
        return {}

    def _start_segment(self, job: Job, core: int) -> None:
        if job.plan is None:
            self._plan_copy(job)
        job.state = JobState.RUNNING
        start_at = self.sim.now
        fire_in, reason = self._next_boundary(job)
        event = self.sim.schedule_after(
            fire_in + self.config.context_switch_cost,
            lambda: self._segment_event(job, reason),
            priority=PRIORITY_KERNEL,
            label=f"{self.name}:segment:{job.job_id}:{reason}",
        )
        self._cores.slots[core] = _Running(
            job=job, started_at=start_at, event=event, core=core,
            overhead=self.config.context_switch_cost,
        )
        if self._cores.count > 1:
            if job.core is not None and job.core != core:
                self.stats.migrations += 1
                self.trace.emit(
                    self.sim.now, "kernel.migrate", self.name,
                    job=job.job_id, src=job.core, dst=core,
                )
            job.core = core
        self.trace.emit(
            self.sim.now, "kernel.dispatch", self.name,
            job=job.job_id, copy=job.copy_index, reason=reason, fire_in=fire_in,
            **self._core_kwargs(core),
        )

    def _continue_segment(self, job: Job, core: int) -> None:
        """Resume the running copy in place after a section boundary —
        no dispatch, no context switch, no preemption decision."""
        fire_in, reason = self._next_boundary(job)
        event = self.sim.schedule_after(
            fire_in,
            lambda: self._segment_event(job, reason),
            priority=PRIORITY_KERNEL,
            label=f"{self.name}:segment:{job.job_id}:{reason}",
        )
        self._cores.slots[core] = _Running(
            job=job, started_at=self.sim.now, event=event, core=core, overhead=0,
        )

    def _plan_copy(self, job: Job) -> None:
        entry = self._tasks[job.task.name]
        plan = entry.executable.plan_copy(job.inputs, job.copy_index)
        # Spatial copies are sibling executions of ONE job: the comparison
        # surcharge lands on the second-and-later launches, mirroring the
        # temporal machine's second-and-later copies.
        later_copy = (
            job.copy_index >= 1
            if job.spatial_parent is None
            else job.launch_index >= 1
        )
        if later_copy and self.config.comparison_cost:
            plan.duration += self.config.comparison_cost
        job.copy_index += 1
        job.plan = plan
        job.consumed = 0
        job.budget = ExecutionBudget(
            budget_for_wcet(job.task.wcet, self.config.budget_factor)
            + (self.config.comparison_cost if later_copy else 0)
        )
        job.sections = []
        for section in job.task.critical_sections:
            if section.start >= plan.duration:
                continue  # this copy's computation never reaches the section
            exit_at = min(section.end, plan.duration)
            job.sections.append(
                _Section(
                    resource=section.resource,
                    length=exit_at - section.start,
                    enter_at=section.start,
                    exit_at=exit_at,
                )
            )
        # Latent fault effects (struck while the CPU was idle) hit the next
        # copy that gets planned.
        while self._latent_effects:
            effect = self._latent_effects.pop()
            self._apply_effect_to_plan(job, effect)

    def _current_section(self, job: Job) -> Optional[_Section]:
        for section in job.sections:
            if not section.done:
                return section
        return None

    def _next_boundary(self, job: Job) -> "tuple[int, str]":
        plan = job.plan
        budget = job.budget
        assert plan is not None and budget is not None
        candidates: List["tuple[int, str]"] = []
        if plan.detected_error is not None and plan.error_at is not None:
            candidates.append((max(0, plan.error_at - job.consumed), "error"))
        section = self._current_section(job)
        if section is not None:
            if section.entered:
                candidates.append((max(0, section.exit_at - job.consumed), "cs_exit"))
            else:
                candidates.append((max(0, section.enter_at - job.consumed), "cs_enter"))
        candidates.append((max(1, plan.duration - job.consumed), "complete"))
        candidates.append((budget.remaining, "budget"))
        # Deterministic tie-break: error beats section boundaries beats
        # complete beats budget.
        order = {"error": 0, "cs_exit": 1, "cs_enter": 2, "complete": 3, "budget": 4}
        return min(candidates, key=lambda c: (c[0], order[c[1]]))

    # ------------------------------------------------------------------
    # Segment events
    # ------------------------------------------------------------------
    def _core_running_job(self, job: Job) -> Optional[int]:
        return self._cores.core_of(lambda slot: slot.job is job)

    def _segment_event(self, job: Job, reason: str) -> None:
        core = self._core_running_job(job)
        if core is None:  # pragma: no cover - defensive
            raise SchedulingError("segment event fired for a non-running job")
        slot = self._cores.slots[core]
        assert slot is not None
        elapsed = self.sim.now - slot.started_at
        progressed = max(0, elapsed - slot.overhead)
        job.consumed += progressed
        if job.budget is not None:
            job.budget.consume(progressed)
        self._cores.slots[core] = None
        if reason == "complete":
            self._copy_completed(job)
        elif reason == "error":
            assert job.plan is not None
            self._copy_detected_error(job, job.plan.detected_error or "cpu_exception")
        elif reason == "budget":
            self._copy_detected_error(job, "execution_time")
        elif reason == "cs_enter":
            self._cs_enter(job, core)
            return
        elif reason == "cs_exit":
            self._cs_exit(job, core)
            return
        else:  # pragma: no cover - exhaustive
            raise SchedulingError(f"unknown segment event reason {reason}")
        self._dispatch()

    # ------------------------------------------------------------------
    # Critical-section boundaries
    # ------------------------------------------------------------------
    def _cs_enter(self, job: Job, core: int) -> None:
        section = self._current_section(job)
        assert section is not None and not section.entered
        if self.resources.protocol is ResourceProtocol.LOCK:
            granted = self.resources.lock_acquire(
                section.resource, job, job.task.priority
            )
            if not granted:
                # Spin: the core burns the job's own budget until granted
                # (MSRP busy-wait); only the budget timer can interrupt.
                job.spinning_on = section
                assert job.budget is not None
                event = self.sim.schedule_after(
                    job.budget.remaining,
                    lambda: self._segment_event(job, "budget"),
                    priority=PRIORITY_KERNEL,
                    label=f"{self.name}:segment:{job.job_id}:budget",
                )
                self._cores.slots[core] = _Running(
                    job=job, started_at=self.sim.now, event=event,
                    core=core, overhead=0,
                )
                self.trace.emit(
                    self.sim.now, "kernel.cs_spin", self.name,
                    job=job.job_id, resource=section.resource,
                    **self._core_kwargs(core),
                )
                return
            job.holding.append(section.resource)
        else:
            section.entry_count = self.resources.free_begin(section.resource)
        section.entered = True
        self.trace.emit(
            self.sim.now, "kernel.cs_enter", self.name,
            job=job.job_id, resource=section.resource,
            **self._core_kwargs(core),
        )
        self._continue_segment(job, core)

    def _cs_exit(self, job: Job, core: int) -> None:
        section = self._current_section(job)
        assert section is not None and section.entered
        if self.resources.protocol is ResourceProtocol.LOCK:
            section.done = True
            self._release_lock(job, section.resource)
            self.trace.emit(
                self.sim.now, "kernel.cs_exit", self.name,
                job=job.job_id, resource=section.resource,
                **self._core_kwargs(core),
            )
            if self._finish_copy_if_done(job):
                return
            self._continue_segment(job, core)
            # A section exit is a preemption point: preemptions deferred
            # while the lock was held (or spun on) fire now.
            self._dispatch()
            return
        committed = self.resources.free_commit(section.resource, section.entry_count)
        if committed:
            section.done = True
            self.trace.emit(
                self.sim.now, "kernel.cs_exit", self.name,
                job=job.job_id, resource=section.resource,
                retries=section.retries, **self._core_kwargs(core),
            )
            if self._finish_copy_if_done(job):
                return
            self._continue_segment(job, core)
            return
        # Conflict: a remote core committed during our section — re-execute
        # it (the LEFT-RS retry loop).  The plan stretches by one section
        # length; computation after the section shifts with it.
        section.retries += 1
        self.resources.stats.retry_ticks += section.length
        assert job.plan is not None
        job.plan.duration += section.length
        for later in job.sections:
            if not later.done and not later.entered and later is not section:
                later.enter_at += section.length
                later.exit_at += section.length
        section.exit_at = job.consumed + section.length
        section.entry_count = self.resources.free_begin(section.resource)
        self.trace.emit(
            self.sim.now, "kernel.cs_retry", self.name,
            job=job.job_id, resource=section.resource,
            attempt=section.retries, **self._core_kwargs(core),
        )
        self._continue_segment(job, core)

    def _finish_copy_if_done(self, job: Job) -> bool:
        """A section that ends exactly at the plan's end completes the
        copy in the same tick (no empty 1-tick continuation segment)."""
        assert job.plan is not None
        if job.consumed >= job.plan.duration:
            self._copy_completed(job)
            self._dispatch()
            return True
        return False

    def _release_lock(self, job: Job, resource: str) -> None:
        grantee = self.resources.lock_release(resource, job)
        job.holding.remove(resource)
        if grantee is not None:
            assert isinstance(grantee, Job)
            self._grant(grantee, resource)

    def _grant(self, job: Job, resource: str) -> None:
        """Hand the freed lock to the highest-priority spinner and resume
        its segment, folding the spin into its consumed time/budget."""
        core = self._core_running_job(job)
        section = job.spinning_on
        if core is None or section is None or section.resource != resource:
            # pragma: no cover - waiters are deregistered before they stop
            raise SchedulingError(f"lock {resource!r} granted to a non-spinner")
        slot = self._cores.slots[core]
        assert slot is not None
        slot.event.cancel()
        elapsed = self.sim.now - slot.started_at
        job.consumed += elapsed
        if job.budget is not None:
            job.budget.consume(elapsed)
        self.resources.stats.blocking_ticks += elapsed
        # Spinning burned wall ticks without computing: stretch the plan
        # and shift the pending boundaries so the computation keeps its
        # length.
        assert job.plan is not None
        job.plan.duration += elapsed
        for pending in job.sections:
            if not pending.done and not pending.entered:
                pending.enter_at += elapsed
                pending.exit_at += elapsed
        job.spinning_on = None
        job.holding.append(resource)
        section.entered = True
        self.trace.emit(
            self.sim.now, "kernel.cs_enter", self.name,
            job=job.job_id, resource=resource, spun=elapsed,
            **self._core_kwargs(core),
        )
        self._cores.slots[core] = None
        self._continue_segment(job, core)

    def _end_copy_cleanup(self, job: Job, faulted: bool) -> None:
        """Resource cleanup when a copy stops mid-section (abort, deadline
        miss, spatial cancellation): cancel spins, free held locks.

        A *fault* that aborts a lock holder leaves the resource in an
        unknown state; the kernel keeps it held for
        ``cs_fault_cleanup_cost`` ticks of repair before granting it on —
        the blocking-time blowup the campaigns measure.  The lock-free
        protocol has nothing to repair: the attempt never committed.
        """
        if job.spinning_on is not None:
            self.resources.cancel_wait(job.spinning_on.resource, job)
            job.spinning_on = None
            if faulted:
                self.resources.stats.cs_faults += 1
        inside = any(s.entered and not s.done for s in job.sections)
        if faulted and inside and not job.holding:
            # Lock-free attempt died mid-section: never commits, no cleanup.
            self.resources.stats.cs_faults += 1
        for resource in list(job.holding):
            if faulted:
                self.resources.stats.cs_faults += 1
                cost = self.config.cs_fault_cleanup_cost
                if cost > 0:
                    self.resources.stats.cleanup_ticks += cost
                    job.holding.remove(resource)
                    self.trace.emit(
                        self.sim.now, "kernel.cs_cleanup", self.name,
                        job=job.job_id, resource=resource, cost=cost,
                    )
                    self.sim.schedule_after(
                        cost,
                        lambda resource=resource, job=job: self._cleanup_release(
                            resource, job
                        ),
                        priority=PRIORITY_KERNEL,
                        label=f"{self.name}:cleanup:{resource}",
                    )
                    continue
            job.holding.remove(resource)
            grantee = self.resources.lock_release(resource, job)
            if grantee is not None:
                assert isinstance(grantee, Job)
                self._grant(grantee, resource)
        job.sections = []

    def _cleanup_release(self, resource: str, job: Job) -> None:
        if self._silent:
            return
        if self.resources.holder_of(resource) is not job:
            return  # the node restarted; holders were reset
        grantee = self.resources.lock_release(resource, job)
        if grantee is not None:
            assert isinstance(grantee, Job)
            self._grant(grantee, resource)

    # ------------------------------------------------------------------
    # Copy outcomes
    # ------------------------------------------------------------------
    def _copy_completed(self, job: Job) -> None:
        plan = job.plan
        assert plan is not None
        job.plan = None
        self.trace.emit(
            self.sim.now, "kernel.complete", self.name,
            job=job.job_id, copy=job.copy_index,
        )
        if plan.result is None:  # pragma: no cover - defensive
            raise SchedulingError("completed copy carries no result")
        if job.spatial_parent is not None:
            parent = self._spatial_copy_finished(job)
            if plan.bypasses_comparison:
                # Control-flow error skipped the comparison: the unchecked
                # (wrong) result escapes to the outputs (Section 2.7).
                assert parent.spatial is not None
                self._cancel_spatial_copies(parent)
                self._finish_undetected(parent, plan.result)
                return
            assert parent.spatial is not None
            parent.spatial.tem.copy_completed(plan.result)
            self._advance_spatial(parent)
            return
        if plan.bypasses_comparison:
            # Control-flow error skipped the comparison (Section 2.7): the
            # unchecked (wrong) result escapes to the outputs.
            self._finish_undetected(job, plan.result)
            return
        if job.tem is not None:
            job.tem.copy_completed(plan.result)
            self._advance_tem(job)
            return
        # Non-critical task: single execution, direct delivery.
        self._finish_delivered(job, plan.result, masked=False)

    def _copy_detected_error(self, job: Job, mechanism: str) -> None:
        job.plan = None
        self.stats.edm_detections += 1
        self.trace.emit(
            self.sim.now, "kernel.edm", self.name,
            job=job.job_id, mechanism=mechanism,
        )
        self._end_copy_cleanup(job, faulted=True)
        if self.config.fail_silent_mode:
            if job.spatial_parent is not None:
                parent = self._spatial_copy_finished(job)
                self._cancel_spatial_copies(parent)
                self._finish_job(parent)
            else:
                self._finish_job(job)
            self.fail_silent_escalation(mechanism)
            return
        if job.spatial_parent is not None:
            parent = self._spatial_copy_finished(job)
            assert parent.spatial is not None
            parent.spatial.tem.copy_aborted(mechanism)
            self._advance_spatial(parent)
            return
        if job.tem is not None:
            job.tem.copy_aborted(mechanism)
            self._advance_tem(job)
            return
        # Non-critical task: shut it down, keep the node running
        # (Section 2.2, strategy 2).
        entry = self._tasks[job.task.name]
        entry.active = False
        if entry.release_event is not None:
            entry.release_event.cancel()
            entry.release_event = None
        self._finish_job(job)
        self.stats.noncritical_shutdowns += 1
        self.trace.emit(self.sim.now, "task.shutdown", self.name, task=job.task.name)
        if self.on_noncritical_shutdown is not None:
            self.on_noncritical_shutdown(job.task)

    def _advance_tem(self, job: Job) -> None:
        assert job.tem is not None
        action = job.tem.next_action()
        if self.config.fail_silent_mode and job.tem.errors_detected > 0:
            # FS baseline: a detected error (comparison mismatch included)
            # silences the node; no recovery copy is attempted and no
            # possibly-tainted result is delivered.
            self._finish_job(job)
            self.fail_silent_escalation("fs_detected_error")
            return
        if action is TemAction.RUN_COPY:
            category = "tem.recovery" if job.tem.errors_detected else "tem.copy"
            self.trace.emit(
                self.sim.now, category, self.name,
                job=job.job_id, copy=job.copy_index + 1,
            )
            job.state = JobState.READY
            self._ready.append(job)
            return
        report = job.tem.report
        if action is TemAction.DELIVER:
            assert report.delivered_result is not None
            self.trace.emit(
                self.sim.now, "tem.vote", self.name,
                job=job.job_id, outcome=report.outcome.value,
                copies=report.copies_run,
            )
            self._finish_delivered(
                job, report.delivered_result, masked=report.outcome is TemOutcome.MASKED
            )
            return
        self._finish_omitted(job, report.omission_reason or "tem")

    # ------------------------------------------------------------------
    # Job termination paths
    # ------------------------------------------------------------------
    def _finish_job(self, job: Job) -> None:
        job.state = JobState.FINISHED
        if job.deadline_event is not None:
            job.deadline_event.cancel()
            job.deadline_event = None
        if job in self._ready:
            self._ready.remove(job)
        if job.spinning_on is not None or job.holding or job.sections:
            self._end_copy_cleanup(job, faulted=False)

    def _finish_delivered(self, job: Job, result: Result, masked: bool) -> None:
        self._finish_job(job)
        job.delivered = result
        if masked:
            self.stats.delivered_masked += 1
        else:
            self.stats.delivered_ok += 1
        self._record_mk(job, missed=False)
        self.trace.emit(
            self.sim.now, "kernel.deliver", self.name,
            job=job.job_id, masked=masked,
        )
        if self.on_deliver is not None:
            self.on_deliver(job.task, job, result)

    def _finish_omitted(self, job: Job, reason: str) -> None:
        self._finish_job(job)
        self.stats.omissions += 1
        self._record_mk(job, missed=True)
        self.trace.emit(
            self.sim.now, "kernel.omission", self.name,
            job=job.job_id, reason=reason,
        )
        if self.on_omission is not None:
            self.on_omission(job.task, job, reason)

    def _finish_undetected(self, job: Job, result: Result) -> None:
        self._finish_job(job)
        self.stats.undetected_wrong_outputs += 1
        self._record_mk(job, missed=False)
        self.trace.emit(
            self.sim.now, "kernel.undetected_output", self.name, job=job.job_id
        )
        if self.on_undetected_output is not None:
            self.on_undetected_output(job.task, job, result)

    def _deadline_check(self, job: Job) -> None:
        if job.state is JobState.FINISHED:
            return
        self.stats.deadline_misses += 1
        self.trace.emit(self.sim.now, "kernel.deadline_miss", self.name, job=job.job_id)
        if job.spatial is not None:
            self._cancel_spatial_copies(job)
            self._finish_omitted(job, "deadline")
            self._dispatch()
            return
        core = self._core_running_job(job)
        if core is not None:
            slot = self._cores.slots[core]
            assert slot is not None
            slot.event.cancel()
            self._cores.slots[core] = None
        self._finish_omitted(job, "deadline")
        self._dispatch()

    # ------------------------------------------------------------------
    # Fault-effect application (called by the node layer)
    # ------------------------------------------------------------------
    def apply_fault_effect(self, effect: FaultEffect, core: int = 0) -> str:
        """Apply one manifested fault effect to the kernel's current state.

        *core* names the struck core on a multicore node (transient
        hardware faults are per-core physical events); the default of 0 is
        the paper's single processor.  Returns a short classification
        string for campaign bookkeeping.
        """
        if self._silent:
            return "node_silent"
        if core < 0 or core >= self._cores.count:
            raise ConfigurationError(
                f"fault struck core {core}, node has {self._cores.count}"
            )
        if effect is FaultEffect.NO_EFFECT:
            return "no_effect"
        if effect is FaultEffect.KERNEL_CORRUPTION:
            self.kernel_error("kernel_check")
            return "kernel_error"
        slot = self._cores.slots[core]
        if slot is None:
            # Core idle: the corruption lies latent until the next copy.
            self._latent_effects.append(effect)
            return "latent"
        job = slot.job
        self._fold_running_time(core)
        self._apply_effect_to_plan(job, effect)
        self._rearm(job)
        return "applied_to_copy"

    def _fold_running_time(self, core: int) -> None:
        slot = self._cores.slots[core]
        assert slot is not None
        job = slot.job
        elapsed = self.sim.now - slot.started_at
        job.consumed += elapsed
        if job.budget is not None:
            job.budget.consume(elapsed)
        slot.event.cancel()
        self._cores.slots[core] = None
        if job.spinning_on is not None:
            # The spin is interrupted: the burned ticks were pure blocking.
            # Stretch the plan so the pending boundaries stay aligned with
            # the computation, and leave the waiter queue — the job will
            # re-request the lock when it reaches the entry boundary again.
            section = job.spinning_on
            self.resources.cancel_wait(section.resource, job)
            self.resources.stats.blocking_ticks += elapsed
            assert job.plan is not None
            job.plan.duration += elapsed
            for pending in job.sections:
                if not pending.done and not pending.entered:
                    pending.enter_at += elapsed
                    pending.exit_at += elapsed
            job.spinning_on = None

    def _rearm(self, job: Job) -> None:
        job.state = JobState.READY
        self._ready.append(job)
        self._dispatch()

    def _apply_effect_to_plan(self, job: Job, effect: FaultEffect) -> None:
        plan = job.plan
        if plan is None:  # copy not planned yet; let the effect wait
            self._latent_effects.append(effect)
            return
        if effect is FaultEffect.WRONG_RESULT:
            if plan.result is not None:
                plan.result = self._corrupt_result(plan.result)
        elif effect is FaultEffect.HARDWARE_EXCEPTION:
            if plan.detected_error is None or (plan.error_at or 0) > job.consumed:
                plan.detected_error = "cpu_exception"
                plan.error_at = job.consumed + 1
        elif effect is FaultEffect.TIMING_OVERRUN:
            assert job.budget is not None
            plan.duration = max(plan.duration, job.budget.budget * 2)
            if plan.detected_error == "execution_time":
                plan.error_at = plan.duration
        elif effect is FaultEffect.UNDETECTED_WRONG_OUTPUT:
            if plan.result is not None:
                plan.result = self._corrupt_result(plan.result)
            plan.bypasses_comparison = True
        elif effect is FaultEffect.NO_EFFECT:
            pass
        else:  # pragma: no cover - exhaustive
            raise SchedulingError(f"unhandled fault effect {effect}")

    def _corrupt_result(self, result: Result) -> Result:
        values = list(result)
        if not values:
            return ("corrupted",)  # type: ignore[return-value]
        index = int(self.rng.integers(0, len(values)))
        value = values[index]
        if isinstance(value, int):
            values[index] = value ^ (1 << int(self.rng.integers(0, 31)))
        else:
            magnitude = abs(float(value)) + 1.0
            values[index] = float(value) + magnitude * float(self.rng.uniform(0.5, 2.0))
        return tuple(values)

    def fail_silent_escalation(self, mechanism: str) -> None:
        """FS-mode reaction to any detected error: silence the node.

        Functionally identical to :meth:`kernel_error` but kept separate for
        tracing/accounting — the FS baseline silences on *application*
        errors too, which an NLFT node would have masked.
        """
        self.trace.emit(self.sim.now, "kernel.fail_silent", self.name, mechanism=mechanism)
        self.shutdown()
        if self.on_kernel_error is not None:
            self.on_kernel_error(mechanism)

    def kernel_error(self, mechanism: str) -> None:
        """An error was detected during kernel execution: go silent.

        Section 2.2, strategy 3 — "Errors detected during execution of the
        real-time kernel should result in the node becoming silent."
        """
        self.stats.kernel_errors += 1
        self.trace.emit(self.sim.now, "kernel.error", self.name, mechanism=mechanism)
        self.shutdown()
        if self.on_kernel_error is not None:
            self.on_kernel_error(mechanism)
