"""Fixed-priority preemptive scheduler with TEM support.

This is the heart of the simulated real-time kernel (Sections 2.5 and 2.8).
Responsibilities:

* periodic job release for every registered task;
* fixed-priority preemptive dispatching (lower priority number wins);
* playing execution *copies* out over simulated time, including budget
  timers (execution-time monitoring) and EDM-triggered aborts;
* driving a :class:`~repro.core.tem.TemStateMachine` per critical job —
  double execution, comparison, recovery copies, majority vote, deadline
  checks, omission enforcement;
* shutting down non-critical tasks on their first detected error
  (Section 2.2, strategy 2);
* escalating kernel-level errors to the node (strategy 3: fail-silent).

Fault effects (:class:`~repro.cpu.profiles.FaultEffect`) are applied through
:meth:`Scheduler.apply_fault_effect`, which the node layer calls when the
fault injector strikes the host processor.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.tem import TemAction, TemOutcome, TemStateMachine
from ..cpu.profiles import FaultEffect
from ..errors import ConfigurationError, SchedulingError
from ..sim import PRIORITY_KERNEL, PRIORITY_OBSERVER, EventHandle, Simulator, TraceRecorder
from .budget import DEFAULT_BUDGET_FACTOR, ExecutionBudget, budget_for_wcet
from .task import (
    CopyPlan,
    Criticality,
    Executable,
    Result,
    TaskSpec,
    validate_task_set,
)


@dataclasses.dataclass(frozen=True)
class KernelConfig:
    """Tunable kernel overheads and policies.

    Attributes
    ----------
    budget_factor:
        Budget-timer margin over the WCET (Section 2.4).
    comparison_cost:
        Kernel time added to every copy after the first for the result
        comparison / vote bookkeeping.
    tem_max_copies:
        Hard per-job cap on executions (bounds reserved recovery slack).
    context_switch_cost:
        Added once at every dispatch/resume.
    fail_silent_mode:
        When True the kernel models a conventional *fail-silent* node
        (the paper's FS baseline): detection machinery runs unchanged —
        double execution, comparison, EDMs — but the reaction to ANY
        detected error is to silence the node instead of recovering.
    """

    budget_factor: float = DEFAULT_BUDGET_FACTOR
    comparison_cost: int = 0
    tem_max_copies: int = TemStateMachine.DEFAULT_MAX_COPIES
    context_switch_cost: int = 0
    fail_silent_mode: bool = False

    def __post_init__(self) -> None:
        if self.comparison_cost < 0 or self.context_switch_cost < 0:
            raise ConfigurationError("kernel overheads must be non-negative")
        if self.tem_max_copies < 2:
            raise ConfigurationError("TEM needs at least two copies per job")


class JobState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


@dataclasses.dataclass
class JobStats:
    """Per-scheduler counters (coverage/outcome accounting)."""

    released: int = 0
    delivered_ok: int = 0
    delivered_masked: int = 0
    omissions: int = 0
    deadline_misses: int = 0
    edm_detections: int = 0
    undetected_wrong_outputs: int = 0
    kernel_errors: int = 0
    noncritical_shutdowns: int = 0
    preemptions: int = 0


class Job:
    """One released instance of a task."""

    _sequence = 0

    def __init__(self, task: TaskSpec, release_time: int, inputs: Result) -> None:
        Job._sequence += 1
        self.job_id = f"{task.name}#{Job._sequence}"
        self.task = task
        self.release_time = release_time
        self.absolute_deadline = release_time + task.relative_deadline
        self.inputs = tuple(inputs)
        self.state = JobState.READY
        self.tem: Optional[TemStateMachine] = None
        self.copy_index = 0
        self.plan: Optional[CopyPlan] = None
        self.budget: Optional[ExecutionBudget] = None
        self.consumed = 0
        self.deadline_event: Optional[EventHandle] = None
        self.delivered: Optional[Result] = None


@dataclasses.dataclass
class _Running:
    job: Job
    started_at: int
    event: EventHandle


@dataclasses.dataclass
class _TaskEntry:
    spec: TaskSpec
    executable: Executable
    input_provider: Callable[[], Result]
    active: bool = True
    release_event: Optional[EventHandle] = None
    #: Sporadic tasks are released on demand (events), never periodically;
    #: their spec.period is interpreted as the minimum inter-arrival time.
    sporadic: bool = False
    last_release: Optional[int] = None


class Scheduler:
    """The per-node real-time kernel.

    Parameters
    ----------
    sim:
        The discrete-event simulator providing the time base.
    name:
        Node/kernel name used in traces.
    trace:
        Optional shared :class:`TraceRecorder`.
    rng:
        Random generator used only for fault-effect realisation (result
        corruption patterns); scheduling itself is deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "kernel",
        trace: Optional[TraceRecorder] = None,
        rng: Optional[np.random.Generator] = None,
        config: Optional[KernelConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config if config is not None else KernelConfig()
        self.stats = JobStats()
        self._tasks: Dict[str, _TaskEntry] = {}
        self._ready: List[Job] = []
        self._running: Optional[_Running] = None
        self._started = False
        self._silent = False
        self._latent_effects: List[FaultEffect] = []
        # Node-layer callbacks.
        self.on_deliver: Optional[Callable[[TaskSpec, Job, Result], None]] = None
        self.on_omission: Optional[Callable[[TaskSpec, Job, str], None]] = None
        self.on_kernel_error: Optional[Callable[[str], None]] = None
        self.on_undetected_output: Optional[Callable[[TaskSpec, Job, Result], None]] = None
        self.on_noncritical_shutdown: Optional[Callable[[TaskSpec], None]] = None

    # ------------------------------------------------------------------
    # Task registration / lifecycle
    # ------------------------------------------------------------------
    def add_task(
        self,
        spec: TaskSpec,
        executable: Executable,
        input_provider: Optional[Callable[[], Result]] = None,
    ) -> None:
        """Register a task before :meth:`start`."""
        if self._started:
            raise SchedulingError("cannot add tasks after the kernel started")
        if spec.name in self._tasks:
            raise SchedulingError(f"task {spec.name!r} already registered")
        self._tasks[spec.name] = _TaskEntry(
            spec=spec,
            executable=executable,
            input_provider=input_provider if input_provider is not None else tuple,
        )
        validate_task_set([entry.spec for entry in self._tasks.values()])

    def add_sporadic_task(
        self,
        spec: TaskSpec,
        executable: Executable,
        input_provider: Optional[Callable[[], Result]] = None,
    ) -> None:
        """Register a *sporadic* task (Section 2.8: FP scheduling "allows
        both periodic and sporadic task executions").

        The task is never released periodically; call
        :meth:`release_sporadic` when its triggering event occurs (e.g. a
        frame arriving in the dynamic network segment).  ``spec.period`` is
        interpreted as the minimum inter-arrival time, which the kernel
        enforces — the schedulability analyses treat sporadic tasks exactly
        like periodic ones under that reading.
        """
        self.add_task(spec, executable, input_provider)
        self._tasks[spec.name].sporadic = True

    def release_sporadic(self, name: str, inputs: Optional[Result] = None) -> bool:
        """Release one job of a sporadic task now.

        Returns False (and releases nothing) when the minimum inter-arrival
        time has not yet elapsed — the kernel's guard against event storms
        that would invalidate the schedulability guarantee — or when the
        node is silent.  *inputs* overrides the task's input provider for
        this job.
        """
        entry = self._tasks.get(name)
        if entry is None:
            raise SchedulingError(f"unknown task {name!r}")
        if not entry.sporadic:
            raise SchedulingError(f"task {name!r} is periodic, not sporadic")
        if self._silent or not entry.active or not self._started:
            return False
        if (
            entry.last_release is not None
            and self.sim.now - entry.last_release < entry.spec.period
        ):
            self.trace.emit(
                self.sim.now, "kernel.sporadic_rejected", self.name,
                task=name, since_last=self.sim.now - entry.last_release,
            )
            return False
        self._do_release(entry, inputs)
        return True

    def start(self) -> None:
        """Begin releasing jobs (call once, before running the simulator)."""
        if self._started:
            raise SchedulingError("kernel already started")
        if not self._tasks:
            raise SchedulingError("no tasks registered")
        self._started = True
        for entry in self._tasks.values():
            if not entry.sporadic:
                self._schedule_release(entry, self.sim.now + entry.spec.offset)

    def shutdown(self) -> None:
        """Stop all activity immediately (node becomes silent).

        Cancels pending releases, the running segment and deadline events.
        Used for fail-silent failures and node restarts.
        """
        self._silent = True
        for entry in self._tasks.values():
            if entry.release_event is not None:
                entry.release_event.cancel()
                entry.release_event = None
        if self._running is not None:
            self._running.event.cancel()
            self._running = None
        for job in self._ready:
            if job.deadline_event is not None:
                job.deadline_event.cancel()
        self._ready.clear()

    def restart(self) -> None:
        """Re-arm the kernel after a node restart (fresh job streams)."""
        if not self._started:
            raise SchedulingError("kernel was never started")
        self._silent = False
        self._latent_effects.clear()
        for entry in self._tasks.values():
            entry.active = True
            if not entry.sporadic and entry.release_event is None:
                self._schedule_release(entry, self.sim.now)

    @property
    def silent(self) -> bool:
        """True while the node is shut down (fail-silent)."""
        return self._silent

    @property
    def busy(self) -> bool:
        """True if a copy is executing right now."""
        return self._running is not None

    def active_tasks(self) -> List[str]:
        """Names of tasks still scheduled (non-critical ones may shut down)."""
        return [name for name, entry in self._tasks.items() if entry.active]

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------
    def _schedule_release(self, entry: _TaskEntry, when: int) -> None:
        entry.release_event = self.sim.schedule_at(
            when,
            lambda: self._release(entry),
            priority=PRIORITY_KERNEL,
            label=f"{self.name}:release:{entry.spec.name}",
        )

    def _release(self, entry: _TaskEntry) -> None:
        if self._silent or not entry.active:
            return
        self._schedule_release(entry, self.sim.now + entry.spec.period)
        self._do_release(entry, None)

    def _do_release(self, entry: _TaskEntry, inputs: Optional[Result]) -> None:
        spec = entry.spec
        entry.last_release = self.sim.now
        if inputs is None:
            inputs = tuple(entry.input_provider())
        job = Job(spec, self.sim.now, tuple(inputs))
        self.stats.released += 1
        self.trace.emit(self.sim.now, "kernel.release", self.name, job=job.job_id)
        if spec.is_critical:
            job.tem = TemStateMachine(
                can_run_another_copy=self._deadline_predicate(job),
                max_copies=self.config.tem_max_copies,
            )
            action = job.tem.next_action()
            if action is not TemAction.RUN_COPY:  # pragma: no cover - cannot happen
                raise SchedulingError("fresh TEM job did not request a copy")
        job.deadline_event = self.sim.schedule_at(
            job.absolute_deadline,
            lambda: self._deadline_check(job),
            priority=PRIORITY_OBSERVER,
            label=f"{self.name}:deadline:{job.job_id}",
        )
        self._ready.append(job)
        self._dispatch()

    def _deadline_predicate(self, job: Job) -> Callable[[], bool]:
        def can_run_another_copy() -> bool:
            cost = job.task.wcet + self.config.comparison_cost
            return self.sim.now + cost <= job.absolute_deadline

        return can_run_another_copy

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._silent:
            return
        best = min(self._ready, key=lambda j: j.task.priority, default=None)
        if self._running is not None:
            if best is None or best.task.priority >= self._running.job.task.priority:
                return
            self._preempt()
            best = min(self._ready, key=lambda j: j.task.priority, default=None)
        if best is None:
            return
        self._ready.remove(best)
        self._start_segment(best)

    def _preempt(self) -> None:
        running = self._running
        assert running is not None
        elapsed = self.sim.now - running.started_at
        running.job.consumed += elapsed
        if running.job.budget is not None:
            running.job.budget.consume(elapsed)
        running.event.cancel()
        running.job.state = JobState.READY
        self._ready.append(running.job)
        self._running = None
        self.stats.preemptions += 1
        self.trace.emit(self.sim.now, "kernel.preempt", self.name, job=running.job.job_id)

    def _start_segment(self, job: Job) -> None:
        if job.plan is None:
            self._plan_copy(job)
        job.state = JobState.RUNNING
        start_at = self.sim.now
        fire_in, reason = self._next_boundary(job)
        event = self.sim.schedule_after(
            fire_in + self.config.context_switch_cost,
            lambda: self._segment_event(job, reason),
            priority=PRIORITY_KERNEL,
            label=f"{self.name}:segment:{job.job_id}:{reason}",
        )
        self._running = _Running(job=job, started_at=start_at, event=event)
        self.trace.emit(
            self.sim.now, "kernel.dispatch", self.name,
            job=job.job_id, copy=job.copy_index, reason=reason, fire_in=fire_in,
        )

    def _plan_copy(self, job: Job) -> None:
        entry = self._tasks[job.task.name]
        plan = entry.executable.plan_copy(job.inputs, job.copy_index)
        if job.copy_index >= 1 and self.config.comparison_cost:
            plan.duration += self.config.comparison_cost
        job.copy_index += 1
        job.plan = plan
        job.consumed = 0
        job.budget = ExecutionBudget(
            budget_for_wcet(job.task.wcet, self.config.budget_factor)
            + (self.config.comparison_cost if job.copy_index > 1 else 0)
        )
        # Latent fault effects (struck while the CPU was idle) hit the next
        # copy that gets planned.
        while self._latent_effects:
            effect = self._latent_effects.pop()
            self._apply_effect_to_plan(job, effect)

    def _next_boundary(self, job: Job) -> "tuple[int, str]":
        plan = job.plan
        budget = job.budget
        assert plan is not None and budget is not None
        candidates: List["tuple[int, str]"] = []
        if plan.detected_error is not None and plan.error_at is not None:
            candidates.append((max(0, plan.error_at - job.consumed), "error"))
        candidates.append((max(1, plan.duration - job.consumed), "complete"))
        candidates.append((budget.remaining, "budget"))
        # Deterministic tie-break: error beats complete beats budget.
        order = {"error": 0, "complete": 1, "budget": 2}
        return min(candidates, key=lambda c: (c[0], order[c[1]]))

    # ------------------------------------------------------------------
    # Segment events
    # ------------------------------------------------------------------
    def _segment_event(self, job: Job, reason: str) -> None:
        running = self._running
        if running is None or running.job is not job:  # pragma: no cover - defensive
            raise SchedulingError("segment event fired for a non-running job")
        elapsed = self.sim.now - running.started_at
        job.consumed += max(0, elapsed - self.config.context_switch_cost)
        if job.budget is not None:
            job.budget.consume(max(0, elapsed - self.config.context_switch_cost))
        self._running = None
        if reason == "complete":
            self._copy_completed(job)
        elif reason == "error":
            assert job.plan is not None
            self._copy_detected_error(job, job.plan.detected_error or "cpu_exception")
        elif reason == "budget":
            self._copy_detected_error(job, "execution_time")
        else:  # pragma: no cover - exhaustive
            raise SchedulingError(f"unknown segment event reason {reason!r}")
        self._dispatch()

    def _copy_completed(self, job: Job) -> None:
        plan = job.plan
        assert plan is not None
        job.plan = None
        self.trace.emit(
            self.sim.now, "kernel.complete", self.name,
            job=job.job_id, copy=job.copy_index,
        )
        if plan.result is None:  # pragma: no cover - defensive
            raise SchedulingError("completed copy carries no result")
        if plan.bypasses_comparison:
            # Control-flow error skipped the comparison (Section 2.7): the
            # unchecked (wrong) result escapes to the outputs.
            self._finish_undetected(job, plan.result)
            return
        if job.tem is not None:
            job.tem.copy_completed(plan.result)
            self._advance_tem(job)
            return
        # Non-critical task: single execution, direct delivery.
        self._finish_delivered(job, plan.result, masked=False)

    def _copy_detected_error(self, job: Job, mechanism: str) -> None:
        job.plan = None
        self.stats.edm_detections += 1
        self.trace.emit(
            self.sim.now, "kernel.edm", self.name,
            job=job.job_id, mechanism=mechanism,
        )
        if self.config.fail_silent_mode:
            self._finish_job(job)
            self.fail_silent_escalation(mechanism)
            return
        if job.tem is not None:
            job.tem.copy_aborted(mechanism)
            self._advance_tem(job)
            return
        # Non-critical task: shut it down, keep the node running
        # (Section 2.2, strategy 2).
        entry = self._tasks[job.task.name]
        entry.active = False
        if entry.release_event is not None:
            entry.release_event.cancel()
            entry.release_event = None
        self._finish_job(job)
        self.stats.noncritical_shutdowns += 1
        self.trace.emit(self.sim.now, "task.shutdown", self.name, task=job.task.name)
        if self.on_noncritical_shutdown is not None:
            self.on_noncritical_shutdown(job.task)

    def _advance_tem(self, job: Job) -> None:
        assert job.tem is not None
        action = job.tem.next_action()
        if self.config.fail_silent_mode and job.tem.errors_detected > 0:
            # FS baseline: a detected error (comparison mismatch included)
            # silences the node; no recovery copy is attempted and no
            # possibly-tainted result is delivered.
            self._finish_job(job)
            self.fail_silent_escalation("fs_detected_error")
            return
        if action is TemAction.RUN_COPY:
            category = "tem.recovery" if job.tem.errors_detected else "tem.copy"
            self.trace.emit(
                self.sim.now, category, self.name,
                job=job.job_id, copy=job.copy_index + 1,
            )
            job.state = JobState.READY
            self._ready.append(job)
            return
        report = job.tem.report
        if action is TemAction.DELIVER:
            assert report.delivered_result is not None
            self.trace.emit(
                self.sim.now, "tem.vote", self.name,
                job=job.job_id, outcome=report.outcome.value,
                copies=report.copies_run,
            )
            self._finish_delivered(
                job, report.delivered_result, masked=report.outcome is TemOutcome.MASKED
            )
            return
        self._finish_omitted(job, report.omission_reason or "tem")

    # ------------------------------------------------------------------
    # Job termination paths
    # ------------------------------------------------------------------
    def _finish_job(self, job: Job) -> None:
        job.state = JobState.FINISHED
        if job.deadline_event is not None:
            job.deadline_event.cancel()
            job.deadline_event = None
        if job in self._ready:
            self._ready.remove(job)

    def _finish_delivered(self, job: Job, result: Result, masked: bool) -> None:
        self._finish_job(job)
        job.delivered = result
        if masked:
            self.stats.delivered_masked += 1
        else:
            self.stats.delivered_ok += 1
        self.trace.emit(
            self.sim.now, "kernel.deliver", self.name,
            job=job.job_id, masked=masked,
        )
        if self.on_deliver is not None:
            self.on_deliver(job.task, job, result)

    def _finish_omitted(self, job: Job, reason: str) -> None:
        self._finish_job(job)
        self.stats.omissions += 1
        self.trace.emit(
            self.sim.now, "kernel.omission", self.name,
            job=job.job_id, reason=reason,
        )
        if self.on_omission is not None:
            self.on_omission(job.task, job, reason)

    def _finish_undetected(self, job: Job, result: Result) -> None:
        self._finish_job(job)
        self.stats.undetected_wrong_outputs += 1
        self.trace.emit(
            self.sim.now, "kernel.undetected_output", self.name, job=job.job_id
        )
        if self.on_undetected_output is not None:
            self.on_undetected_output(job.task, job, result)

    def _deadline_check(self, job: Job) -> None:
        if job.state is JobState.FINISHED:
            return
        self.stats.deadline_misses += 1
        self.trace.emit(self.sim.now, "kernel.deadline_miss", self.name, job=job.job_id)
        if self._running is not None and self._running.job is job:
            self._running.event.cancel()
            self._running = None
        self._finish_omitted(job, "deadline")
        self._dispatch()

    # ------------------------------------------------------------------
    # Fault-effect application (called by the node layer)
    # ------------------------------------------------------------------
    def apply_fault_effect(self, effect: FaultEffect) -> str:
        """Apply one manifested fault effect to the kernel's current state.

        Returns a short classification string for campaign bookkeeping.
        """
        if self._silent:
            return "node_silent"
        if effect is FaultEffect.NO_EFFECT:
            return "no_effect"
        if effect is FaultEffect.KERNEL_CORRUPTION:
            self.kernel_error("kernel_check")
            return "kernel_error"
        running = self._running
        if running is None:
            # CPU idle: the corruption lies latent until the next copy.
            self._latent_effects.append(effect)
            return "latent"
        job = running.job
        self._fold_running_time(running)
        self._apply_effect_to_plan(job, effect)
        self._rearm(job)
        return "applied_to_copy"

    def _fold_running_time(self, running: _Running) -> None:
        elapsed = self.sim.now - running.started_at
        running.job.consumed += elapsed
        if running.job.budget is not None:
            running.job.budget.consume(elapsed)
        running.event.cancel()
        self._running = None

    def _rearm(self, job: Job) -> None:
        job.state = JobState.READY
        self._ready.append(job)
        self._dispatch()

    def _apply_effect_to_plan(self, job: Job, effect: FaultEffect) -> None:
        plan = job.plan
        if plan is None:  # copy not planned yet; let the effect wait
            self._latent_effects.append(effect)
            return
        if effect is FaultEffect.WRONG_RESULT:
            if plan.result is not None:
                plan.result = self._corrupt_result(plan.result)
        elif effect is FaultEffect.HARDWARE_EXCEPTION:
            if plan.detected_error is None or (plan.error_at or 0) > job.consumed:
                plan.detected_error = "cpu_exception"
                plan.error_at = job.consumed + 1
        elif effect is FaultEffect.TIMING_OVERRUN:
            assert job.budget is not None
            plan.duration = max(plan.duration, job.budget.budget * 2)
            if plan.detected_error == "execution_time":
                plan.error_at = plan.duration
        elif effect is FaultEffect.UNDETECTED_WRONG_OUTPUT:
            if plan.result is not None:
                plan.result = self._corrupt_result(plan.result)
            plan.bypasses_comparison = True
        elif effect is FaultEffect.NO_EFFECT:
            pass
        else:  # pragma: no cover - exhaustive
            raise SchedulingError(f"unhandled fault effect {effect}")

    def _corrupt_result(self, result: Result) -> Result:
        values = list(result)
        if not values:
            return ("corrupted",)  # type: ignore[return-value]
        index = int(self.rng.integers(0, len(values)))
        value = values[index]
        if isinstance(value, int):
            values[index] = value ^ (1 << int(self.rng.integers(0, 31)))
        else:
            magnitude = abs(float(value)) + 1.0
            values[index] = float(value) + magnitude * float(self.rng.uniform(0.5, 2.0))
        return tuple(values)

    def fail_silent_escalation(self, mechanism: str) -> None:
        """FS-mode reaction to any detected error: silence the node.

        Functionally identical to :meth:`kernel_error` but kept separate for
        tracing/accounting — the FS baseline silences on *application*
        errors too, which an NLFT node would have masked.
        """
        self.trace.emit(self.sim.now, "kernel.fail_silent", self.name, mechanism=mechanism)
        self.shutdown()
        if self.on_kernel_error is not None:
            self.on_kernel_error(mechanism)

    def kernel_error(self, mechanism: str) -> None:
        """An error was detected during kernel execution: go silent.

        Section 2.2, strategy 3 — "Errors detected during execution of the
        real-time kernel should result in the node becoming silent."
        """
        self.stats.kernel_errors += 1
        self.trace.emit(self.sim.now, "kernel.error", self.name, mechanism=mechanism)
        self.shutdown()
        if self.on_kernel_error is not None:
            self.on_kernel_error(mechanism)
