"""Fault-tolerant schedulability analysis with TEM slack reservation.

Section 2.8: "To allow a failed task to re-execute without causing other
tasks to miss their deadlines, extra time (slack) must be reserved *a
priori* and be accounted for in a schedulability test.  The amount of extra
time needed depends on the number and type of faults anticipated."

We implement the established fault-tolerant extension of response-time
analysis (Punnekkat/Burns-style), adapted to TEM's cost structure:

* every critical task's *fault-free* demand is already doubled —
  TEM runs two copies plus a comparison:  ``C_i' = 2 C_i + C_cmp``;
* a *fault hypothesis* bounds the number of recovery executions, F, that
  may occur in any window of length ``T_F`` (``T_F = infinity`` means "at
  most F faults per busy period");
* each recovery re-executes one copy of some critical task at a priority
  level that can delay task i — the worst case is the largest recovery cost
  among tasks of equal or higher priority::

      R_i = C_i' + sum_{j in hp(i)} ceil(R_i / T_j) C_j'
                 + faults(R_i) * max_{k in hep(i), k critical} (C_k + C_cmp)

  where ``faults(w) = F`` for the simple hypothesis or
  ``faults(w) = ceil(w / T_F) * F`` for the sliding-window hypothesis.

The analysis answers two questions the paper's kernel needs:

* is the task set schedulable under the fault hypothesis (can the kernel
  *guarantee* recovery)?
* how much slack per window remains for additional recoveries (drives the
  run-time deadline check's optimism)?
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, SchedulingError
from .analysis import AnalysisResult, ResponseTimeResult, higher_priority, jobs_in
from .cores import PlacementPolicy
from .task import TaskSpec


@dataclasses.dataclass(frozen=True)
class FaultHypothesis:
    """Anticipated fault load for slack dimensioning.

    Attributes
    ----------
    max_faults:
        Number of recovery executions (F) to tolerate ...
    window:
        ... within any window of this length (ticks); ``None`` means per
        busy period (the classic "F faults" assumption).
    """

    max_faults: int = 1
    window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_faults < 0:
            raise ConfigurationError("max_faults must be non-negative")
        if self.window is not None and self.window <= 0:
            raise ConfigurationError("fault window must be positive")

    def faults_in(self, interval: int) -> int:
        """Worst-case recoveries hitting a window of length *interval*."""
        if self.window is None:
            return self.max_faults
        return math.ceil(interval / self.window) * self.max_faults


def tem_cost(task: TaskSpec, comparison_cost: int = 0) -> int:
    """Fault-free TEM demand of one job: two copies plus the comparison."""
    if task.is_critical:
        return 2 * task.wcet + comparison_cost
    return task.wcet


def recovery_cost(task: TaskSpec, comparison_cost: int = 0) -> int:
    """Extra demand of one recovery: one more copy plus a re-comparison."""
    if task.is_critical:
        return task.wcet + comparison_cost
    return 0


def ft_response_time(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    comparison_cost: int = 0,
    limit_factor: int = 100,
) -> Optional[int]:
    """Worst-case response time of *task* under TEM and the fault hypothesis.

    Returns None when the fixed-point iteration diverges (unschedulable by a
    wide margin).
    """
    base = {t.name: tem_cost(t, comparison_cost) for t in tasks}
    own = base[task.name]
    hp = higher_priority(tasks, task)
    # Worst recovery among tasks at this or higher priority (they can all
    # delay task i's completion).
    hep = [t for t in tasks if t.priority <= task.priority]
    worst_recovery = max((recovery_cost(t, comparison_cost) for t in hep), default=0)
    r = own
    bound = task.relative_deadline * limit_factor
    while True:
        total = (
            own
            + sum(math.ceil(r / t.period) * base[t.name] for t in hp)
            + hypothesis.faults_in(r) * worst_recovery
        )
        if total == r:
            return r
        if total > bound:
            return None
        r = total


def analyse_ft(
    tasks: Sequence[TaskSpec],
    hypothesis: FaultHypothesis,
    comparison_cost: int = 0,
) -> AnalysisResult:
    """Fault-tolerant RTA over a whole task set."""
    if not tasks:
        raise SchedulingError("cannot analyse an empty task set")
    results = [
        ResponseTimeResult(
            task=t.name,
            response_time=ft_response_time(tasks, t, hypothesis, comparison_cost),
            deadline=t.relative_deadline,
        )
        for t in tasks
    ]
    return AnalysisResult(per_task=results)


def max_tolerable_faults(
    tasks: Sequence[TaskSpec],
    comparison_cost: int = 0,
    ceiling: int = 64,
) -> int:
    """Largest F such that the set stays schedulable with F recoveries
    per busy period — how much fault resilience the reserved slack buys.

    Returns -1 when the set is unschedulable even fault-free (F = 0).
    """
    best = -1
    for f in range(ceiling + 1):
        result = analyse_ft(tasks, FaultHypothesis(max_faults=f), comparison_cost)
        if result.schedulable:
            best = f
        else:
            break
    return best


# ----------------------------------------------------------------------
# Weakly-hard (m,k) extension
# ----------------------------------------------------------------------

def mk_absorbable_misses(
    tasks: Sequence[TaskSpec], task: TaskSpec, interval: int
) -> int:
    """Recoveries the (m,k) miss budgets can absorb in a window of length
    *interval* at *task*'s priority level, as controlled misses instead of
    re-executions.

    A recovery can only be skipped if the task it belongs to tolerates
    the resulting miss.  The fault hypothesis does not say *which* task
    the faults strike, so the bound must hold even when every fault hits
    the least tolerant task: the absorbable count is the **minimum**
    weakly-hard allowance over all critical tasks at this or higher
    priority (their recoveries are the ones that can delay *task*).  A
    hard-deadline task in that set — ``weakly_hard`` unset, or the
    degenerate (0, k) — contributes an allowance of zero, which recovers
    the classic analysis exactly.
    """
    hep = [
        t for t in tasks
        if t.priority <= task.priority and t.is_critical
    ]
    if not hep:
        return 0
    allowed = []
    for t in hep:
        if t.weakly_hard is None:
            return 0
        allowed.append(t.weakly_hard.max_misses_in(jobs_in(t, interval)))
    return min(allowed)


def mk_response_time(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    comparison_cost: int = 0,
    limit_factor: int = 100,
) -> Optional[int]:
    """Worst-case response time under TEM with (m,k) miss budgets.

    Identical to :func:`ft_response_time` except that the recovery term
    accounts only for the faults the miss budgets cannot absorb: a
    recovery whose omission would stay within every affected task's
    (m,k) window is *skipped* by the miss-budget-aware policy
    (:class:`repro.core.tem.TemStateMachine` with ``accept_miss``), so it
    reserves no slack::

        R_i = C_i' + sum_{j in hp(i)} ceil(R_i / T_j) C_j'
                   + max(0, faults(R_i) - absorbable(R_i))
                     * max_{k in hep(i), k critical} (C_k + C_cmp)

    With every constraint hard ((0,1) or unset) this reduces to
    :func:`ft_response_time` term for term.
    """
    base = {t.name: tem_cost(t, comparison_cost) for t in tasks}
    own = base[task.name]
    hp = higher_priority(tasks, task)
    hep = [t for t in tasks if t.priority <= task.priority]
    worst_recovery = max((recovery_cost(t, comparison_cost) for t in hep), default=0)
    r = own
    bound = task.relative_deadline * limit_factor
    while True:
        recoveries = max(
            0, hypothesis.faults_in(r) - mk_absorbable_misses(tasks, task, r)
        )
        total = (
            own
            + sum(math.ceil(r / t.period) * base[t.name] for t in hp)
            + recoveries * worst_recovery
        )
        # The recovery term is non-monotone in r (absorbable misses grow
        # with the interval), so the iteration can oscillate instead of
        # converging from below.  Any r with demand(r) <= r is a sound
        # response-time bound, so accept it; with hard constraints the
        # demand is monotone and this fires only at total == r, keeping
        # the ft_response_time degeneracy exact.
        if total <= r:
            return r
        if total > bound:
            return None
        r = total


def analyse_mk(
    tasks: Sequence[TaskSpec],
    hypothesis: FaultHypothesis,
    comparison_cost: int = 0,
) -> AnalysisResult:
    """(m,k)-aware fault-tolerant RTA over a whole task set."""
    if not tasks:
        raise SchedulingError("cannot analyse an empty task set")
    results = [
        ResponseTimeResult(
            task=t.name,
            response_time=mk_response_time(tasks, t, hypothesis, comparison_cost),
            deadline=t.relative_deadline,
        )
        for t in tasks
    ]
    return AnalysisResult(per_task=results)


def mk_max_tolerable_faults(
    tasks: Sequence[TaskSpec],
    comparison_cost: int = 0,
    ceiling: int = 64,
) -> int:
    """Largest F keeping the set schedulable under the (m,k)-aware test —
    the fault-tolerance headroom the miss budgets buy on top of
    :func:`max_tolerable_faults`.  Returns -1 when unschedulable at F = 0.
    """
    best = -1
    for f in range(ceiling + 1):
        result = analyse_mk(tasks, FaultHypothesis(max_faults=f), comparison_cost)
        if result.schedulable:
            best = f
        else:
            break
    return best


def slack_per_period(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    comparison_cost: int = 0,
) -> Optional[int]:
    """Deadline slack D_i - R_i under the fault hypothesis (None if
    unschedulable)."""
    r = ft_response_time(tasks, task, hypothesis, comparison_cost)
    if r is None:
        return None
    return task.relative_deadline - r


def tem_utilization(tasks: Sequence[TaskSpec], comparison_cost: int = 0) -> float:
    """Fault-free utilization with TEM doubling applied."""
    return sum(tem_cost(t, comparison_cost) / t.period for t in tasks)


# ----------------------------------------------------------------------
# Multicore extension (ROADMAP item 4)
# ----------------------------------------------------------------------

def partition_tasks(
    tasks: Sequence[TaskSpec],
    cores: int,
    comparison_cost: int = 0,
) -> List[List[TaskSpec]]:
    """Deterministic task-to-core assignment for partitioned scheduling.

    Tasks with an explicit :attr:`~repro.kernel.task.TaskSpec.core` keep
    their pin; the rest are placed first-fit-decreasing by TEM-inflated
    utilization (a standard bin-packing heuristic), with ties broken by
    registration order so the assignment is reproducible.  With one core
    everything lands on core 0 and each partition *is* the input set.
    """
    if cores < 1:
        raise ConfigurationError("a node needs at least one core")
    partitions: List[List[TaskSpec]] = [[] for _ in range(cores)]
    load = [0.0] * cores
    floating: List[TaskSpec] = []
    for task in tasks:
        if task.core is not None:
            if task.core >= cores:
                raise ConfigurationError(
                    f"task {task.name!r} is pinned to core {task.core} but "
                    f"the node has only {cores} core(s)"
                )
            partitions[task.core].append(task)
            load[task.core] += tem_cost(task, comparison_cost) / task.period
        else:
            floating.append(task)
    floating.sort(
        key=lambda t: tem_cost(t, comparison_cost) / t.period, reverse=True
    )
    for task in floating:
        core = min(range(cores), key=lambda c: (load[c], c))
        partitions[core].append(task)
        load[core] += tem_cost(task, comparison_cost) / task.period
    # Preserve priority-analysis preconditions: keep each partition in the
    # original (validated) task-set order.
    order = {t.name: i for i, t in enumerate(tasks)}
    for partition in partitions:
        partition.sort(key=lambda t: order[t.name])
    return partitions


def _global_response_time(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    cores: int,
    comparison_cost: int,
    limit_factor: int,
    with_mk: bool,
) -> Optional[int]:
    """Global-FP response-time iteration (shared by ft/mk variants).

    The classic multiprocessor extension of the busy-period argument: on
    M cores a job is only delayed while *all* M cores are busy with
    equal-or-higher-priority work, so interference (and the reserved
    recovery demand, which runs at the recovering task's priority) is
    divided by M::

        R_i = C_i' + floor((sum_{j in hp(i)} ceil(R_i / T_j) C_j'
                            + recoveries(R_i) * maxrec(i)) / M)

    With M = 1 the floor-division is the identity, every iterate equals
    the single-processor iteration's, and the fixed point is bit-identical
    to :func:`ft_response_time` (or :func:`mk_response_time` when
    *with_mk*) — the degeneracy gate the tests pin down.
    """
    base = {t.name: tem_cost(t, comparison_cost) for t in tasks}
    own = base[task.name]
    hp = higher_priority(tasks, task)
    hep = [t for t in tasks if t.priority <= task.priority]
    worst_recovery = max((recovery_cost(t, comparison_cost) for t in hep), default=0)
    r = own
    bound = task.relative_deadline * limit_factor
    while True:
        recoveries = hypothesis.faults_in(r)
        if with_mk:
            recoveries = max(0, recoveries - mk_absorbable_misses(tasks, task, r))
        interference = sum(math.ceil(r / t.period) * base[t.name] for t in hp)
        total = own + (interference + recoveries * worst_recovery) // cores
        # Same convergence rules as the single-core iterations: the hard
        # variant's demand is monotone (equality suffices); the (m,k)
        # recovery term is not, so any total <= r is a sound bound.
        if total <= r if with_mk else total == r:
            return r
        if total > bound:
            return None
        r = total


def ft_response_time_mc(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    cores: int = 1,
    placement: PlacementPolicy = PlacementPolicy.PARTITIONED,
    comparison_cost: int = 0,
    limit_factor: int = 100,
) -> Optional[int]:
    """Worst-case response time of *task* on an M-core node.

    Partitioned placement analyses *task*'s partition with the
    single-processor test (interference only from co-located tasks);
    global placement uses the M-divided busy-period iteration.  Both
    reduce term for term to :func:`ft_response_time` at ``cores=1``.
    """
    if placement is PlacementPolicy.PARTITIONED:
        partitions = partition_tasks(tasks, cores, comparison_cost)
        for partition in partitions:
            if any(t.name == task.name for t in partition):
                return ft_response_time(
                    partition, task, hypothesis, comparison_cost, limit_factor
                )
        raise SchedulingError(f"task {task.name!r} not in the analysed set")
    return _global_response_time(
        tasks, task, hypothesis, cores, comparison_cost, limit_factor, with_mk=False
    )


def mk_response_time_mc(
    tasks: Sequence[TaskSpec],
    task: TaskSpec,
    hypothesis: FaultHypothesis,
    cores: int = 1,
    placement: PlacementPolicy = PlacementPolicy.PARTITIONED,
    comparison_cost: int = 0,
    limit_factor: int = 100,
) -> Optional[int]:
    """(m,k)-aware multicore response time (see :func:`ft_response_time_mc`)."""
    if placement is PlacementPolicy.PARTITIONED:
        partitions = partition_tasks(tasks, cores, comparison_cost)
        for partition in partitions:
            if any(t.name == task.name for t in partition):
                return mk_response_time(
                    partition, task, hypothesis, comparison_cost, limit_factor
                )
        raise SchedulingError(f"task {task.name!r} not in the analysed set")
    return _global_response_time(
        tasks, task, hypothesis, cores, comparison_cost, limit_factor, with_mk=True
    )


def analyse_ft_mc(
    tasks: Sequence[TaskSpec],
    hypothesis: FaultHypothesis,
    cores: int = 1,
    placement: PlacementPolicy = PlacementPolicy.PARTITIONED,
    comparison_cost: int = 0,
) -> AnalysisResult:
    """Fault-tolerant RTA of a task set on an M-core node.

    ``analyse_ft_mc(tasks, hyp, cores=1)`` equals :func:`analyse_ft`
    exactly — same per-task response times, same schedulability verdict —
    for either placement policy (the M = 1 degeneracy gate).
    """
    if not tasks:
        raise SchedulingError("cannot analyse an empty task set")
    results = [
        ResponseTimeResult(
            task=t.name,
            response_time=ft_response_time_mc(
                tasks, t, hypothesis, cores, placement, comparison_cost
            ),
            deadline=t.relative_deadline,
        )
        for t in tasks
    ]
    return AnalysisResult(per_task=results)


def analyse_mk_mc(
    tasks: Sequence[TaskSpec],
    hypothesis: FaultHypothesis,
    cores: int = 1,
    placement: PlacementPolicy = PlacementPolicy.PARTITIONED,
    comparison_cost: int = 0,
) -> AnalysisResult:
    """(m,k)-aware multicore RTA; equals :func:`analyse_mk` at ``cores=1``."""
    if not tasks:
        raise SchedulingError("cannot analyse an empty task set")
    results = [
        ResponseTimeResult(
            task=t.name,
            response_time=mk_response_time_mc(
                tasks, t, hypothesis, cores, placement, comparison_cost
            ),
            deadline=t.relative_deadline,
        )
        for t in tasks
    ]
    return AnalysisResult(per_task=results)
