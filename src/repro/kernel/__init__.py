"""Real-time kernel: tasks, FP preemptive scheduling, budgets, RTA.

Substitutes the Artk68-FT kernel of ref. [8]; the scheduler runs on the
discrete-event simulator and drives temporal error masking for critical
tasks (see :mod:`repro.core.tem`).
"""

from .analysis import (
    AnalysisResult,
    ResponseTimeResult,
    analyse,
    higher_priority,
    jobs_in,
    response_time,
    utilization,
)
from .budget import DEFAULT_BUDGET_FACTOR, ExecutionBudget, budget_for_wcet
from .ft_analysis import (
    FaultHypothesis,
    analyse_ft,
    analyse_mk,
    ft_response_time,
    max_tolerable_faults,
    mk_absorbable_misses,
    mk_max_tolerable_faults,
    mk_response_time,
    recovery_cost,
    slack_per_period,
    tem_cost,
    tem_utilization,
)
from .priority import (
    assign_criticality_monotonic,
    assign_deadline_monotonic,
    audsley_assignment,
    validate_distinct_priorities,
)
from .scheduler import Job, JobState, JobStats, KernelConfig, Scheduler
from .task import (
    CallableExecutable,
    CopyPlan,
    Criticality,
    Executable,
    MachineExecutable,
    MKWindow,
    Result,
    TaskSpec,
    WeaklyHardConstraint,
    validate_task_set,
)

__all__ = [
    "AnalysisResult",
    "CallableExecutable",
    "CopyPlan",
    "Criticality",
    "DEFAULT_BUDGET_FACTOR",
    "Executable",
    "ExecutionBudget",
    "FaultHypothesis",
    "Job",
    "JobState",
    "JobStats",
    "KernelConfig",
    "MKWindow",
    "MachineExecutable",
    "ResponseTimeResult",
    "Result",
    "Scheduler",
    "TaskSpec",
    "WeaklyHardConstraint",
    "analyse",
    "analyse_ft",
    "analyse_mk",
    "assign_criticality_monotonic",
    "assign_deadline_monotonic",
    "audsley_assignment",
    "budget_for_wcet",
    "ft_response_time",
    "higher_priority",
    "jobs_in",
    "max_tolerable_faults",
    "mk_absorbable_misses",
    "mk_max_tolerable_faults",
    "mk_response_time",
    "recovery_cost",
    "response_time",
    "slack_per_period",
    "tem_cost",
    "tem_utilization",
    "utilization",
    "validate_distinct_priorities",
    "validate_task_set",
]
