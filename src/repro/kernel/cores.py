"""M-core execution abstraction for one node's kernel (ROADMAP item 4).

The paper's node model runs every task copy on a single processor; the
multicore extension gives each node a :class:`CoreSet` — M identical cores
with one running slot each — and a :class:`PlacementPolicy` deciding which
ready job may use which core:

* :attr:`PlacementPolicy.PARTITIONED` — every task is pinned to one core
  (``TaskSpec.core``, default core 0) and each core runs an independent
  single-core fixed-priority schedule.  With M = 1 this *is* the paper's
  kernel, bit for bit.
* :attr:`PlacementPolicy.GLOBAL` — one shared ready queue; the M
  highest-priority ready jobs run, preempting the lowest-priority running
  job when needed, and a preempted job may resume on a different core
  (a *migration*, counted in the kernel stats).

The :class:`CoreSet` itself is policy-free bookkeeping: slot occupancy and
deterministic slot selection.  The dispatch logic lives in
:class:`repro.kernel.scheduler.Scheduler`, the schedulability side in
:func:`repro.kernel.ft_analysis.analyse_ft_mc`.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from ..errors import ConfigurationError


class PlacementPolicy(enum.Enum):
    """How ready jobs map onto the node's cores."""

    PARTITIONED = "partitioned"
    GLOBAL = "global"


class CoreSet:
    """M running slots with deterministic selection helpers.

    Slots hold whatever the scheduler runs (its ``_Running`` records);
    the core set never inspects them beyond identity, except through
    caller-supplied key functions.
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ConfigurationError("a node needs at least one core")
        self.count = count
        self.slots: List[Optional[object]] = [None] * count

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True when any core is executing."""
        return any(slot is not None for slot in self.slots)

    def idle_core(self) -> Optional[int]:
        """Lowest-numbered idle core, or None when all are busy."""
        for core, slot in enumerate(self.slots):
            if slot is None:
                return core
        return None

    def core_of(self, predicate: Callable[[object], bool]) -> Optional[int]:
        """Lowest-numbered core whose slot satisfies *predicate*."""
        for core, slot in enumerate(self.slots):
            if slot is not None and predicate(slot):
                return core
        return None

    def victim_core(
        self,
        urgency: Callable[[object], int],
        preemptable: Callable[[object], bool],
    ) -> Optional[int]:
        """Core to preempt: the busy, preemptable slot with the *largest*
        priority number (least urgent job); ties break to the lowest core
        index.  Returns None when nothing is preemptable."""
        best_core: Optional[int] = None
        best_urgency: Optional[int] = None
        for core, slot in enumerate(self.slots):
            if slot is None or not preemptable(slot):
                continue
            value = urgency(slot)
            if best_urgency is None or value > best_urgency:
                best_core = core
                best_urgency = value
        return best_core

    def clear(self) -> None:
        for core in range(self.count):
            self.slots[core] = None
