"""Parameter set of the paper's dependability analysis (Section 3.3).

All rates are per hour.  The defaults are exactly the paper's values:

* lambda_p = 1.82e-5 /h — permanent fault rate of one computer node, taken
  from Claesson's MIL-HDBK-217 derivation for a truck brake-by-wire node [15];
* lambda_t = 10 * lambda_p — transient fault rate (Section 3.3, consistent
  with the soft-error trend argument of Baumann [5]);
* C_D = 0.99 — error-detection coverage (varied in Figure 14);
* P_T = 0.90, P_OM = 0.05, P_FS = 0.05 — conditional outcome probabilities
  for detected transient errors on an NLFT node (from the fault-injection
  studies [7]); they must sum to 1;
* mu_r = 1200 /h — repair rate for fail-silent restart (3 s: 1.6 s TTP/C-style
  restart/reintegration [16] + 1.4 s hardware reset & diagnostics);
* mu_om = 2250 /h — repair rate for omission failures (1.6 s).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError

#: Paper values (Section 3.3).
PERMANENT_FAULT_RATE = 1.82e-5
TRANSIENT_FAULT_RATE = 1.82e-4
COVERAGE = 0.99
P_TEM_MASKED = 0.90
P_OMISSION = 0.05
P_FAIL_SILENT = 0.05
RESTART_REPAIR_RATE = 1.2e3
OMISSION_REPAIR_RATE = 2.25e3

#: Architecture constants of the example system (Figure 4).
WHEEL_NODE_COUNT = 4
DEGRADED_MIN_WHEEL_NODES = 3
CENTRAL_UNIT_REPLICAS = 2


@dataclasses.dataclass(frozen=True)
class BbwParameters:
    """Immutable parameter record for the brake-by-wire analysis.

    Use :meth:`paper` for the published values and :meth:`replace` (from
    dataclasses) to build variants for sensitivity studies.
    """

    lambda_p: float = PERMANENT_FAULT_RATE
    lambda_t: float = TRANSIENT_FAULT_RATE
    coverage: float = COVERAGE
    p_tem: float = P_TEM_MASKED
    p_omission: float = P_OMISSION
    p_fail_silent: float = P_FAIL_SILENT
    mu_restart: float = RESTART_REPAIR_RATE
    mu_omission: float = OMISSION_REPAIR_RATE

    def __post_init__(self) -> None:
        if self.lambda_p < 0 or self.lambda_t < 0:
            raise ConfigurationError("fault rates must be non-negative")
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError(f"coverage must be in [0,1], got {self.coverage}")
        for name in ("p_tem", "p_omission", "p_fail_silent"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {value}")
        total = self.p_tem + self.p_omission + self.p_fail_silent
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"P_T + P_OM + P_FS must sum to 1 (got {total}); these are the "
                "conditional outcomes of a detected transient error"
            )
        if self.mu_restart <= 0 or self.mu_omission <= 0:
            raise ConfigurationError("repair rates must be positive")

    # ------------------------------------------------------------------
    # Derived quantities used across the models
    # ------------------------------------------------------------------
    @property
    def lambda_total(self) -> float:
        """Total activated-fault rate of one node: lambda_p + lambda_t."""
        return self.lambda_p + self.lambda_t

    @property
    def uncovered_rate(self) -> float:
        """Rate of non-covered (undetected) errors per node.

        The paper pessimistically maps every non-covered error to a failure
        of the entire BBW system (Section 3.2.1).
        """
        return self.lambda_total * (1.0 - self.coverage)

    @property
    def nlft_unmasked_rate(self) -> float:
        """Failure-causing fault rate of one *working* NLFT node.

        A fault escapes local masking when it is permanent, undetected, or a
        detected transient that ends in an omission or fail-silent failure:
        lambda_p + lambda_t * (1 - C_D * P_T).
        """
        return self.lambda_p + self.lambda_t * (1.0 - self.coverage * self.p_tem)

    @property
    def fs_failure_rate(self) -> float:
        """Failure-causing fault rate of one working FS node (any fault)."""
        return self.lambda_total

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "BbwParameters":
        """The exact parameter assignment of Section 3.3."""
        return cls()

    def with_transient_scale(self, factor: float) -> "BbwParameters":
        """Scale the transient fault rate (the Figure 14 x-axis)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative, got {factor}")
        return dataclasses.replace(self, lambda_t=self.lambda_t * factor)

    def with_coverage(self, coverage: float) -> "BbwParameters":
        """Replace the error-detection coverage (the Figure 14 family)."""
        return dataclasses.replace(self, coverage=coverage)

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"lambda_p={self.lambda_p:.3g}/h lambda_t={self.lambda_t:.3g}/h "
            f"C_D={self.coverage} P_T={self.p_tem} P_OM={self.p_omission} "
            f"P_FS={self.p_fail_silent} mu_R={self.mu_restart:.4g}/h "
            f"mu_OM={self.mu_omission:.4g}/h"
        )
