"""Models of the wheel-node subsystem (Figures 8-11).

Four simplex wheel nodes (WN) brake one wheel each.  Two functionality
requirements are analysed:

* **full functionality** — all four wheel nodes must work;
* **degraded functionality** — at least three of four must work (the brake
  force is redistributed to the remaining wheels after one node fails).

Combined with the two node types this yields four models:

========================  ==============================================
model                      paper figure / formalism
========================  ==============================================
FS, full functionality     Figure 8 — series RBD of four nodes
FS, degraded               Figure 9 — 4-state CTMC
NLFT, full functionality   Figure 10 — 2-state CTMC
NLFT, degraded             Figure 11 — 5-state CTMC
========================  ==============================================

In full-functionality mode even a 3-second fail-silent restart or a 1.6 s
omission recovery violates "all four working", so every unmasked fault is
fatal; only TEM masking (NLFT) avoids failure.  In degraded mode a single
node outage is survivable, but a second concurrent outage is not — and with
three remaining nodes the exposure rate is ``3 x`` the per-node rate.
"""

from __future__ import annotations

from ..reliability import Exponential, MarkovChain, Series
from ..reliability.rbd import Block
from .central_unit import (
    STATE_FAILED,
    STATE_OK,
    STATE_OMISSION,
    STATE_PERMANENT,
    STATE_RESTART,
)
from .parameters import WHEEL_NODE_COUNT, BbwParameters


def build_wn_fs_full_rbd(params: BbwParameters) -> Block:
    """FS nodes, full functionality (paper Figure 8): series RBD.

    Each node fails (at least temporarily, which full functionality counts
    as failure) at its total activated-fault rate ``lambda_p + lambda_t``.
    """
    nodes = [
        Exponential(params.fs_failure_rate, name=f"WN{i + 1}")
        for i in range(WHEEL_NODE_COUNT)
    ]
    return Series(nodes, name="WN-FS-full")


def build_wn_fs_full(params: BbwParameters) -> MarkovChain:
    """FS nodes, full functionality, as an equivalent 2-state CTMC.

    Provided alongside the RBD form so the system composition can treat all
    subsystem models uniformly; tests verify both agree analytically.
    """
    chain = MarkovChain([STATE_OK, STATE_FAILED], name="WN-FS-full")
    chain.set_initial(STATE_OK)
    chain.add_transition(
        STATE_OK, STATE_FAILED, WHEEL_NODE_COUNT * params.fs_failure_rate,
        label="any fault in any of the four FS wheel nodes",
    )
    return chain


def build_wn_fs_degraded(params: BbwParameters) -> MarkovChain:
    """FS nodes, degraded functionality (paper Figure 9).

    A first detected fault takes the subsystem to state 1 (permanent) or
    state 2 (transient, node restarting); three nodes keep braking.  Any
    further fault among the three working nodes — or an undetected error
    anywhere — is fatal.
    """
    chain = MarkovChain(
        [STATE_OK, STATE_PERMANENT, STATE_RESTART, STATE_FAILED], name="WN-FS-degraded"
    )
    chain.set_initial(STATE_OK)
    n = WHEEL_NODE_COUNT
    chain.add_transition(
        STATE_OK, STATE_PERMANENT, n * params.lambda_p * params.coverage,
        label="detected permanent fault in one of four nodes",
    )
    chain.add_transition(
        STATE_OK, STATE_RESTART, n * params.lambda_t * params.coverage,
        label="detected transient fault -> fail-silent restart",
    )
    chain.add_transition(
        STATE_OK, STATE_FAILED, n * params.uncovered_rate,
        label="non-covered error (pessimistic: system failure)",
    )
    remaining = (n - 1) * params.fs_failure_rate
    chain.add_transition(
        STATE_PERMANENT, STATE_FAILED, remaining,
        label="any fault among the three remaining nodes",
    )
    chain.add_transition(STATE_RESTART, STATE_OK, params.mu_restart, label="reintegration")
    chain.add_transition(
        STATE_RESTART, STATE_FAILED, remaining,
        label="any fault among the three working nodes during restart",
    )
    return chain


def build_wn_nlft_full(params: BbwParameters) -> MarkovChain:
    """NLFT nodes, full functionality (paper Figure 10): 2-state CTMC.

    Only TEM-masked transients keep the subsystem in state 0; every other
    fault (permanent, undetected, omission, fail-silent) interrupts at least
    one wheel node and thus ends full functionality.
    """
    chain = MarkovChain([STATE_OK, STATE_FAILED], name="WN-NLFT-full")
    chain.set_initial(STATE_OK)
    chain.add_transition(
        STATE_OK, STATE_FAILED, WHEEL_NODE_COUNT * params.nlft_unmasked_rate,
        label="unmasked fault in any of the four NLFT wheel nodes",
    )
    return chain


def build_wn_nlft_degraded(params: BbwParameters) -> MarkovChain:
    """NLFT nodes, degraded functionality (paper Figure 11): 5-state CTMC.

    Mirrors Figure 9 but detected transients split into masked (no
    transition), omission (state 3, fast 1.6 s reintegration) and fail-silent
    (state 2, 3 s restart); the three surviving nodes keep masking their own
    transients, reducing the second-fault exposure rate.
    """
    chain = MarkovChain(
        [STATE_OK, STATE_PERMANENT, STATE_RESTART, STATE_OMISSION, STATE_FAILED],
        name="WN-NLFT-degraded",
    )
    chain.set_initial(STATE_OK)
    n = WHEEL_NODE_COUNT
    detected_transient = n * params.lambda_t * params.coverage
    chain.add_transition(
        STATE_OK, STATE_PERMANENT, n * params.lambda_p * params.coverage,
        label="detected permanent fault in one of four nodes",
    )
    chain.add_transition(
        STATE_OK, STATE_RESTART, detected_transient * params.p_fail_silent,
        label="detected transient -> fail-silent failure",
    )
    chain.add_transition(
        STATE_OK, STATE_OMISSION, detected_transient * params.p_omission,
        label="detected transient -> omission failure",
    )
    chain.add_transition(
        STATE_OK, STATE_FAILED, n * params.uncovered_rate,
        label="non-covered error (pessimistic: system failure)",
    )
    remaining = (n - 1) * params.nlft_unmasked_rate
    chain.add_transition(
        STATE_PERMANENT, STATE_FAILED, remaining,
        label="unmasked fault among the three remaining nodes",
    )
    chain.add_transition(STATE_RESTART, STATE_OK, params.mu_restart, label="restart done")
    chain.add_transition(
        STATE_RESTART, STATE_FAILED, remaining,
        label="unmasked fault among the three working nodes",
    )
    chain.add_transition(STATE_OMISSION, STATE_OK, params.mu_omission, label="omission recovery")
    chain.add_transition(
        STATE_OMISSION, STATE_FAILED, remaining,
        label="unmasked fault among the three working nodes",
    )
    return chain


def build_wheel_subsystem(
    params: BbwParameters, node_type: str, mode: str
) -> MarkovChain:
    """Dispatch on (node_type, mode) to the four paper models.

    ``node_type`` is ``"fs"`` or ``"nlft"``; ``mode`` is ``"full"`` or
    ``"degraded"``.  The FS/full case returns the CTMC form (equivalent to
    the Figure 8 RBD, see :func:`build_wn_fs_full_rbd`).
    """
    builders = {
        ("fs", "full"): build_wn_fs_full,
        ("fs", "degraded"): build_wn_fs_degraded,
        ("nlft", "full"): build_wn_nlft_full,
        ("nlft", "degraded"): build_wn_nlft_degraded,
    }
    try:
        builder = builders[(node_type, mode)]
    except KeyError:
        raise ValueError(
            f"unknown combination node_type={node_type!r}, mode={mode!r}; "
            "expected ('fs'|'nlft', 'full'|'degraded')"
        ) from None
    return builder(params)
