"""Generalized n-of-required redundancy models.

The paper's introduction frames the core trade-off: systems without
fail-silence need 2f+1 nodes and voting, fail-silent nodes need only f+1,
and NLFT further reduces how much redundancy a given dependability target
costs.  The concrete models of Section 3.2 are instances for n = 2
(duplex CU) and n = 4 wheel nodes; this module provides the *general*
builder so redundancy-dimensioning studies ("how many nodes do I need?")
can be run for any (n, required).

State space
-----------
A subsystem of *n* identical nodes needs *required* of them working.  A
state is the outage vector ``(p, r, o)``:

* ``p`` nodes permanently down,
* ``r`` nodes in fail-silent restart (repair rate mu_R each),
* ``o`` nodes in omission recovery (repair rate mu_OM each),

subject to ``p + r + o <= n - required`` (one more outage would drop the
working count below *required*, which is the absorbing failure state F).
Per-node fault behaviour follows Section 3.2.1 exactly (FS or NLFT
semantics); non-covered errors go straight to F (the paper's pessimistic
rule).

For (n=2, required=1) and (n=4, required in {3, 4}) these chains reproduce
the paper's Figures 6, 7, 9, 10, 11 transition for transition — verified in
the test suite.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..reliability import MarkovChain
from ..units import HOURS_PER_YEAR
from .parameters import BbwParameters

STATE_FAILED = "F"


def _state_name(p: int, r: int, o: int) -> str:
    return f"p{p}r{r}o{o}"


def build_redundant_subsystem(
    params: BbwParameters,
    node_type: str,
    n: int,
    required: int,
    name: Optional[str] = None,
    permanent_repair_rate: float = 0.0,
    system_repair_rate: float = 0.0,
) -> MarkovChain:
    """CTMC of an n-node subsystem needing *required* working nodes.

    Parameters
    ----------
    node_type:
        ``"fs"`` or ``"nlft"`` (Section 3.2.1 semantics).
    n / required:
        Replication level and the minimum number of working nodes.
    permanent_repair_rate:
        Per-node replacement rate for permanently failed nodes (a service
        visit; the paper's pure-reliability study uses 0).  With a positive
        rate the model becomes an *availability* model — see
        :mod:`repro.reliability.availability`.
    system_repair_rate:
        Repair rate out of the system-failure state F back to fully
        working (vehicle towed and repaired); makes the chain irreducible.
    """
    if permanent_repair_rate < 0 or system_repair_rate < 0:
        raise ConfigurationError("repair rates must be non-negative")
    if node_type not in ("fs", "nlft"):
        raise ConfigurationError(f"node_type must be 'fs' or 'nlft', got {node_type!r}")
    if not 1 <= required <= n:
        raise ConfigurationError(f"need 1 <= required <= n, got required={required}, n={n}")
    budget = n - required
    states: List[Tuple[int, int, int]] = [
        (p, r, o)
        for p, r, o in itertools.product(range(budget + 1), repeat=3)
        if p + r + o <= budget
    ]
    chain = MarkovChain(
        [_state_name(*s) for s in states] + [STATE_FAILED],
        name=name or f"{node_type.upper()}-{required}oo{n}",
    )
    chain.set_initial(_state_name(0, 0, 0))

    detected_transient_share = params.lambda_t * params.coverage
    for p, r, o in states:
        here = _state_name(p, r, o)
        working = n - p - r - o

        def go(dp: int, dr: int, do: int, rate: float, label: str) -> None:
            if rate <= 0.0:
                return
            np_, nr, no = p + dp, r + dr, o + do
            if np_ + nr + no > budget:
                chain.add_transition(here, STATE_FAILED, rate, label=label + " -> failure")
            else:
                chain.add_transition(here, _state_name(np_, nr, no), rate, label=label)

        # Faults in the working nodes.
        go(1, 0, 0, working * params.lambda_p * params.coverage, "detected permanent")
        if node_type == "fs":
            go(0, 1, 0, working * detected_transient_share, "detected transient (restart)")
        else:
            go(
                0, 1, 0,
                working * detected_transient_share * params.p_fail_silent,
                "detected transient -> fail-silent",
            )
            go(
                0, 0, 1,
                working * detected_transient_share * params.p_omission,
                "detected transient -> omission",
            )
            # Masked share (P_T) stays in place: no transition.
        chain.add_transition(
            here, STATE_FAILED, working * params.uncovered_rate,
            label="non-covered error",
        )
        # Repairs (each outstanding repair proceeds independently).
        if r > 0:
            chain.add_transition(
                here, _state_name(p, r - 1, o), r * params.mu_restart, label="restart done"
            )
        if o > 0:
            chain.add_transition(
                here, _state_name(p, r, o - 1), o * params.mu_omission,
                label="omission recovery done",
            )
        if p > 0 and permanent_repair_rate > 0:
            chain.add_transition(
                here, _state_name(p - 1, r, o), p * permanent_repair_rate,
                label="permanent fault repaired (service visit)",
            )
    if system_repair_rate > 0:
        chain.add_transition(
            STATE_FAILED, _state_name(0, 0, 0), system_repair_rate,
            label="system repaired after failure",
        )
    return chain


def up_states(chain: MarkovChain) -> List[str]:
    """The operational states of a generalized-redundancy chain
    (everything except the system-failure state F)."""
    return [state for state in chain.states if state != STATE_FAILED]


@dataclasses.dataclass(frozen=True)
class RedundancyPoint:
    """One (configuration, measure) row of a redundancy study."""

    node_type: str
    n: int
    required: int
    reliability_one_year: float
    mttf_years: float

    @property
    def label(self) -> str:
        return f"{self.node_type} {self.required}oo{self.n}"


def redundancy_study(
    params: BbwParameters,
    configurations: List[Tuple[str, int, int]],
    mission_hours: float = HOURS_PER_YEAR,
) -> List[RedundancyPoint]:
    """Evaluate R(mission) and MTTF for several redundancy levels.

    *configurations* is a list of ``(node_type, n, required)`` triples.
    This powers the paper's cost argument: how much replication a given
    dependability target costs with FS vs NLFT nodes.
    """
    points = []
    for node_type, n, required in configurations:
        chain = build_redundant_subsystem(params, node_type, n, required)
        points.append(
            RedundancyPoint(
                node_type=node_type,
                n=n,
                required=required,
                reliability_one_year=chain.reliability(mission_hours),
                mttf_years=chain.mttf() / HOURS_PER_YEAR,
            )
        )
    return points


def nodes_needed(
    params: BbwParameters,
    node_type: str,
    required: int,
    target_reliability: float,
    mission_hours: float,
    n_max: int = 12,
) -> Optional[int]:
    """Smallest n achieving the reliability target, or None if n_max fails.

    Answers the procurement question behind the paper's cost argument
    directly: NLFT typically reaches a target with fewer nodes than FS.
    """
    if not 0.0 < target_reliability < 1.0:
        raise ConfigurationError("target reliability must be in (0, 1)")
    for n in range(required, n_max + 1):
        chain = build_redundant_subsystem(params, node_type, n, required)
        if chain.reliability(mission_hours) >= target_reliability:
            return n
    return None
