"""The paper's brake-by-wire dependability models (Section 3.2).

This package reproduces Figures 5-11 as executable model builders on top of
:mod:`repro.reliability`, parameterised by :class:`~repro.models.parameters.
BbwParameters` (the Section 3.3 assignment).
"""

from .bbw import (
    MODES,
    MTTF_HORIZON_HOURS,
    NODE_TYPES,
    BbwSystemModel,
    build_all_configurations,
    build_bbw_system,
)
from .central_unit import (
    STATE_FAILED,
    STATE_OK,
    STATE_OMISSION,
    STATE_PERMANENT,
    STATE_RESTART,
    build_central_unit,
    build_cu_fs,
    build_cu_nlft,
)
from .parameters import (
    CENTRAL_UNIT_REPLICAS,
    COVERAGE,
    DEGRADED_MIN_WHEEL_NODES,
    OMISSION_REPAIR_RATE,
    PERMANENT_FAULT_RATE,
    P_FAIL_SILENT,
    P_OMISSION,
    P_TEM_MASKED,
    RESTART_REPAIR_RATE,
    TRANSIENT_FAULT_RATE,
    WHEEL_NODE_COUNT,
    BbwParameters,
)
from .generalized import (
    RedundancyPoint,
    build_redundant_subsystem,
    nodes_needed,
    redundancy_study,
    up_states,
)
from .wheel_nodes import (
    build_wheel_subsystem,
    build_wn_fs_degraded,
    build_wn_fs_full,
    build_wn_fs_full_rbd,
    build_wn_nlft_degraded,
    build_wn_nlft_full,
)

__all__ = [
    "BbwParameters",
    "BbwSystemModel",
    "CENTRAL_UNIT_REPLICAS",
    "COVERAGE",
    "DEGRADED_MIN_WHEEL_NODES",
    "MODES",
    "MTTF_HORIZON_HOURS",
    "NODE_TYPES",
    "OMISSION_REPAIR_RATE",
    "PERMANENT_FAULT_RATE",
    "P_FAIL_SILENT",
    "P_OMISSION",
    "P_TEM_MASKED",
    "RESTART_REPAIR_RATE",
    "RedundancyPoint",
    "STATE_FAILED",
    "STATE_OK",
    "STATE_OMISSION",
    "STATE_PERMANENT",
    "STATE_RESTART",
    "TRANSIENT_FAULT_RATE",
    "WHEEL_NODE_COUNT",
    "build_all_configurations",
    "build_bbw_system",
    "build_central_unit",
    "build_cu_fs",
    "build_cu_nlft",
    "build_redundant_subsystem",
    "build_wheel_subsystem",
    "nodes_needed",
    "redundancy_study",
    "up_states",
    "build_wn_fs_degraded",
    "build_wn_fs_full",
    "build_wn_fs_full_rbd",
    "build_wn_nlft_degraded",
    "build_wn_nlft_full",
]
