"""Markov models of the duplex central unit (Figures 6 and 7).

The central unit (CU) is a duplex configuration in active replication: two
nodes execute the brake-distribution control in parallel; under the
fail-silent assumption the service survives as long as at least one node
delivers results.

State naming follows the paper:

======  ==========================================================
state   meaning
======  ==========================================================
``0``   both nodes working correctly
``1``   one node permanently down, the other provides service
``2``   one node temporarily down (fail-silent restart in progress)
``3``   one node recovering from an omission failure (NLFT only)
``F``   absorbing failure: both nodes down, or an undetected error
======  ==========================================================

Transition rates are derived in DESIGN.md Section 4; the key NLFT benefit is
visible in the single-node states (1, 2, 3): the surviving NLFT node still
masks transients with probability ``C_D * P_T``, so its failure rate is
``lambda_p + lambda_t (1 - C_D P_T)`` instead of the full ``lambda_p +
lambda_t`` of a fail-silent node.
"""

from __future__ import annotations

from ..reliability import MarkovChain
from .parameters import BbwParameters

#: Canonical state names.
STATE_OK = "0"
STATE_PERMANENT = "1"
STATE_RESTART = "2"
STATE_OMISSION = "3"
STATE_FAILED = "F"


def build_cu_fs(params: BbwParameters) -> MarkovChain:
    """Central unit with two fail-silent nodes (paper Figure 6).

    From state 0, a *detected* permanent fault in either node (rate
    ``2 lambda_p C_D``) leads to state 1; a detected transient (rate
    ``2 lambda_t C_D``) silences the node for a 3 s restart (state 2);
    any undetected error (rate ``2 lambda (1 - C_D)``) is assumed to fail the
    whole system.  With only one node left (states 1, 2) every further fault,
    detected or not, is fatal (rate ``lambda_p + lambda_t``).
    """
    chain = MarkovChain([STATE_OK, STATE_PERMANENT, STATE_RESTART, STATE_FAILED], name="CU-FS")
    chain.set_initial(STATE_OK)
    chain.add_transition(
        STATE_OK, STATE_PERMANENT, 2.0 * params.lambda_p * params.coverage,
        label="detected permanent fault in one of two nodes",
    )
    chain.add_transition(
        STATE_OK, STATE_RESTART, 2.0 * params.lambda_t * params.coverage,
        label="detected transient fault -> fail-silent restart",
    )
    chain.add_transition(
        STATE_OK, STATE_FAILED, 2.0 * params.uncovered_rate,
        label="non-covered error (pessimistic: system failure)",
    )
    chain.add_transition(
        STATE_PERMANENT, STATE_FAILED, params.fs_failure_rate,
        label="any fault in the remaining node",
    )
    chain.add_transition(
        STATE_RESTART, STATE_OK, params.mu_restart,
        label="restart + diagnosis + reintegration complete",
    )
    chain.add_transition(
        STATE_RESTART, STATE_FAILED, params.fs_failure_rate,
        label="any fault in the working node during partner restart",
    )
    return chain


def build_cu_nlft(params: BbwParameters) -> MarkovChain:
    """Central unit with two light-weight NLFT nodes (paper Figure 7).

    Detected transients now split three ways: masked by TEM (probability
    ``P_T``, no state change), omission failure (``P_OM``, state 3, repaired
    at ``mu_OM``), or fail-silent failure (``P_FS``, state 2, repaired at
    ``mu_R``).  In the single-node states the survivor keeps masking
    transients, which is where the dependability gain over FS nodes arises.
    """
    chain = MarkovChain(
        [STATE_OK, STATE_PERMANENT, STATE_RESTART, STATE_OMISSION, STATE_FAILED],
        name="CU-NLFT",
    )
    chain.set_initial(STATE_OK)
    detected_transient = 2.0 * params.lambda_t * params.coverage
    chain.add_transition(
        STATE_OK, STATE_PERMANENT, 2.0 * params.lambda_p * params.coverage,
        label="detected permanent fault in one of two nodes",
    )
    chain.add_transition(
        STATE_OK, STATE_RESTART, detected_transient * params.p_fail_silent,
        label="detected transient -> fail-silent failure (kernel error)",
    )
    chain.add_transition(
        STATE_OK, STATE_OMISSION, detected_transient * params.p_omission,
        label="detected transient -> omission failure (no time to recover)",
    )
    chain.add_transition(
        STATE_OK, STATE_FAILED, 2.0 * params.uncovered_rate,
        label="non-covered error (pessimistic: system failure)",
    )
    lone_node_rate = params.nlft_unmasked_rate
    for state, repair, mu in (
        (STATE_PERMANENT, None, None),
        (STATE_RESTART, STATE_OK, params.mu_restart),
        (STATE_OMISSION, STATE_OK, params.mu_omission),
    ):
        chain.add_transition(
            state, STATE_FAILED, lone_node_rate,
            label="unmasked fault in the remaining NLFT node",
        )
        if repair is not None:
            chain.add_transition(state, repair, mu, label="repair/reintegration")
    return chain


def build_central_unit(params: BbwParameters, node_type: str) -> MarkovChain:
    """Dispatch on node type: ``"fs"`` (Figure 6) or ``"nlft"`` (Figure 7)."""
    if node_type == "fs":
        return build_cu_fs(params)
    if node_type == "nlft":
        return build_cu_nlft(params)
    raise ValueError(f"unknown node type {node_type!r}; expected 'fs' or 'nlft'")
