"""System-level brake-by-wire model (Figure 5) and its headline measures.

The overall system is composed hierarchically, as in the paper: the central
unit and wheel-node subsystems are each solved as Markov chains, and a
two-input OR fault tree combines them (the BBW system fails if either
subsystem fails).  Because the subsystems are assumed statistically
independent, the tree evaluates to ``R_sys(t) = R_CU(t) * R_WN(t)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..reliability import (
    MarkovChain,
    OrGate,
    markov_event,
    markov_reliability_fn,
    mttf_from_reliability,
)
from ..reliability.faulttree import FaultTreeNode
from ..units import HOURS_PER_YEAR
from .central_unit import build_central_unit
from .parameters import BbwParameters
from .wheel_nodes import build_wheel_subsystem

NODE_TYPES = ("fs", "nlft")
MODES = ("full", "degraded")

#: A practical integration horizon for BBW MTTFs (hours).  The slowest
#: configuration (NLFT, degraded) has MTTF around 1.9 years; 80 years is far
#: beyond the point where R(t) is numerically zero.
MTTF_HORIZON_HOURS = 80.0 * HOURS_PER_YEAR


@dataclasses.dataclass
class BbwSystemModel:
    """A fully assembled BBW reliability model for one configuration.

    Attributes
    ----------
    node_type:
        ``"fs"`` or ``"nlft"``.
    mode:
        ``"full"`` or ``"degraded"`` functionality requirement.
    central_unit / wheel_subsystem:
        The underlying Markov chains (Figures 6/7 and 8-11).
    fault_tree:
        The Figure 5 OR composition over the two subsystems.
    """

    node_type: str
    mode: str
    params: BbwParameters
    central_unit: MarkovChain
    wheel_subsystem: MarkovChain
    fault_tree: FaultTreeNode
    _cu_reliability: Callable[[float], float]
    _wn_reliability: Callable[[float], float]

    # ------------------------------------------------------------------
    def reliability(self, t: float) -> float:
        """System reliability R(t) at *t* hours."""
        return self.fault_tree.reliability(t)

    def subsystem_reliability(self, t: float) -> Dict[str, float]:
        """Reliability of each subsystem at *t* (for Figure 13)."""
        return {
            "central_unit": self._cu_reliability(t),
            "wheel_subsystem": self._wn_reliability(t),
        }

    def subsystem_reliability_curves(
        self, times: Sequence[float]
    ) -> Dict[str, List[float]]:
        """Per-subsystem R(t) over a whole time grid — one grid solve each.

        Delegates to
        :meth:`repro.reliability.ctmc.MarkovChain.transient_distributions`,
        so a uniform grid costs one matrix exponential on the fast path
        instead of one per point; the reference path solves point by point.
        """
        return {
            "central_unit": _chain_reliability_curve(self.central_unit, times),
            "wheel_subsystem": _chain_reliability_curve(self.wheel_subsystem, times),
        }

    def reliability_curve(self, times: Sequence[float]) -> List[float]:
        """System R(t) over a whole time grid (two grid solves).

        The Figure 5 fault tree is a two-input OR over independent
        subsystems, so ``R_sys(t) = R_CU(t) * R_WN(t)`` — the identical
        composition :meth:`reliability` evaluates point by point.
        """
        curves = self.subsystem_reliability_curves(times)
        return [
            cu * wn
            for cu, wn in zip(curves["central_unit"], curves["wheel_subsystem"])
        ]

    def mttf_hours(self) -> float:
        """System MTTF in hours (numerical integration of R)."""
        return mttf_from_reliability(self.reliability, horizon=MTTF_HORIZON_HOURS)

    def mttf_years(self) -> float:
        """System MTTF in years (the unit the paper quotes)."""
        return self.mttf_hours() / HOURS_PER_YEAR

    def subsystem_mttf_hours(self) -> Dict[str, float]:
        """Exact (fundamental-matrix) MTTF of each Markov subsystem."""
        return {
            "central_unit": self.central_unit.mttf(),
            "wheel_subsystem": self.wheel_subsystem.mttf(),
        }

    def describe(self) -> str:
        """Readable summary of the configuration."""
        return (
            f"BBW[{self.node_type.upper()}, {self.mode}] "
            f"({self.params.describe()})"
        )


def _chain_reliability_curve(
    chain: MarkovChain, times: Sequence[float]
) -> List[float]:
    """R(t) of one subsystem chain over a grid via one batched solve."""
    failure_states = chain.absorbing_states()
    indices = [chain.state_index(s) for s in failure_states]
    probs = chain.transient_distributions(times)
    return [float(1.0 - row[indices].sum()) for row in probs]


def build_bbw_system(
    params: BbwParameters, node_type: str, mode: str
) -> BbwSystemModel:
    """Assemble the hierarchical BBW model for one configuration.

    Parameters
    ----------
    params:
        The rate/coverage record (use ``BbwParameters.paper()`` for the
        published study).
    node_type:
        ``"fs"`` for conventional fail-silent nodes, ``"nlft"`` for
        light-weight NLFT nodes.
    mode:
        ``"full"`` (all four wheel nodes required) or ``"degraded"``
        (three of four suffice).
    """
    if node_type not in NODE_TYPES:
        raise ConfigurationError(f"node_type must be one of {NODE_TYPES}, got {node_type!r}")
    if mode not in MODES:
        raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
    central_unit = build_central_unit(params, node_type)
    wheel_subsystem = build_wheel_subsystem(params, node_type, mode)
    cu_event = markov_event(central_unit, name="central-unit-failure")
    wn_event = markov_event(wheel_subsystem, name="wheel-subsystem-failure")
    tree = OrGate([cu_event, wn_event], name="bbw-system-failure")
    return BbwSystemModel(
        node_type=node_type,
        mode=mode,
        params=params,
        central_unit=central_unit,
        wheel_subsystem=wheel_subsystem,
        fault_tree=tree,
        _cu_reliability=markov_reliability_fn(central_unit),
        _wn_reliability=markov_reliability_fn(wheel_subsystem),
    )


def build_all_configurations(
    params: BbwParameters,
) -> Dict[Tuple[str, str], BbwSystemModel]:
    """All four (node_type, mode) configurations of the study."""
    return {
        (node_type, mode): build_bbw_system(params, node_type, mode)
        for node_type in NODE_TYPES
        for mode in MODES
    }
