"""reprolint — static analysis for determinism, seeds and context hygiene.

The repo's correctness story rests on invariants nothing used to enforce
mechanically: bit-identical checkpoint/resume needs **no wall-clock and no
unseeded randomness** in simulation code; the fast-vs-reference
differential gates need **no iteration order leaks** on result paths; the
context-scoped runtime needs **no module-level mutable state** and **no
process-default singleton access** from library code.  This package
checks those invariants at lint time — masking determinism faults before
they escalate to flaky golden-fixture failures, the same
detect-early-mask-early stance the source paper takes for node failures.

Layout:

* :mod:`~repro.analysis.findings` — the :class:`Finding` record;
* :mod:`~repro.analysis.base` — :class:`Checker` base, import resolution;
* :mod:`~repro.analysis.registry` — the plugin registry
  (:func:`register_checker`);
* :mod:`~repro.analysis.checkers` — the built-in rules (DET001/002/003,
  CTX001/002, SIM001);
* :mod:`~repro.analysis.suppressions` — ``# reprolint: disable=RULE --
  reason`` comments (reason mandatory);
* :mod:`~repro.analysis.baseline` — the committed ratchet
  (``analysis/baseline.json``);
* :mod:`~repro.analysis.engine` — discovery, per-file parallel analysis;
* :mod:`~repro.analysis.report` / :mod:`~repro.analysis.cli` — output and
  the ``python -m repro.analysis`` entry point.

Run ``python -m repro.analysis --list-rules`` for the rule catalogue.
"""

from __future__ import annotations

from .base import Checker, ImportMap, ModuleSource, path_in_scope  # noqa: F401
from .baseline import Baseline, BaselineEntry, BaselineError  # noqa: F401
from .cli import main  # noqa: F401
from .engine import (  # noqa: F401
    AnalysisResult,
    analyze_file,
    changed_files,
    discover_files,
    find_repo_root,
    run_analysis,
)
from .findings import ERROR, WARNING, Finding, sort_findings  # noqa: F401
from .registry import (  # noqa: F401
    all_rule_ids,
    build_checkers,
    checker_rule_ids,
    get_checker,
    is_known_rule,
    register_checker,
    rule_descriptions,
)
from .report import (  # noqa: F401
    REPORT_SCHEMA,
    parse_json_report,
    render_json,
    render_json_dict,
    render_text,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "ERROR",
    "Finding",
    "ImportMap",
    "ModuleSource",
    "REPORT_SCHEMA",
    "WARNING",
    "all_rule_ids",
    "analyze_file",
    "build_checkers",
    "changed_files",
    "checker_rule_ids",
    "discover_files",
    "find_repo_root",
    "get_checker",
    "is_known_rule",
    "main",
    "parse_json_report",
    "path_in_scope",
    "register_checker",
    "render_json",
    "render_json_dict",
    "render_text",
    "rule_descriptions",
    "run_analysis",
    "sort_findings",
]
