"""reprolint — static analysis for determinism, seeds and context hygiene.

The repo's correctness story rests on invariants nothing used to enforce
mechanically: bit-identical checkpoint/resume needs **no wall-clock and no
unseeded randomness** in simulation code; the fast-vs-reference
differential gates need **no iteration order leaks** on result paths; the
context-scoped runtime needs **no module-level mutable state** and **no
process-default singleton access** from library code.  This package
checks those invariants at lint time — masking determinism faults before
they escalate to flaky golden-fixture failures, the same
detect-early-mask-early stance the source paper takes for node failures.

Beyond per-file rules, the **whole-program layer** links every module
under ``src/repro`` into a project index (module graph + approximate
call graph) and enforces the *cross-module* invariants: call chains must
not reach nondeterminism sinks (DET004), RNG seeds must descend from
``derive_seed`` lineage (SEED001), nothing unpicklable may cross a
worker spawn boundary (PKL001), and the scalar/batch twin APIs stay in
lock-step (PAR001).  Per-file results are cached by content hash, so a
warm run re-analyses only what changed — and is bit-identical to a cold
run.

Layout:

* :mod:`~repro.analysis.findings` — the :class:`Finding` record;
* :mod:`~repro.analysis.base` — :class:`Checker` base, import resolution;
* :mod:`~repro.analysis.nondet` — shared nondeterminism-sink tables;
* :mod:`~repro.analysis.callgraph` — module summaries, module graph,
  call graph (:class:`ProjectIndex`);
* :mod:`~repro.analysis.project` — :class:`ProjectChecker` base for
  whole-program rules;
* :mod:`~repro.analysis.registry` — the plugin registry
  (:func:`register_checker`, :func:`register_project_checker`);
* :mod:`~repro.analysis.checkers` — the built-in rules (DET001/002/003/
  004, CTX001/002, SIM001, SEED001, PKL001, PAR001);
* :mod:`~repro.analysis.suppressions` — ``# reprolint: disable=RULE --
  reason`` comments (reason mandatory);
* :mod:`~repro.analysis.baseline` — the committed ratchet
  (``analysis/baseline.json``, ``max_entries`` pawl);
* :mod:`~repro.analysis.cache` — incremental per-file result cache;
* :mod:`~repro.analysis.engine` — discovery, incremental parallel
  analysis, the project pass;
* :mod:`~repro.analysis.report` / :mod:`~repro.analysis.cli` — text,
  JSON and SARIF output and the ``python -m repro.analysis`` entry point.

Run ``python -m repro.analysis --list-rules`` for the rule catalogue and
``--explain RULE`` for any rule's invariant, violating example and fix.
"""

from __future__ import annotations

from .base import Checker, ImportMap, ModuleSource, path_in_scope  # noqa: F401
from .baseline import Baseline, BaselineEntry, BaselineError  # noqa: F401
from .cache import AnalysisCache, content_sha  # noqa: F401
from .callgraph import (  # noqa: F401
    FunctionFacts,
    ModuleSummary,
    ProjectIndex,
    extract_summary,
    module_name_for,
)
from .cli import main  # noqa: F401
from .engine import (  # noqa: F401
    AnalysisResult,
    analyze_file,
    build_project_index,
    changed_files,
    discover_files,
    find_repo_root,
    run_analysis,
)
from .findings import ERROR, WARNING, Finding, sort_findings  # noqa: F401
from .project import ProjectChecker  # noqa: F401
from .registry import (  # noqa: F401
    all_rule_ids,
    build_checkers,
    build_project_checkers,
    checker_rule_ids,
    explain_rule,
    get_checker,
    get_project_checker,
    is_known_rule,
    project_rule_ids,
    register_checker,
    register_project_checker,
    rule_descriptions,
)
from .report import (  # noqa: F401
    REPORT_SCHEMA,
    parse_json_report,
    render_json,
    render_json_dict,
    render_sarif,
    render_sarif_dict,
    render_text,
)

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "ERROR",
    "Finding",
    "FunctionFacts",
    "ImportMap",
    "ModuleSource",
    "ModuleSummary",
    "ProjectChecker",
    "ProjectIndex",
    "REPORT_SCHEMA",
    "WARNING",
    "all_rule_ids",
    "analyze_file",
    "build_checkers",
    "build_project_checkers",
    "build_project_index",
    "changed_files",
    "checker_rule_ids",
    "content_sha",
    "discover_files",
    "explain_rule",
    "extract_summary",
    "find_repo_root",
    "get_checker",
    "get_project_checker",
    "is_known_rule",
    "main",
    "module_name_for",
    "parse_json_report",
    "path_in_scope",
    "project_rule_ids",
    "register_checker",
    "register_project_checker",
    "render_json",
    "render_json_dict",
    "render_sarif",
    "render_sarif_dict",
    "render_text",
    "rule_descriptions",
    "run_analysis",
    "sort_findings",
]
