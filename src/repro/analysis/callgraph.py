"""Whole-program facts: per-module summaries, module graph, call graph.

Per-file linting (PR 5) sees one AST at a time; the invariants PRs 6–9
added are *cross-module* — RNG lineage flows through ``derive_seed``
call chains, picklability is a property of what a spawn boundary can
reach, and the scalar/batch twin paths live in different files.  This
module extracts everything those rules need into a compact,
JSON-serialisable :class:`ModuleSummary` per file, and links the
summaries into a :class:`ProjectIndex`:

* a **module graph** (who imports whom, relative imports resolved
  against the package layout) whose reverse-dependency closure drives
  incremental re-analysis — touching ``harness/seeds.py`` re-analyses
  everything that can observe the change;
* an approximate **call graph**: lexically resolved call targets
  (imported names, module-level functions, ``self.method()`` within a
  class), with re-exports through ``__init__.py`` chased at link time;
* per-function **fact lists** — nondeterminism sinks, RNG
  constructions with seed-lineage classification, nested
  callables/closures, and per-argument shapes at call sites — the raw
  material of DET004/SEED001/PKL001/PAR001.

Resolution is deliberately lexical (no dataflow through containers or
attributes of arbitrary objects): a call the extractor cannot resolve
is a call the rules stay silent about, which is the right fidelity for
lint — an obfuscated call site is a code smell the reviewer catches.

Summaries carry :data:`SUMMARY_VERSION` and round-trip through plain
dicts, so the incremental cache (:mod:`repro.analysis.cache`) can store
them keyed by content hash: a warm run rebuilds the whole project index
without parsing a single unchanged file.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .nondet import is_rng_constructor, sink_kind

#: Bump when the summary shape or extraction semantics change: a cache
#: written by an older extractor is invalidated wholesale.
SUMMARY_VERSION = 1

#: The pseudo-function holding module-level (import-time) statements.
MODULE_BODY = "<module>"


# ----------------------------------------------------------------------
# Name resolution (absolute + relative imports, local definitions)
# ----------------------------------------------------------------------
def module_name_for(relpath: str) -> Optional[str]:
    """Dotted module name of a repo-relative source path, or None.

    ``src/repro/harness/seeds.py`` → ``repro.harness.seeds``;
    ``src/repro/obs/__init__.py`` → ``repro.obs``.  Paths outside
    ``src/`` have no importable name and return None.
    """
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(p.isidentifier() for p in parts):
        return None
    return ".".join(parts)


class _Scope:
    """Lexical alias table for one module: imports plus local definitions.

    Extends the per-file :class:`repro.analysis.base.ImportMap` with the
    two resolutions whole-program analysis needs: *relative* imports
    (``from ..base import Checker`` resolved against the module's own
    package) and *local* module-level ``def``/``class`` names (so a call
    to a sibling function becomes an edge, not a blind spot).
    """

    def __init__(self, module: str, is_package: bool, tree: ast.Module) -> None:
        self.module = module
        #: local name -> dotted target (import aliases, absolute form)
        self.aliases: Dict[str, str] = {}
        #: module-level def/class name -> qualified name
        self.local_defs: Dict[str, str] = {}
        #: dotted module paths this module depends on (pre-link candidates)
        self.dep_candidates: Set[str] = set()
        #: module-level assigned names (constants; SEED001 lineage check)
        self.module_names: Set[str] = set()
        base = module.split(".") if is_package else module.split(".")[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    full = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = full
                    self.dep_candidates.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = self._import_from_base(node, base)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{target}.{alias.name}"
                    self.dep_candidates.add(target)
                    self.dep_candidates.add(f"{target}.{alias.name}")
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.local_defs[stmt.name] = f"{module}.{stmt.name}"
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self.module_names.add(stmt.target.id)

    @staticmethod
    def _import_from_base(node: ast.ImportFrom, base: List[str]) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative: level 1 is the containing package, each extra level
        # strips one component.  Beyond the top of the package → None.
        if node.level - 1 > len(base):
            return None
        anchor = base[: len(base) - (node.level - 1)]
        parts = anchor + (node.module.split(".") if node.module else [])
        return ".".join(parts) if parts else None

    def resolve(self, node: ast.expr, class_name: Optional[str] = None) -> Optional[str]:
        """Dotted target of a ``Name``/``Attribute`` chain, or None.

        ``self.method`` / ``cls.method`` resolve into *class_name* when
        given — the one-step heuristic that links intra-class calls.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id in ("self", "cls") and class_name is not None and len(parts) == 1:
            return f"{self.module}.{class_name}.{parts[0]}"
        head = self.aliases.get(node.id) or self.local_defs.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Per-function facts
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FunctionFacts:
    """Everything the project rules need to know about one function.

    ``name`` is the in-module suffix (``f``, ``Class.m`` or
    ``<module>``); the qualified name is ``{module}.{name}``.  All lists
    are in source order, so linked results are deterministic.
    """

    name: str
    line: int = 1
    #: signature shape (PAR001): see :func:`_signature_of`.
    signature: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: resolved call sites: {target, line, args: [argkind], kwargs: {name: argkind}}
    calls: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: direct nondeterminism sinks: {sink, line, kind}
    sinks: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: RNG constructions: {target, line, seed, bind} — seed lineage class
    rngs: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: nested callables: {kind, name, line, captures_rng: [names]}
    closures: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionFacts":
        return cls(**data)


@dataclasses.dataclass
class ModuleSummary:
    """The cached whole-program facts of one source file."""

    relpath: str
    module: Optional[str]
    #: dotted module-path candidates this file imports (linked later)
    dep_candidates: List[str] = dataclasses.field(default_factory=list)
    #: module-level re-export table: local name -> dotted target
    exports: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: function suffix -> facts
    functions: Dict[str, Dict[str, Any]] = dataclasses.field(default_factory=dict)
    #: line -> rule ids with a valid inline suppression on that line
    suppressed: Dict[str, List[str]] = dataclasses.field(default_factory=dict)

    def facts(self) -> Iterator[FunctionFacts]:
        for data in self.functions.values():
            yield FunctionFacts.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(**data)


def _signature_of(node: ast.FunctionDef) -> Dict[str, Any]:
    """Signature shape compared by PAR001 (names/kinds/default counts)."""
    args = node.args
    return {
        "posonly": [a.arg for a in args.posonlyargs],
        "args": [a.arg for a in args.args],
        "vararg": args.vararg.arg if args.vararg else None,
        "kwonly": [a.arg for a in args.kwonlyargs],
        "kwarg": args.kwarg.arg if args.kwarg else None,
        "defaults": len(args.defaults),
        "kwdefaults": [
            a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults) if d is not None
        ],
    }


def _free_names(node: ast.AST) -> Set[str]:
    """Names a nested callable reads but does not bind (approximate)."""
    bound: Set[str] = set()
    loaded: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            bound.add(a.arg)
        for a in (args.vararg, args.kwarg):
            if a is not None:
                bound.add(a.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, ast.Load):
                loaded.add(sub.id)
            else:
                bound.add(sub.id)
    return loaded - bound


class _FunctionExtractor:
    """Collects the facts of one top-level function (nested defs included).

    Calls, sinks and RNG constructions inside nested functions and
    lambdas are attributed to the *enclosing* top-level function — a
    nested helper that reads the clock taints its owner — while the
    nested callables themselves are recorded as closures for the
    spawn-boundary rules.
    """

    def __init__(
        self, scope: _Scope, facts: FunctionFacts, class_name: Optional[str]
    ) -> None:
        self.scope = scope
        self.facts = facts
        self.class_name = class_name
        #: trusted parameter names (outer function plus any nested level)
        self.params: Set[str] = set()
        #: local name -> kind ("lambda" | "localdef" | "open" | "rng" | "seed")
        self.bindings: Dict[str, str] = {}
        self._nested: List[ast.AST] = []

    # -- seed-lineage classification -----------------------------------
    def _classify_seed(self, expr: Optional[ast.expr]) -> str:
        """Lineage class of an RNG constructor's seed expression.

        ``sanctioned`` — contains a ``derive_seed`` call or reads the
        context root RNG/seed; ``derived`` — built from parameters,
        attributes or locals (the caller supplies lineage);
        ``literal`` — a bare constant; ``global:<name>`` — a
        module-level or imported constant (a hidden fixed stream).
        """
        if expr is None:
            return "unseeded"
        has_const = has_trusted = False
        global_name: Optional[str] = None
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                target = self.scope.resolve(node.func, self.class_name)
                if (target and target.rsplit(".", 1)[-1] == "derive_seed") or (
                    isinstance(node.func, ast.Name) and node.func.id == "derive_seed"
                ):
                    return "sanctioned"
            elif isinstance(node, ast.Attribute):
                if node.attr in ("root_seed", "rng", "root_rng"):
                    return "sanctioned"
        for node in ast.walk(expr):
            if isinstance(node, ast.Constant):
                has_const = True
            elif isinstance(node, ast.Attribute):
                has_trusted = True  # lineage established where the attr was set
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in self.params or self.bindings.get(node.id) == "seed":
                    has_trusted = True
                elif (
                    node.id in self.scope.aliases
                    or node.id in self.scope.local_defs
                    or node.id in self.scope.module_names
                ):
                    global_name = node.id
                else:
                    has_trusted = True  # local computation; trusted (lexical limit)
        if has_trusted:
            return "derived"
        if global_name is not None:
            return f"global:{global_name}"
        if has_const:
            return "literal"
        return "derived"

    # -- argument shapes at call sites ---------------------------------
    def _argkind(self, node: ast.expr) -> Dict[str, Any]:
        kind: Dict[str, Any] = {"line": getattr(node, "lineno", 0)}
        if isinstance(node, ast.Lambda):
            kind["kind"] = "lambda"
        elif isinstance(node, ast.GeneratorExp):
            kind["kind"] = "genexpr"
        elif isinstance(node, ast.Call):
            target = self.scope.resolve(node.func, self.class_name)
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                kind["kind"] = "open"
            else:
                kind.update(kind="call", target=target)
        elif isinstance(node, ast.Name):
            bound = self.bindings.get(node.id)
            if bound in ("lambda", "localdef", "open"):
                kind.update(kind=bound, name=node.id)
            elif node.id in self.scope.local_defs:
                kind.update(kind="ref", target=self.scope.local_defs[node.id])
            elif node.id in self.scope.aliases:
                kind.update(kind="ref", target=self.scope.aliases[node.id])
            else:
                kind.update(kind="name", name=node.id)
        elif isinstance(node, ast.Constant):
            kind["kind"] = "const"
        else:
            kind["kind"] = "other"
        return kind

    # -- the walk ------------------------------------------------------
    def extract(self, body: Sequence[ast.stmt], params: Set[str]) -> None:
        self.params = set(params)
        for stmt in body:
            self._visit(stmt)
        # Closure captures are judged against the final binding map, so a
        # helper defined before the RNG it captures is still caught.
        for node in self._nested:
            rng_captures = sorted(
                name for name in _free_names(node)
                if self.bindings.get(name) == "rng"
            )
            self.facts.closures.append({
                "kind": "lambda" if isinstance(node, ast.Lambda) else "localdef",
                "name": getattr(node, "name", "<lambda>"),
                "line": node.lineno,
                "captures_rng": rng_captures,
            })

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.bindings[node.name] = "localdef"
            self._nested.append(node)
            inner = {
                a.arg for a in (
                    *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
                )
            }
            self.params |= inner
            for stmt in node.body:
                self._visit(stmt)
            return
        if isinstance(node, ast.Lambda):
            self._nested.append(node)
            self._visit(node.body)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            self._bind(node.targets[0].id, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None and isinstance(
            node.target, ast.Name
        ):
            self._bind(node.target.id, node.value)
        if isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _bind(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Lambda):
            self.bindings[name] = "lambda"
            return
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name) and value.func.id == "open":
                self.bindings[name] = "open"
                return
            target = self.scope.resolve(value.func, self.class_name)
            if target is not None:
                if is_rng_constructor(target):
                    self.bindings[name] = "rng"
                    return
                if target.rsplit(".", 1)[-1] == "derive_seed":
                    self.bindings[name] = "seed"
                    return
        self.bindings.pop(name, None)

    def _record_call(self, node: ast.Call) -> None:
        target = self.scope.resolve(node.func, self.class_name)
        if target is None:
            return
        kind = sink_kind(target, node)
        if kind is not None:
            self.facts.sinks.append(
                {"sink": target, "line": node.lineno, "kind": kind}
            )
        if is_rng_constructor(target):
            seed_expr: Optional[ast.expr] = None
            if node.args:
                seed_expr = node.args[0]
            else:
                seed_expr = next(
                    (k.value for k in node.keywords if k.arg == "seed"), None
                )
            self.facts.rngs.append({
                "target": target,
                "line": node.lineno,
                "seed": self._classify_seed(seed_expr),
            })
        self.facts.calls.append({
            "target": target,
            "line": node.lineno,
            "args": [self._argkind(a) for a in node.args],
            "kwargs": {
                k.arg: self._argkind(k.value)
                for k in node.keywords if k.arg is not None
            },
        })


# ----------------------------------------------------------------------
# Module extraction
# ----------------------------------------------------------------------
def extract_summary(relpath: str, source: str, tree: ast.Module) -> ModuleSummary:
    """Build the :class:`ModuleSummary` of one parsed file."""
    module = module_name_for(relpath)
    summary = ModuleSummary(relpath=relpath, module=module)
    if module is None:
        return summary
    is_package = relpath.endswith("/__init__.py")
    scope = _Scope(module, is_package, tree)
    summary.dep_candidates = sorted(scope.dep_candidates)
    summary.exports = dict(sorted(scope.aliases.items()))

    def extract_into(
        name: str, line: int, node: Optional[ast.FunctionDef],
        body: Sequence[ast.stmt], class_name: Optional[str],
    ) -> None:
        facts = FunctionFacts(name=name, line=line)
        if node is not None:
            facts.signature = _signature_of(node)
        extractor = _FunctionExtractor(scope, facts, class_name)
        params = set()
        if node is not None:
            args = node.args
            params = {
                a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            }
            for a in (args.vararg, args.kwarg):
                if a is not None:
                    params.add(a.arg)
        extractor.extract(body, params)
        summary.functions[name] = facts.to_dict()

    module_body: List[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_into(stmt.name, stmt.lineno, stmt, stmt.body, None)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract_into(
                        f"{stmt.name}.{item.name}", item.lineno,
                        item, item.body, stmt.name,
                    )
                else:
                    module_body.append(item)
        else:
            module_body.append(stmt)
    if module_body:
        extract_into(MODULE_BODY, module_body[0].lineno, None, module_body, None)

    from .suppressions import parse_suppressions  # local: avoids import cycle

    suppressions, _problems = parse_suppressions(source, relpath)
    for sup in suppressions:
        bucket = summary.suppressed.setdefault(str(sup.line), [])
        for rule in sup.rules:
            if rule not in bucket:
                bucket.append(rule)
    return summary


# ----------------------------------------------------------------------
# The linked index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Linked whole-program view over the per-module summaries.

    Construction resolves dep candidates against the known module set
    (module graph), indexes every function by qualified name, and keeps
    the export tables for re-export chasing.  All traversals are over
    sorted structures, so rule output is machine-independent.
    """

    #: Re-export chains longer than this are cycles; resolution stops.
    _MAX_CHASE = 16

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: Dict[str, ModuleSummary] = {
            s.relpath: s for s in sorted(summaries, key=lambda s: s.relpath)
        }
        self.by_module: Dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries.values() if s.module
        }
        self._functions: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for s in self.summaries.values():
            if s.module is None:
                continue
            for suffix, facts in s.functions.items():
                self._functions[f"{s.module}.{suffix}"] = (s.relpath, facts)
        #: module -> modules it imports (within the project)
        self.deps: Dict[str, Set[str]] = {}
        known = set(self.by_module)
        for s in self.summaries.values():
            if s.module is None:
                continue
            edges = set()
            for candidate in s.dep_candidates:
                target = self._longest_known_prefix(candidate, known)
                if target is not None and target != s.module:
                    edges.add(target)
            self.deps[s.module] = edges
        self.rdeps: Dict[str, Set[str]] = {m: set() for m in self.deps}
        for module, targets in self.deps.items():
            for target in targets:
                self.rdeps.setdefault(target, set()).add(module)
        self._known: Set[str] = set(self.by_module)

    @staticmethod
    def _longest_known_prefix(dotted: str, known: Set[str]) -> Optional[str]:
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in known:
                return prefix
        return None

    # -- function lookup ----------------------------------------------
    def functions(self) -> Iterator[Tuple[str, str, FunctionFacts]]:
        """``(qualname, relpath, facts)`` for every function, sorted."""
        for qualname in sorted(self._functions):
            relpath, data = self._functions[qualname]
            yield qualname, relpath, FunctionFacts.from_dict(data)

    def lookup(self, qualname: str) -> Optional[Tuple[str, FunctionFacts]]:
        """Find a function by qualified name, chasing re-exports.

        ``repro.analysis.Checker.check`` resolves through
        ``repro.analysis.__init__``'s ``from .base import Checker`` to
        ``repro.analysis.base.Checker.check``.  Cycles and unknown names
        return None.
        """
        name = self.resolve(qualname)
        if name is None:
            return None
        relpath, data = self._functions[name]
        return relpath, FunctionFacts.from_dict(data)

    def canonical(self, qualname: str) -> str:
        """The defining-module name behind *qualname*, chasing re-exports.

        Pure name rewriting: works for classes and constants as well as
        functions (``repro.harness.SupervisorConfig`` →
        ``repro.harness.supervisor.SupervisorConfig``).  Chains longer
        than :data:`_MAX_CHASE` (an import cycle) stop where they are.
        """
        current = qualname
        for _ in range(self._MAX_CHASE):
            prefix = self._longest_known_prefix(current, self._known)
            if prefix is None or len(current) <= len(prefix):
                return current
            rest = current[len(prefix) + 1:].split(".")
            exports = self.by_module[prefix].exports
            if rest[0] not in exports:
                return current
            nxt = ".".join([exports[rest[0]], *rest[1:]])
            if nxt == current:
                return current
            current = nxt
        return current

    def resolve(self, qualname: str) -> Optional[str]:
        """Canonical *defined function* behind *qualname*, or None."""
        if qualname in self._functions:
            return qualname
        name = self.canonical(qualname)
        return name if name in self._functions else None

    # -- edges ---------------------------------------------------------
    def call_edges(self, facts: FunctionFacts) -> Iterator[Tuple[str, int]]:
        """Resolved ``(callee_qualname, line)`` pairs of one function."""
        for call in facts.calls:
            target = call.get("target")
            if target is None:
                continue
            resolved = self.resolve(target)
            if resolved is not None:
                yield resolved, call["line"]

    # -- reverse-dependency closure ------------------------------------
    def reverse_closure(self, relpaths: Sequence[str]) -> Set[str]:
        """All project files that can observe a change to *relpaths*.

        The transitive importers of the touched modules, plus the touched
        files themselves.  Non-project paths pass through untouched (the
        caller unions them back into its work list).
        """
        roots = [
            self.summaries[rel].module
            for rel in relpaths
            if rel in self.summaries and self.summaries[rel].module
        ]
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(sorted(self.rdeps.get(module, ())))
        out = set(relpaths)
        for module in sorted(seen):
            out.add(self.by_module[module].relpath)
        return out

    # -- suppressions --------------------------------------------------
    def suppressed(self, relpath: str, line: int, rule: str) -> bool:
        """True when an inline suppression covers (*relpath*, *line*, *rule*)."""
        summary = self.summaries.get(relpath)
        if summary is None:
            return False
        return rule in summary.suppressed.get(str(line), ())
