"""The checker plugin registry.

Rules self-register at import time via the :func:`register_checker` class
decorator, mirroring the experiment registry pattern
(:mod:`repro.experiments.registry`): importing
:mod:`repro.analysis.checkers` populates the registry, and everything else
(the engine, the CLI, ``--list-rules``) resolves rules through it.  Two
rule ids are *engine-owned* (no checker class): the suppression-hygiene
rules SUP001/SUP002, emitted while parsing ``# reprolint:`` comments.
"""

from __future__ import annotations

import inspect
import textwrap
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Type, Union

from .base import Checker
from .findings import ERROR, WARNING
from .project import ProjectChecker

#: rule id -> checker class.  Append-only, id-keyed, populated at import
#: of :mod:`repro.analysis.checkers` — process-global by design, like the
#: experiment registry (baselined under CTX001 with that justification).
_CHECKERS: Dict[str, Type[Checker]] = {}

#: rule id -> project (whole-program) checker class.  Same lifecycle.
_PROJECT_CHECKERS: Dict[str, Type[ProjectChecker]] = {}

#: Engine-owned rules (emitted by the engine itself, not a checker).
#: Read-only mapping, so CTX001 has nothing to object to.
ENGINE_RULES: Mapping[str, Mapping[str, str]] = MappingProxyType({
    "SYNTAX": {
        "title": "file does not parse — analysis impossible",
        "severity": ERROR,
        "invariant": "every source file is analysable",
        "explain": (
            "Emitted when a file raises SyntaxError under the analysing "
            "interpreter.  No other rule runs on an unparsable file, so the "
            "finding is an error regardless of what the file contains.\n\n"
            "Violating example::\n\n"
            "    def f(:\n        pass\n\n"
            "Sanctioned fix: make the file parse (or move deliberately "
            "broken fixtures under tests/analysis/fixtures/, which the "
            "engine never scans)."
        ),
    },
    "SUP001": {
        "title": "malformed suppression: `# reprolint: disable=RULE -- reason` "
                 "needs known rule ids and a non-empty reason",
        "severity": ERROR,
        "invariant": "every exemption is a deliberate, reviewable decision",
        "explain": (
            "Violating example::\n\n"
            "    t = time.time()  # reprolint: disable=DET001\n\n"
            "Sanctioned fix::\n\n"
            "    t = time.time()  # reprolint: disable=DET001 -- host-side "
            "metrics timer, not on a result path"
        ),
    },
    "SUP002": {
        "title": "unused suppression: the disable comment matches no finding on its line",
        "severity": WARNING,
        "invariant": "exemptions are removed when the code they excused is gone",
        "explain": (
            "A `# reprolint: disable=RULE -- reason` comment whose line no "
            "longer produces a RULE finding is a stale exemption: it hides "
            "nothing today but will silently hide a future regression on "
            "that line.\n\n"
            "Violating example::\n\n"
            "    t = compute()  # reprolint: disable=DET001 -- stale reason\n\n"
            "Sanctioned fix: delete the comment (or narrow it to the rules "
            "that still fire)."
        ),
    },
})


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add *cls* to the registry under its ``rule_id``."""
    _register(cls, _CHECKERS, _PROJECT_CHECKERS)
    return cls


def register_project_checker(cls: Type[ProjectChecker]) -> Type[ProjectChecker]:
    """Class decorator: register a whole-program rule under its ``rule_id``."""
    _register(cls, _PROJECT_CHECKERS, _CHECKERS)
    return cls


def _register(cls, table, other_table) -> None:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = table.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule {cls.rule_id} already registered by {existing.__name__}"
        )
    if cls.rule_id in ENGINE_RULES or cls.rule_id in other_table:
        raise ValueError(f"rule {cls.rule_id} is already taken")
    table[cls.rule_id] = cls


def _load_builtins() -> None:
    # Importing the package registers every built-in rule (decorator side
    # effect); idempotent.
    from . import checkers  # noqa: F401


def checker_rule_ids() -> List[str]:
    """Ids of all registered per-file checker rules, sorted."""
    _load_builtins()
    return sorted(_CHECKERS)


def project_rule_ids() -> List[str]:
    """Ids of all registered whole-program rules, sorted."""
    _load_builtins()
    return sorted(_PROJECT_CHECKERS)


def all_rule_ids() -> List[str]:
    """Every known rule id — per-file, project and engine-owned — sorted."""
    _load_builtins()
    return sorted(set(_CHECKERS) | set(_PROJECT_CHECKERS) | set(ENGINE_RULES))


def is_known_rule(rule_id: str) -> bool:
    """True for registered checker rules and engine-owned rules."""
    _load_builtins()
    return (
        rule_id in _CHECKERS
        or rule_id in _PROJECT_CHECKERS
        or rule_id in ENGINE_RULES
    )


def get_checker(rule_id: str) -> Checker:
    """Instantiate the per-file checker registered under *rule_id*."""
    _load_builtins()
    try:
        return _CHECKERS[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {', '.join(all_rule_ids())}")


def get_project_checker(rule_id: str) -> ProjectChecker:
    """Instantiate the whole-program checker registered under *rule_id*."""
    _load_builtins()
    try:
        return _PROJECT_CHECKERS[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {', '.join(all_rule_ids())}")


def build_checkers(rules: Optional[List[str]] = None) -> List[Checker]:
    """Instantiate the selected per-file checkers (default: all), in id order.

    Engine-owned and project ids in *rules* are accepted and skipped here
    (the engine handles them itself); unknown ids raise ``KeyError``.
    """
    _load_builtins()
    selected = checker_rule_ids() if rules is None else rules
    out: List[Checker] = []
    for rule_id in sorted(set(selected)):
        if rule_id in ENGINE_RULES or rule_id in _PROJECT_CHECKERS:
            continue
        out.append(get_checker(rule_id))
    return out


def build_project_checkers(
    rules: Optional[List[str]] = None,
) -> List[ProjectChecker]:
    """Instantiate the selected whole-program checkers (default: all)."""
    _load_builtins()
    selected = project_rule_ids() if rules is None else rules
    out: List[ProjectChecker] = []
    for rule_id in sorted(set(selected)):
        if rule_id in _PROJECT_CHECKERS:
            out.append(get_project_checker(rule_id))
    return out


def rule_descriptions() -> Dict[str, Dict[str, str]]:
    """``rule id -> {title, severity, invariant}`` for every known rule."""
    _load_builtins()
    out: Dict[str, Dict[str, str]] = {}
    for rule_id, cls in {**_CHECKERS, **_PROJECT_CHECKERS}.items():
        out[rule_id] = {
            "title": cls.title,
            "severity": cls.severity,
            "invariant": cls.invariant,
        }
    for rule_id, info in ENGINE_RULES.items():
        out[rule_id] = dict(info)
    return dict(sorted(out.items()))


def explain_rule(rule_id: str) -> str:
    """Human-oriented explanation of a rule for ``--explain RULE``.

    Composes the rule's one-line title, severity, scope, the invariant it
    protects and the checker module's docstring — which by convention
    carries the rationale plus ``Violating example::`` and ``Sanctioned
    fix::`` sections.  Raises ``KeyError`` for unknown rules.
    """
    _load_builtins()
    cls: Union[Type[Checker], Type[ProjectChecker], None] = _CHECKERS.get(
        rule_id
    ) or _PROJECT_CHECKERS.get(rule_id)
    lines: List[str] = []
    if cls is not None:
        instance = cls()
        lines.append(f"{rule_id} [{cls.severity}] — {cls.title}")
        scope = ", ".join(instance.include) or "(everywhere)"
        if instance.exclude:
            scope += f"; except {', '.join(instance.exclude)}"
        kind = "whole-program" if isinstance(instance, ProjectChecker) else "per-file"
        lines.append(f"kind: {kind}    scope: {scope}")
        if cls.invariant:
            lines.append(f"protects: {cls.invariant}")
        if cls.hint:
            lines.append(f"fix: {cls.hint}")
        doc = inspect.getdoc(inspect.getmodule(cls))
        if doc:
            lines.append("")
            lines.append(textwrap.dedent(doc).strip())
        return "\n".join(lines)
    if rule_id in ENGINE_RULES:
        info = ENGINE_RULES[rule_id]
        lines.append(f"{rule_id} [{info['severity']}] — {info['title']}")
        lines.append("kind: engine-owned (emitted while parsing files/suppressions)")
        lines.append(f"protects: {info['invariant']}")
        if "explain" in info:
            lines.append("")
            lines.append(info["explain"])
        return "\n".join(lines)
    raise KeyError(f"unknown rule {rule_id!r}; known: {', '.join(all_rule_ids())}")
