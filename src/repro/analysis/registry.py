"""The checker plugin registry.

Rules self-register at import time via the :func:`register_checker` class
decorator, mirroring the experiment registry pattern
(:mod:`repro.experiments.registry`): importing
:mod:`repro.analysis.checkers` populates the registry, and everything else
(the engine, the CLI, ``--list-rules``) resolves rules through it.  Two
rule ids are *engine-owned* (no checker class): the suppression-hygiene
rules SUP001/SUP002, emitted while parsing ``# reprolint:`` comments.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Type

from .base import Checker
from .findings import ERROR, WARNING

#: rule id -> checker class.  Append-only, id-keyed, populated at import
#: of :mod:`repro.analysis.checkers` — process-global by design, like the
#: experiment registry (baselined under CTX001 with that justification).
_CHECKERS: Dict[str, Type[Checker]] = {}

#: Engine-owned rules (emitted by the engine itself, not a checker).
#: Read-only mapping, so CTX001 has nothing to object to.
ENGINE_RULES: Mapping[str, Mapping[str, str]] = MappingProxyType({
    "SYNTAX": {
        "title": "file does not parse — analysis impossible",
        "severity": ERROR,
        "invariant": "every source file is analysable",
    },
    "SUP001": {
        "title": "malformed suppression: `# reprolint: disable=RULE -- reason` "
                 "needs known rule ids and a non-empty reason",
        "severity": ERROR,
        "invariant": "every exemption is a deliberate, reviewable decision",
    },
    "SUP002": {
        "title": "unused suppression: the disable comment matches no finding on its line",
        "severity": WARNING,
        "invariant": "exemptions are removed when the code they excused is gone",
    },
})


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add *cls* to the registry under its ``rule_id``."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = _CHECKERS.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule {cls.rule_id} already registered by {existing.__name__}"
        )
    if cls.rule_id in ENGINE_RULES:
        raise ValueError(f"rule {cls.rule_id} is reserved for the engine")
    _CHECKERS[cls.rule_id] = cls
    return cls


def _load_builtins() -> None:
    # Importing the package registers every built-in rule (decorator side
    # effect); idempotent.
    from . import checkers  # noqa: F401


def checker_rule_ids() -> List[str]:
    """Ids of all registered checker rules, sorted."""
    _load_builtins()
    return sorted(_CHECKERS)


def all_rule_ids() -> List[str]:
    """Every known rule id — checkers plus engine-owned — sorted."""
    _load_builtins()
    return sorted(set(_CHECKERS) | set(ENGINE_RULES))


def is_known_rule(rule_id: str) -> bool:
    """True for registered checker rules and engine-owned rules."""
    _load_builtins()
    return rule_id in _CHECKERS or rule_id in ENGINE_RULES


def get_checker(rule_id: str) -> Checker:
    """Instantiate the checker registered under *rule_id*."""
    _load_builtins()
    try:
        return _CHECKERS[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {', '.join(all_rule_ids())}")


def build_checkers(rules: Optional[List[str]] = None) -> List[Checker]:
    """Instantiate the selected checkers (default: all), in rule-id order.

    Engine-owned ids in *rules* are accepted and skipped here (the engine
    emits them itself); unknown ids raise ``KeyError``.
    """
    _load_builtins()
    selected = checker_rule_ids() if rules is None else rules
    out: List[Checker] = []
    for rule_id in sorted(set(selected)):
        if rule_id in ENGINE_RULES:
            continue
        out.append(get_checker(rule_id))
    return out


def rule_descriptions() -> Dict[str, Dict[str, str]]:
    """``rule id -> {title, severity, invariant}`` for every known rule."""
    _load_builtins()
    out: Dict[str, Dict[str, str]] = {}
    for rule_id, cls in _CHECKERS.items():
        out[rule_id] = {
            "title": cls.title,
            "severity": cls.severity,
            "invariant": cls.invariant,
        }
    for rule_id, info in ENGINE_RULES.items():
        out[rule_id] = dict(info)
    return dict(sorted(out.items()))
