"""DET004 — no call chain from simulation code reaches a nondeterminism sink.

DET001/DET002 police *direct* sink calls; this whole-program rule closes
the indirection loophole: a simulation function that calls a helper that
calls ``time.time()`` is exactly as nondeterministic as one that reads
the clock itself, but no per-file rule can see it.  The engine's
approximate call graph (lexically resolved targets, re-exports chased,
``self.method()`` one-step) is searched backwards from every unsuppressed
sink; each function that can reach one gets a finding **at the call site
of its first hop**, with the offending chain printed, so the reader can
follow the path and the author can suppress at the precise edge that is
known-benign.

Noise control is part of the rule's semantics:

* the **obs/harness/analysis layers are boundary-trusted** — host timers
  and progress ETAs are their job, so sinks inside them do not taint
  callers, and chains never propagate through them;
* a sink site carrying a valid inline suppression (``DET001``/``DET002``
  as appropriate, or ``DET004``) does not taint — excusing the site
  excuses the chains through it;
* functions with their *own* unsuppressed sink are DET001/DET002's
  findings, not duplicated here.

Violating example::

    # src/repro/sim/helpers.py
    def stamp():
        return time.time()          # DET001 fires here...

    # src/repro/sim/engine.py
    def step(state):
        state.t = stamp()           # ...and DET004 fires here:
                                    # step -> stamp -> time.time

Sanctioned fix: route the value through simulated time or the obs layer;
or, for genuinely host-side instrumentation, suppress DET001 at the sink
(which silences the whole chain) with a reason.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Iterator, List, Optional, Tuple

from ..callgraph import MODULE_BODY, ProjectIndex
from ..findings import Finding
from ..project import ProjectChecker
from ..registry import register_project_checker

#: Layers whose sinks are their job, not a leak: chains stop here.
TRUSTED_PREFIXES = (
    "src/repro/obs/",
    "src/repro/harness/",
    "src/repro/analysis/",
)

#: sink kind -> suppression rule that excuses the sink site.
_SITE_RULE = MappingProxyType({
    "wall_clock": "DET001",
    "global_rng": "DET002",
    "unseeded_rng": "DET002",
})

_KIND_LABEL = MappingProxyType({
    "wall_clock": "wall-clock",
    "global_rng": "global-RNG",
    "unseeded_rng": "unseeded-RNG",
})


def _trusted(relpath: str) -> bool:
    return any(relpath.startswith(p) for p in TRUSTED_PREFIXES)


@register_project_checker
class TransitiveNondetChecker(ProjectChecker):
    rule_id = "DET004"
    title = "no call chain from simulation code reaches a nondeterminism sink"
    hint = (
        "break the chain: route host timing/entropy through repro.obs or "
        "derive_seed, or suppress DET001/DET002 at the sink site with a reason "
        "(which silences every chain through it)"
    )
    invariant = (
        "determinism is compositional — calling deterministic code through "
        "any number of hops stays deterministic"
    )
    include = ("src/repro/",)
    exclude = TRUSTED_PREFIXES

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        # Direct taint: functions with an unsuppressed sink outside the
        # trusted layers.  Each maps to its first (sorted) sink.
        direct: Dict[str, Dict[str, object]] = {}
        callers: Dict[str, List[Tuple[str, int]]] = {}
        for qualname, relpath, facts in index.functions():
            if not _trusted(relpath):
                sink = self._live_sink(index, relpath, facts.sinks)
                if sink is not None:
                    direct[qualname] = {**sink, "relpath": relpath}
                for callee, line in index.call_edges(facts):
                    callers.setdefault(callee, []).append((qualname, line))

        # BFS backwards from the tainted functions: reach[f] = the first
        # hop of f's shortest chain towards a sink.  Sorted frontier and
        # sorted caller lists make the chosen witness chain deterministic.
        reach: Dict[str, Tuple[str, int]] = {}
        frontier = sorted(direct)
        while frontier:
            nxt: List[str] = []
            for callee in frontier:
                for caller, line in sorted(callers.get(callee, ())):
                    if caller in reach or caller in direct:
                        continue
                    relpath, _ = index.lookup(caller) or ("", None)
                    if _trusted(relpath):
                        continue
                    reach[caller] = (callee, line)
                    nxt.append(caller)
            frontier = sorted(nxt)

        for qualname in sorted(reach):
            entry = index.lookup(qualname)
            if entry is None:
                continue
            relpath, _facts = entry
            if not self.applies_to(relpath):
                continue
            callee, line = reach[qualname]
            chain = self._chain(qualname, reach, direct)
            sink = direct[chain[-1]]
            label = _KIND_LABEL.get(str(sink["kind"]), str(sink["kind"]))
            path = " -> ".join(_short(q) for q in chain)
            yield self.finding(
                relpath,
                line,
                f"{_short(qualname)} reaches {label} sink {sink['sink']}() "
                f"via {path} (sink at {sink['relpath']}:{sink['line']})",
                key=f"{qualname}->{sink['sink']}",
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _live_sink(
        index: ProjectIndex, relpath: str, sinks: List[Dict[str, object]]
    ) -> Optional[Dict[str, object]]:
        """The first sink not excused by an inline suppression, or None."""
        for sink in sinks:
            line = int(sink["line"])  # type: ignore[arg-type]
            site_rule = _SITE_RULE.get(str(sink["kind"]), "DET001")
            if index.suppressed(relpath, line, site_rule):
                continue
            if index.suppressed(relpath, line, "DET004"):
                continue
            return sink
        return None

    @staticmethod
    def _chain(
        start: str, reach: Dict[str, Tuple[str, int]], direct: Dict[str, object]
    ) -> List[str]:
        chain = [start]
        current = start
        while current not in direct:
            current = reach[current][0]
            chain.append(current)
        return chain


def _short(qualname: str) -> str:
    """Trim the shared ``repro.`` prefix for readable chains."""
    name = qualname[len("repro."):] if qualname.startswith("repro.") else qualname
    return name.replace(f".{MODULE_BODY}", " (module body)")
