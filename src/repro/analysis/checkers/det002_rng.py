"""DET002 — seed discipline: no global or unseeded randomness.

Every RNG in the repo must flow from :func:`repro.harness.seeds.derive_seed`
or ``RunContext.root_rng``: that is what makes a campaign trial a pure
function of ``(root_seed, trial_id)``, which checkpoint/resume (PR 1) and
the golden-campaign fixtures (PR 3) rely on.  Three families of call
break that discipline:

* **global-state draws** — ``random.random()``, ``random.shuffle()``,
  ``numpy.random.normal()``: the hidden module-level generator's state
  depends on import order and every previous draw anywhere in the
  process;
* **unseeded constructors** — ``random.Random()``,
  ``numpy.random.default_rng()`` with no arguments: seeded from OS
  entropy, unreproducible by construction;
* **global seeding** — ``random.seed``, ``numpy.random.seed``: mutates
  process-wide state behind every other component's back (exactly the
  cross-talk the context-scoped runtime removed).

Seeded constructors (``default_rng(derive_seed(...))``,
``Random(seed)``) pass; this rule polices *where entropy enters*, not
how it is spent.  Unlike most rules it also covers tests, examples and
benchmarks — an unseeded test is a flaky test.

Violating example::

    import random

    def jitter(base):
        return base + random.random()         # DET002: global-state draw

Sanctioned fix::

    def jitter(base, rng):
        return base + rng.random()            # caller passes a derived RNG
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..nondet import (  # noqa: F401  (shared tables; see repro.analysis.nondet)
    NUMPY_NON_DRAWS,
    SEEDABLE_CONSTRUCTORS,
    STDLIB_GLOBAL_FNS,
    classify_rng_call as _classify,
)
from ..registry import register_checker


@register_checker
class RngDisciplineChecker(Checker):
    rule_id = "DET002"
    title = "no global-state or unseeded randomness; entropy flows from derive_seed"
    hint = (
        "derive the generator from repro.harness.seeds.derive_seed or "
        "RunContext.root_rng, e.g. np.random.default_rng(derive_seed(...))"
    )
    invariant = (
        "a trial is a pure function of (root_seed, trial_id) — the basis of "
        "checkpoint/resume identity and the golden-campaign fixtures"
    )
    include = ("src/repro/", "tests/", "examples/", "benchmarks/")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved is None:
                continue
            message = _classify(resolved, node)
            if message is not None:
                yield self.finding(module, node, message, key=resolved)
