"""DET002 — seed discipline: no global or unseeded randomness.

Every RNG in the repo must flow from :func:`repro.harness.seeds.derive_seed`
or ``RunContext.root_rng``: that is what makes a campaign trial a pure
function of ``(root_seed, trial_id)``, which checkpoint/resume (PR 1) and
the golden-campaign fixtures (PR 3) rely on.  Three families of call
break that discipline:

* **global-state draws** — ``random.random()``, ``random.shuffle()``,
  ``numpy.random.normal()``: the hidden module-level generator's state
  depends on import order and every previous draw anywhere in the
  process;
* **unseeded constructors** — ``random.Random()``,
  ``numpy.random.default_rng()`` with no arguments: seeded from OS
  entropy, unreproducible by construction;
* **global seeding** — ``random.seed``, ``numpy.random.seed``: mutates
  process-wide state behind every other component's back (exactly the
  cross-talk the context-scoped runtime removed).

Seeded constructors (``default_rng(derive_seed(...))``,
``Random(seed)``) pass; this rule polices *where entropy enters*, not
how it is spent.  Unlike most rules it also covers tests, examples and
benchmarks — an unseeded test is a flaky test.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..registry import register_checker

#: ``random`` module functions that draw from (or mutate) global state.
STDLIB_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Constructors that are fine *when given a seed*.
SEEDABLE_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",   # never acceptable, but caught as unseeded
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: numpy.random module-level names that are legitimate building blocks
#: (explicit-seed machinery), not global-state draws.
NUMPY_NON_DRAWS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


def _classify(resolved: str, call: ast.Call) -> Optional[str]:
    """The violation message for a resolved call, or None when clean."""
    if resolved in SEEDABLE_CONSTRUCTORS:
        if resolved == "random.SystemRandom":
            return "OS-entropy RNG random.SystemRandom() is unreproducible"
        if not call.args and not any(k.arg == "seed" for k in call.keywords):
            return f"unseeded RNG construction {resolved}()"
        return None
    parts = resolved.split(".")
    if parts[0] == "random" and len(parts) == 2 and parts[1] in STDLIB_GLOBAL_FNS:
        if parts[1] in ("seed", "setstate"):
            return f"global RNG seeding {resolved}() mutates process-wide state"
        return f"draw from the global stdlib RNG: {resolved}()"
    if (
        len(parts) >= 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[2] not in NUMPY_NON_DRAWS
    ):
        if parts[2] == "seed":
            return "global RNG seeding numpy.random.seed() mutates process-wide state"
        return f"draw from the global numpy RNG: {resolved}()"
    return None


@register_checker
class RngDisciplineChecker(Checker):
    rule_id = "DET002"
    title = "no global-state or unseeded randomness; entropy flows from derive_seed"
    hint = (
        "derive the generator from repro.harness.seeds.derive_seed or "
        "RunContext.root_rng, e.g. np.random.default_rng(derive_seed(...))"
    )
    invariant = (
        "a trial is a pure function of (root_seed, trial_id) — the basis of "
        "checkpoint/resume identity and the golden-campaign fixtures"
    )
    include = ("src/repro/", "tests/", "examples/", "benchmarks/")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved is None:
                continue
            message = _classify(resolved, node)
            if message is not None:
                yield self.finding(module, node, message, key=resolved)
