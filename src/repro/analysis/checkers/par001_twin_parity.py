"""PAR001 — scalar/batch twin API surfaces stay in lock-step.

The vectorized batch engine (PR 7) reimplements the scalar
fault-injection path in numpy lockstep, and a differential gate pins
their *results* equal.  Nothing pinned their *signatures*: a keyword
added to ``TemInjectionHarness.run_experiment`` but not to
``BatchTemExecutor.run_experiments`` silently forks the API — callers
of one twin gain an option the other cannot express, and the
differential gate (which calls both with the options it knows) never
notices.  This rule declares the twin pairs and compares their
signature shapes through a singular→plural rename map
(``fault`` ↔ ``faults``, ``miss_window`` ↔ ``miss_windows``), flagging
any divergence in parameter names, order, kind (positional/kw-only/
``*args``/``**kwargs``) or default coverage.  A *missing* endpoint is
also a finding — renaming one twin must not quietly dissolve the pair.

Violating example::

    class TemInjectionHarness:
        def run_experiment(self, fault, miss_window=None, policy=None): ...

    class BatchTemExecutor:
        def run_experiments(self, faults, miss_windows=None): ...
        # PAR001: scalar twin grew 'policy'; batch twin cannot express it

Sanctioned fix: add the parameter to both twins in the same PR (and
extend the differential gate to exercise it), or neither.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..callgraph import ProjectIndex
from ..findings import Finding
from ..project import ProjectChecker
from ..registry import register_project_checker

#: The differential-gated scalar/batch twin pairs this repo maintains.
#: ``plural`` maps scalar parameter names to their batch spellings.
TWIN_PAIRS: Tuple[Mapping[str, Any], ...] = (
    {
        "scalar": "repro.faults.campaign.TemInjectionHarness.run_experiment",
        "batch": "repro.faults.batch_campaign.BatchTemExecutor.run_experiments",
        "plural": {"fault": "faults", "miss_window": "miss_windows"},
    },
    {
        "scalar": "repro.faults.campaign.TemInjectionHarness.run_campaign",
        "batch": "repro.faults.batch_campaign.BatchTemExecutor.run_campaign",
        "plural": {},
    },
)


def _normalise(sig: Dict[str, Any], plural: Mapping[str, str]) -> Dict[str, Any]:
    """Signature shape with scalar names mapped to batch spellings."""
    rename = lambda n: plural.get(n, n)  # noqa: E731
    positional = [
        rename(n)
        for n in [*sig.get("posonly", []), *sig.get("args", [])]
        if n not in ("self", "cls")
    ]
    return {
        "positional": positional,
        "vararg": sig.get("vararg") is not None,
        "kwonly": [rename(n) for n in sig.get("kwonly", [])],
        "kwarg": sig.get("kwarg") is not None,
        "defaults": sig.get("defaults", 0),
        "kwdefaults": sorted(rename(n) for n in sig.get("kwdefaults", [])),
    }


def _diff(scalar: Dict[str, Any], batch: Dict[str, Any]) -> Optional[str]:
    """First human-readable divergence between normalised shapes, or None."""
    s_names = set(scalar["positional"]) | set(scalar["kwonly"])
    b_names = set(batch["positional"]) | set(batch["kwonly"])
    only_scalar = sorted(s_names - b_names)
    only_batch = sorted(b_names - s_names)
    if only_scalar:
        return f"scalar-only parameter(s): {', '.join(only_scalar)}"
    if only_batch:
        return f"batch-only parameter(s): {', '.join(only_batch)}"
    if scalar["positional"] != batch["positional"]:
        return (
            f"positional order differs: {scalar['positional']} vs "
            f"{batch['positional']}"
        )
    if scalar["kwonly"] != batch["kwonly"]:
        return f"keyword-only set differs: {scalar['kwonly']} vs {batch['kwonly']}"
    if scalar["vararg"] != batch["vararg"] or scalar["kwarg"] != batch["kwarg"]:
        return "*args/**kwargs presence differs"
    if scalar["defaults"] != batch["defaults"]:
        return (
            f"default coverage differs: {scalar['defaults']} vs "
            f"{batch['defaults']} positional defaults"
        )
    if scalar["kwdefaults"] != batch["kwdefaults"]:
        return (
            f"keyword defaults differ: {scalar['kwdefaults']} vs "
            f"{batch['kwdefaults']}"
        )
    return None


@register_project_checker
class TwinParityChecker(ProjectChecker):
    rule_id = "PAR001"
    title = "scalar/batch twin endpoints exist and keep matching signatures"
    hint = (
        "change both twins together (and extend the fast-vs-reference "
        "differential gate), or update TWIN_PAIRS if the pairing itself moved"
    )
    invariant = (
        "the scalar and vectorized fault-injection paths expose the same "
        "API surface — the differential gate exercises what callers can call"
    )
    include = ("src/repro/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for pair in TWIN_PAIRS:
            scalar = index.lookup(pair["scalar"])
            batch = index.lookup(pair["batch"])
            if scalar is None and batch is None:
                continue  # pair not present in this tree (fixture projects)
            if scalar is None or batch is None:
                present_name = pair["batch"] if scalar is None else pair["scalar"]
                missing_name = pair["scalar"] if scalar is None else pair["batch"]
                relpath, facts = batch if scalar is None else scalar  # type: ignore[misc]
                yield self.finding(
                    relpath,
                    facts.line,
                    f"twin endpoint {missing_name} is missing (its pair "
                    f"{present_name} exists) — renamed or deleted without "
                    f"updating the twin declaration",
                    key=f"missing:{missing_name}",
                )
                continue
            s_rel, s_facts = scalar
            b_rel, b_facts = batch
            divergence = _diff(
                _normalise(s_facts.signature, pair["plural"]),
                _normalise(b_facts.signature, {}),
            )
            if divergence is not None:
                short_s = pair["scalar"].rsplit(".", 1)[-1]
                short_b = pair["batch"].rsplit(".", 1)[-1]
                yield self.finding(
                    b_rel,
                    b_facts.line,
                    f"batch twin {short_b}() diverged from scalar twin "
                    f"{short_s}() ({s_rel}:{s_facts.line}): {divergence}",
                    key=f"{pair['scalar']}~{pair['batch']}",
                )
