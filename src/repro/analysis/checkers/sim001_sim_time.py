"""SIM001 — simulated time is integer ticks with explicit tie-breaking.

The DES engine counts time in integer microsecond ticks
(:mod:`repro.units`) precisely so that event ordering is exact: float
timestamps make "simultaneous" a rounding question, and two runs that
disagree about simultaneity diverge in event order and therefore in
results.  Two code smells undermine this:

* **float-literal comparisons against sim-time values** — ``if job.deadline
  < 5000.0`` compares integer ticks against a float written in unstated
  units; the units helpers (``ms(5)``, ``seconds(0.005)``) keep both the
  unit and the integer-ness explicit;
* **implicit event tie-breaking** — ``schedule_at``/``schedule_after``
  without an explicit ``priority=`` falls back to ``PRIORITY_DEFAULT``
  and resolves same-tick ties by insertion order alone.  Insertion order
  is deterministic for one code version but shifts under refactoring;
  the priority classes (``PRIORITY_FAULT`` < ``PRIORITY_HARDWARE`` <
  ``PRIORITY_KERNEL`` < ...) are the stated contract for who wins a tie,
  so every scheduling site must pick one on purpose (``PRIORITY_DEFAULT``
  is a legitimate, now-explicit choice).

The rule covers the tick-based layers (sim, kernel, node, net, apps,
core, faults, cpu).  The hour-based reliability models use floats by
design and are out of scope.

Violating example::

    if job.deadline < 5000.0:                 # SIM001: float vs tick compare
        engine.schedule_at(t, handler)        # SIM001: implicit tie-break

Sanctioned fix::

    if job.deadline < ms(5):
        engine.schedule_at(t, handler, priority=PRIORITY_KERNEL)
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..registry import register_checker

#: Terminal-identifier substrings that mark a value as simulated time.
TIME_NAME_MARKERS = (
    "now", "time", "deadline", "tick", "release", "arrival", "when",
    "_at", "expiry", "period",
)

#: Identifiers that contain a marker but are not sim-time values.
TIME_NAME_EXCEPTIONS = frozenset({"runtime", "lifetime", "timeout_s"})

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

_SCHEDULE_CALLS = frozenset({"schedule_at", "schedule_after"})


def _terminal_identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_time_like(node: ast.expr) -> bool:
    ident = _terminal_identifier(node)
    if ident is None:
        return False
    lowered = ident.lower()
    if lowered in TIME_NAME_EXCEPTIONS or lowered.endswith("_s"):
        return False
    return any(marker in lowered for marker in TIME_NAME_MARKERS)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # A negated float literal (-0.5) parses as UnaryOp(USub, Constant).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register_checker
class SimTimeChecker(Checker):
    rule_id = "SIM001"
    title = "sim time stays integer-ticked; event ties are broken by explicit priority"
    hint = (
        "express tick literals through repro.units (ms()/us()/seconds()) "
        "and pass an explicit priority= (PRIORITY_DEFAULT included) to "
        "schedule_at/schedule_after"
    )
    invariant = (
        "exact event ordering: two runs agree on simultaneity and on who "
        "wins a same-tick tie, independent of insertion order"
    )
    include = (
        "src/repro/sim/",
        "src/repro/kernel/",
        "src/repro/node/",
        "src/repro/net/",
        "src/repro/apps/",
        "src/repro/core/",
        "src/repro/faults/",
        "src/repro/cpu/",
        "src/repro/experiments/",
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        function_stack: List[str] = []

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from walk(child)
                function_stack.pop()
                return
            if isinstance(node, ast.Compare):
                yield from check_compare(node)
            elif isinstance(node, ast.Call):
                yield from check_call(node)
            for child in ast.iter_child_nodes(node):
                yield from walk(child)

        def check_compare(node: ast.Compare) -> Iterator[Finding]:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, _COMPARE_OPS):
                    continue
                for literal, other in ((left, right), (right, left)):
                    if _is_float_literal(literal) and _is_time_like(other):
                        ident = _terminal_identifier(other)
                        yield self.finding(
                            module, node,
                            f"sim-time value {ident!r} compared against a "
                            "float literal — ticks are integers; write the "
                            "literal via repro.units",
                            key=f"float-compare:{ident}",
                        )
                        break

        def check_call(node: ast.Call) -> Iterator[Finding]:
            callee = _terminal_identifier(node.func)
            if callee not in _SCHEDULE_CALLS:
                return
            if any(kw.arg == "priority" for kw in node.keywords):
                return
            scope = function_stack[-1] if function_stack else "<module>"
            yield self.finding(
                module, node,
                f"{callee}() without an explicit priority= — same-tick "
                "ties fall back to insertion order",
                key=f"no-priority:{scope}:{callee}",
            )

        yield from walk(module.tree)
