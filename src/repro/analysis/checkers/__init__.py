"""Built-in reprolint rules.

Importing this package registers every built-in checker with the plugin
registry (:mod:`repro.analysis.registry`); third-party or experiment-local
rules register the same way — subclass :class:`repro.analysis.Checker`
(per-file) or :class:`repro.analysis.ProjectChecker` (whole-program) and
decorate with :func:`repro.analysis.register_checker` /
:func:`repro.analysis.register_project_checker`.

Rule catalogue (``python -m repro.analysis --list-rules``):

========  ==============================================================
DET001    no wall-clock reads outside the obs/harness/bench layers
DET002    no global-state or unseeded randomness (seeds flow from
          ``derive_seed`` / ``RunContext.root_rng``)
DET003    no set iteration, OS-ordered listings or ``id()``-keyed
          sorting on result paths
DET004    no call chain from simulation code reaches a nondeterminism
          sink (whole-program)
CTX001    no module-level mutable state (successor of
          ``tools/check_globals.py``)
CTX002    no direct process-default singleton access from library code
SIM001    integer-tick sim time; explicit event-tie priorities
SEED001   RNG seeds descend from ``derive_seed`` / RunContext lineage
          (whole-program)
PKL001    nothing unpicklable crosses a worker spawn boundary
          (whole-program)
PAR001    scalar/batch twin endpoints keep matching signatures
          (whole-program)
SUP001    malformed suppression comment (engine-owned)
SUP002    unused suppression comment (engine-owned)
========  ==============================================================
"""

from __future__ import annotations

from . import (  # noqa: F401  (import for registration side effect)
    ctx001_module_state,
    ctx002_singletons,
    det001_wall_clock,
    det002_rng,
    det003_unordered,
    det004_transitive,
    par001_twin_parity,
    pkl001_spawn_boundary,
    seed001_rng_lineage,
    sim001_sim_time,
)

from .ctx001_module_state import ModuleStateChecker  # noqa: F401
from .ctx002_singletons import SingletonAccessChecker  # noqa: F401
from .det001_wall_clock import WallClockChecker  # noqa: F401
from .det002_rng import RngDisciplineChecker  # noqa: F401
from .det003_unordered import UnorderedIterationChecker  # noqa: F401
from .det004_transitive import TransitiveNondetChecker  # noqa: F401
from .par001_twin_parity import TwinParityChecker  # noqa: F401
from .pkl001_spawn_boundary import SpawnBoundaryChecker  # noqa: F401
from .seed001_rng_lineage import RngLineageChecker  # noqa: F401
from .sim001_sim_time import SimTimeChecker  # noqa: F401

__all__ = [
    "ModuleStateChecker",
    "RngDisciplineChecker",
    "RngLineageChecker",
    "SimTimeChecker",
    "SingletonAccessChecker",
    "SpawnBoundaryChecker",
    "TransitiveNondetChecker",
    "TwinParityChecker",
    "UnorderedIterationChecker",
    "WallClockChecker",
]
