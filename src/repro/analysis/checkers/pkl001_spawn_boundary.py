"""PKL001 — everything crossing a spawn boundary must be picklable.

The campaign supervisor (PR 1) runs trials in ``spawn``-start worker
processes: every callable and payload reachable through
:class:`repro.harness.supervisor.SupervisorConfig` — ``after_trial``,
``batch_runner``, the result codecs, chaos specs, the trial function
itself — is pickled into the worker bootstrap.  Lambdas, nested
functions, generator expressions and open file handles are not
picklable (or, under ``fork`` on a developer laptop, *appear* to work
and then die in CI's spawn context).  The per-file rules cannot see
this: the lambda is syntactically fine; the problem is *where it
flows*.  This whole-program rule walks every resolved call into a
spawn-boundary constructor and flags unpicklable argument shapes at the
argument's own line, so an inline suppression can sit exactly where a
closure is known never to cross a process (e.g. a ``workers=0`` serial
supervisor).

Violating example::

    config = SupervisorConfig(
        workers=4,
        after_trial=lambda res: log.append(res),   # PKL001
    )

Sanctioned fix::

    def _append_result(res):          # module-level, picklable
        log.append(res)

    config = SupervisorConfig(workers=4, after_trial=_append_result)

or, when the callable provably never crosses a process boundary::

    config = dataclasses.replace(
        config,
        after_trial=after_trial,  # reprolint: disable=PKL001 -- serial workers=0
    )
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterator, Optional

from ..callgraph import ProjectIndex
from ..findings import Finding
from ..project import ProjectChecker
from ..registry import register_project_checker

#: Canonical names of the constructors/entry points whose arguments are
#: pickled into spawn-start workers (resolved through re-exports).
BOUNDARY_CALLS = frozenset({
    "repro.harness.supervisor.SupervisorConfig",
    "repro.harness.supervisor.CampaignSupervisor",
    "repro.harness.supervisor.run_experiment_campaign",
    "repro.harness.chaos.ChaosPolicy",
})

#: Keyword arguments that carry callables/payloads across the boundary —
#: also the fields ``dataclasses.replace`` may rebind on a config.
BOUNDARY_KWARGS = frozenset({
    "after_trial",
    "batch_runner",
    "chaos",
    "progress",
    "result_decoder",
    "result_encoder",
    "trial_fn",
})

#: Argument shapes that cannot cross a spawn boundary.
_BAD_KINDS = MappingProxyType({
    "lambda": "a lambda",
    "localdef": "a nested function",
    "genexpr": "a generator expression",
    "open": "an open file handle",
})


def boundary_label(index: ProjectIndex, target: str) -> Optional[str]:
    """Short display name when *target* is a spawn-boundary call, else None."""
    canonical = index.canonical(target)
    if canonical in BOUNDARY_CALLS:
        return canonical.rsplit(".", 1)[-1]
    return None


@register_project_checker
class SpawnBoundaryChecker(ProjectChecker):
    rule_id = "PKL001"
    title = "no unpicklable values passed across a worker spawn boundary"
    hint = (
        "move the callable to module level (def at top of file); spawn-start "
        "workers pickle everything reachable through SupervisorConfig"
    )
    invariant = (
        "campaign configs survive the spawn boundary — a campaign that runs "
        "serially also runs with workers=N"
    )
    include = ("src/repro/", "examples/")
    exclude = ("src/repro/analysis/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for qualname, relpath, facts in index.functions():
            if not self.applies_to(relpath):
                continue
            for call in facts.calls:
                target = call.get("target")
                if target is None:
                    continue
                label = boundary_label(index, target)
                if label is not None:
                    yield from self._check_args(relpath, label, call)
                elif target == "dataclasses.replace":
                    yield from self._check_replace(relpath, call)

    # ------------------------------------------------------------------
    def _check_args(
        self, relpath: str, label: str, call: Dict[str, Any]
    ) -> Iterator[Finding]:
        for pos, arg in enumerate(call.get("args", ())):
            yield from self._judge(relpath, label, f"arg{pos}", arg)
        for name, arg in sorted(call.get("kwargs", {}).items()):
            yield from self._judge(relpath, label, name, arg)

    def _check_replace(
        self, relpath: str, call: Dict[str, Any]
    ) -> Iterator[Finding]:
        # dataclasses.replace(config, after_trial=...) rebinds a boundary
        # field on an existing config; only the known fields are judged.
        for name, arg in sorted(call.get("kwargs", {}).items()):
            if name in BOUNDARY_KWARGS:
                yield from self._judge(relpath, "dataclasses.replace", name, arg)

    def _judge(
        self, relpath: str, label: str, slot: str, arg: Dict[str, Any]
    ) -> Iterator[Finding]:
        kind = arg.get("kind")
        what = _BAD_KINDS.get(kind)
        if what is None:
            return
        named = arg.get("name")
        detail = f" ({named!r})" if named and named != "<lambda>" else ""
        yield self.finding(
            relpath,
            arg.get("line", 1),
            f"{what}{detail} passed into {label}({slot}=...) cannot cross "
            f"a spawn boundary",
            key=f"{label}:{slot}:{kind}",
        )
