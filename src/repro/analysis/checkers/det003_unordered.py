"""DET003 — no unordered iteration on result paths.

Python ``set``/``frozenset`` iteration order depends on element hashes —
for ``str`` keys it varies per process (hash randomisation), for objects
it follows ``id()``, i.e. allocation order.  Any simulation result built
by walking a set can differ between the serial and parallel harness, or
between a fresh run and a checkpoint resume, defeating the differential
gates.  Filesystem enumeration (``os.listdir``/``os.scandir``/
``glob.glob``/``Path.iterdir``) is OS-order and must be wrapped in
``sorted()``.  ``id()`` as a sort key bakes allocation order into output.

Flagged (in ``src/repro/`` result paths):

* ``for``-loops and comprehensions iterating a set expression — a set
  literal/comprehension, a ``set(...)``/``frozenset(...)`` call, a set
  union/intersection/difference, or a local name assigned one of those in
  the same scope;
* ``os.listdir``/``os.scandir``/``glob.glob``/``glob.iglob`` calls not
  directly wrapped in ``sorted(...)``;
* ``key=id`` passed to ``sorted``/``min``/``max``.

``dict`` iteration is insertion-ordered and stays out of scope: whether
insertion order is deterministic is a dataflow property this rule cannot
see, and flagging every ``dict.values()`` would drown the signal.

Violating example::

    def failed_nodes(self):
        return [n.name for n in self._failed]   # DET003: set iteration

Sanctioned fix::

    def failed_nodes(self):
        return [n.name for n in sorted(self._failed, key=lambda n: n.name)]
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Union

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..registry import register_checker

_SET_CALLS = frozenset({"set", "frozenset"})
_FS_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Builtins whose result does not depend on iteration order — a
#: comprehension feeding one of these directly is safe (``sorted(x for x
#: in the_set)`` is the *fix* this rule recommends, not a violation).
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
})

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _direct_set_expr(node: ast.expr) -> bool:
    """True when *node* is syntactically a set (no name tracking)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CALLS
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _direct_set_expr(node.left) or _direct_set_expr(node.right)
    return False


class _ScopeWalk(ast.NodeVisitor):
    """Per-scope walk tracking names bound to set expressions."""

    def __init__(self, checker: "UnorderedIterationChecker",
                 module: ModuleSource) -> None:
        self.checker = checker
        self.module = module
        self.findings: List[Finding] = []
        #: names currently known to hold a set, per enclosing scope.
        self.set_names: List[Set[str]] = [set()]
        #: child -> parent AST map (for the sorted()-wrapper test).
        self.parents: Dict[ast.AST, ast.AST] = {}

    # -- scope management ----------------------------------------------
    def _walk_scope(self, node: _Scope) -> None:
        self.set_names.append(set())
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_scope(node)

    # -- name tracking -------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if _direct_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in names for names in self.set_names)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_set_expr(node.value):
                    self.set_names[-1].add(target.id)
                else:
                    self.set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self._is_set_expr(node.value):
                self.set_names[-1].add(node.target.id)
            else:
                self.set_names[-1].discard(node.target.id)
        self.generic_visit(node)

    # -- iteration sites -----------------------------------------------
    def _order_insensitive(self, comp: ast.expr) -> bool:
        """True when *comp* (a comprehension) directly feeds a consumer
        whose result is independent of iteration order."""
        parent = self.parents.get(comp)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS
            and bool(parent.args)
            and parent.args[0] is comp
        )

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            label = (
                f"local set {iter_node.id!r}" if isinstance(iter_node, ast.Name)
                else "a set expression"
            )
            self.findings.append(self.checker.finding(
                self.module, iter_node,
                f"iteration over {label} — order follows element hashes, "
                "not program logic",
                key="set-iteration",
            ))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        if not self._order_insensitive(node):
            for gen in node.generators:  # type: ignore[attr-defined]
                self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- calls: filesystem order and key=id ----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.module.imports.resolve_call(node)
        if resolved in _FS_CALLS:
            if not self._wrapped_in_sorted(node):
                self.findings.append(self.checker.finding(
                    self.module, node,
                    f"{resolved}() returns OS-ordered entries — wrap the "
                    "call in sorted(...)",
                    key=resolved,
                ))
        if isinstance(node.func, ast.Name) and node.func.id in (
            "sorted", "min", "max"
        ):
            for kw in node.keywords:
                if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"):
                    self.findings.append(self.checker.finding(
                        self.module, node,
                        f"{node.func.id}(..., key=id) orders by allocation "
                        "address — not reproducible across runs",
                        key=f"{node.func.id}:key-id",
                    ))
        self.generic_visit(node)

    def _wrapped_in_sorted(self, call: ast.Call) -> bool:
        parent = self.parents.get(call)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and bool(parent.args)
            and parent.args[0] is call
        )


@register_checker
class UnorderedIterationChecker(Checker):
    rule_id = "DET003"
    title = "no set iteration, OS-ordered listings, or id()-keyed sorting on result paths"
    hint = (
        "iterate sorted(the_set) (with a deterministic key for objects), "
        "wrap os.listdir/glob in sorted(...), and never sort by id()"
    )
    invariant = (
        "serial, parallel and resumed campaigns aggregate identical results "
        "(the differential-equivalence and golden-campaign gates)"
    )
    include = ("src/repro/",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        walker = _ScopeWalk(self, module)
        walker.parents = {
            child: parent
            for parent in ast.walk(module.tree)
            for child in ast.iter_child_nodes(parent)
        }
        walker.visit(module.tree)
        yield from walker.findings
