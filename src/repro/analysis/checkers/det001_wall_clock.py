"""DET001 — no wall-clock reads in simulation code.

Simulated time is the only clock the simulation may observe: checkpoint
/resume reproduces runs bit-identically (PR 1) precisely because nothing
on a result path depends on when the host executed it.  A single
``time.time()`` in a fault handler breaks resume identity and the
fast-vs-reference differential gate in ways no unit test reliably
catches.

Wall clocks remain legitimate in the **observability and harness layers**
(timers, progress ETAs, per-trial timeouts measure the host, not the
simulation), so ``src/repro/obs/`` and ``src/repro/harness/`` are out of
scope.  Instrumentation inside simulation modules that genuinely needs a
host timer (e.g. the DES loop's one-sample-per-run metrics timer) carries
an inline ``# reprolint: disable=DET001 -- <why>``.

Violating example::

    import time

    def on_fault(self, fault):
        self.last_fault_at = time.time()      # DET001: host clock in sim code

Sanctioned fix::

    def on_fault(self, fault):
        self.last_fault_at = self.engine.now  # simulated ticks
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..nondet import WALL_CLOCK_CALLS  # noqa: F401  (shared sink table)
from ..registry import register_checker


@register_checker
class WallClockChecker(Checker):
    rule_id = "DET001"
    title = "no wall-clock reads outside the obs/harness/bench layers"
    hint = (
        "simulation results must depend only on simulated time; route host "
        "timing through repro.obs, or add "
        "`# reprolint: disable=DET001 -- <why>` for pure instrumentation"
    )
    invariant = (
        "bit-identical checkpoint/resume and fast-vs-reference equivalence "
        "(results never depend on host execution timing)"
    )
    include = ("src/repro/",)
    exclude = ("src/repro/obs/", "src/repro/harness/")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock read {resolved}() in simulation code",
                    key=resolved,
                )
