"""SEED001 — every RNG stream's seed has ``derive_seed`` lineage.

DET002 rejects *unseeded* constructors; this whole-program rule audits
the seeds that **are** supplied.  The reproducibility contract (PR 4)
is that every stream in a trial descends from ``(root_seed, trial_id)``
through :func:`repro.harness.seeds.derive_seed` or the
``RunContext.rng`` root generator.  Two seed shapes silently break that
lineage while looking disciplined:

* a **literal** seed — ``default_rng(0)`` — a fixed stream identical
  across trials, shards and campaigns, invisibly correlating what
  should be independent draws;
* a **module-level constant** — ``default_rng(_SEED)`` — the same fixed
  stream wearing a name.

Seeds built from parameters, attributes or locals are trusted (lineage
was established where the value was produced — the per-file rules on
the producer police that), and ``derive_seed(...)`` / ``ctx.rng`` /
``cfg.root_seed`` expressions are sanctioned outright.  The rule also
flags a nested callable that *captures a generator by closure* and is
then handed to a spawn-boundary call: each worker inherits a copy of
the generator's state, so every worker replays identical draws.

Violating example::

    def make_node(node_id):
        rng = np.random.default_rng(0)        # SEED001: literal seed
        return Node(node_id, rng)

Sanctioned fix::

    def make_node(node_id, master_seed):
        rng = np.random.default_rng(derive_seed(master_seed, "node", node_id))
        return Node(node_id, rng)

Deliberate fixed streams (e.g. a documented fallback default) carry an
inline ``# reprolint: disable=SEED001 -- <why>`` or a baseline entry.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..callgraph import ProjectIndex
from ..findings import Finding
from ..project import ProjectChecker
from ..registry import register_project_checker
from .pkl001_spawn_boundary import boundary_label


@register_project_checker
class RngLineageChecker(ProjectChecker):
    rule_id = "SEED001"
    title = "RNG seeds must descend from derive_seed / RunContext lineage"
    hint = (
        "seed the generator from repro.harness.seeds.derive_seed(master, *path) "
        "or the RunContext root RNG instead of a fixed constant"
    )
    invariant = (
        "independent components draw from independent streams — fixed seeds "
        "silently correlate trials that the paper's statistics assume i.i.d."
    )
    include = ("src/repro/",)
    exclude = ("src/repro/analysis/",)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for qualname, relpath, facts in index.functions():
            if not self.applies_to(relpath):
                continue
            for rng in facts.rngs:
                yield from self._judge_seed(relpath, rng)
            closures = {c["name"]: c for c in facts.closures}
            by_line = {c["line"]: c for c in facts.closures}
            for call in facts.calls:
                target = call.get("target")
                if target is None or boundary_label(index, target) is None:
                    continue
                for arg in self._callable_args(call):
                    closure = None
                    if arg.get("name") in closures:
                        closure = closures[arg["name"]]
                    elif arg.get("kind") == "lambda":
                        closure = by_line.get(arg.get("line"))
                    if closure and closure.get("captures_rng"):
                        captured = ", ".join(closure["captures_rng"])
                        yield self.finding(
                            relpath,
                            arg.get("line", 1),
                            f"closure {closure['name']!r} captures RNG "
                            f"stream(s) {captured} across a worker boundary — "
                            f"every worker replays the copied generator state",
                            key=f"closure:{closure['name']}",
                        )

    # ------------------------------------------------------------------
    def _judge_seed(
        self, relpath: str, rng: Dict[str, Any]
    ) -> Iterator[Finding]:
        seed = str(rng.get("seed", ""))
        target = rng.get("target", "rng")
        line = rng.get("line", 1)
        if seed == "literal":
            yield self.finding(
                relpath,
                line,
                f"{target}() seeded with a literal — a fixed stream identical "
                f"across trials, outside derive_seed lineage",
                key=f"{target}:literal",
            )
        elif seed.startswith("global:"):
            name = seed.split(":", 1)[1]
            yield self.finding(
                relpath,
                line,
                f"{target}() seeded from module-level constant {name!r} — a "
                f"hidden fixed stream outside derive_seed lineage",
                key=f"{target}:global:{name}",
            )
        # "sanctioned"/"derived" are trusted; "unseeded" is DET002's finding.

    @staticmethod
    def _callable_args(call: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        for arg in call.get("args", ()):
            yield arg
        for _name, arg in sorted(call.get("kwargs", {}).items()):
            yield arg
