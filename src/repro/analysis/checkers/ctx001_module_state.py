"""CTX001 — no module-level mutable state (the ``check_globals.py`` gate).

The context-scoped runtime refactor (PR 4) moved every ambient switch and
service — fast/reference mode, metrics registries, the profile collector,
the solver cache — onto :class:`repro.runtime.RunContext`.  This rule
keeps it that way: module-level mutable state is shared by *every*
context in the process, so one concurrent run's writes become another's
reads, exactly the cross-talk the refactor removed.

This is the direct successor of ``tools/check_globals.py`` (now a shim
over this rule).  Its allowlist lives on as baseline entries in
``analysis/baseline.json``, keyed the same way (``NAME`` for assignments,
``global:NAME`` for ``global`` statements) with each entry's original
justification as the mandatory reason string.

Flagged (at module top level, or ``global`` anywhere):

* assignments of mutable literals or comprehensions — ``_CACHE = {}``,
  ``_SEEN = set()``, ``RESULTS = []``;
* calls to known-mutable constructors — ``dict()``, ``defaultdict(...)``,
  ``deque()``, ``ContextVar(...)`` — or to constructors whose name ends
  in ``Registry`` / ``Cache`` / ``Collector`` / ``Stack``;
* ``global`` statements (module-level rebinding from function scope).

``__all__`` is always allowed.

Violating example::

    _CACHE = {}                               # CTX001: module-level dict

    def solve(problem):
        if problem.key not in _CACHE:
            _CACHE[problem.key] = _expensive(problem)
        return _CACHE[problem.key]

Sanctioned fix::

    def solve(problem, ctx=None):
        cache = (ctx or runtime.current()).solver_cache
        if problem.key not in cache:
            cache[problem.key] = _expensive(problem)
        return cache[problem.key]
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..base import Checker, ModuleSource
from ..findings import Finding
from ..registry import register_checker

#: Constructors that always produce mutable objects.
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
    "ContextVar",
})

#: Callee-name suffixes that mark service/registry-object construction.
MUTABLE_SUFFIXES = ("Registry", "Cache", "Collector", "Stack")

#: Names allowed in every module.
ALWAYS_ALLOWED = frozenset({"__all__"})


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = _callee_name(value)
        return name in MUTABLE_CONSTRUCTORS or name.endswith(MUTABLE_SUFFIXES)
    return False


def _assigned_names(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


@register_checker
class ModuleStateChecker(Checker):
    rule_id = "CTX001"
    title = "no module-level mutable state; services live on the RunContext"
    hint = (
        "move the state onto repro.runtime.RunContext, or baseline it in "
        "analysis/baseline.json with a justification"
    )
    invariant = (
        "zero cross-talk between concurrently active RunContexts (two runs "
        "with opposite modes/seeds share no mutable module state)"
    )
    include = ("src/repro/",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in module.tree.body:
            value = getattr(node, "value", None)
            if value is None or not _is_mutable_value(value):
                continue
            for name in _assigned_names(node):
                if name in ALWAYS_ALLOWED:
                    continue
                yield self.finding(
                    module, node,
                    f"module-level mutable state {name!r}",
                    key=name,
                )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield self.finding(
                        module, node,
                        f"'global {name}' rebinds module state from "
                        "function scope",
                        key=f"global:{name}",
                    )
