"""CTX002 — library code resolves services through the *active* context.

The process-default :class:`~repro.runtime.RunContext` exists solely as a
compatibility fallback for code that predates the context-scoped runtime:
:func:`repro.runtime.current` falls back to it when nothing is activated.
Library code that reaches for the default *directly* —
``runtime.default_context()``, the ``_process_default`` module slot, or a
registry singleton like ``REGISTRY`` instead of its accessor — pins
itself to process-global state and silently ignores whatever context the
caller activated, reintroducing exactly the cross-run bleed the runtime
refactor removed.

Each singleton has a home where touching it is legitimate (the module
that defines it, plus — for the context machinery — the runtime package
itself and its tests).  Everywhere else must go through
``runtime.current()`` / ``runtime.activate(...)`` or the public accessor
(``get_registry()``).

Violating example::

    from repro import runtime

    def collect_metrics():
        ctx = runtime.default_context()       # CTX002: pins the default
        return ctx.metrics.snapshot()

Sanctioned fix::

    from repro import runtime

    def collect_metrics():
        return runtime.current().metrics.snapshot()
"""

from __future__ import annotations

import ast
from types import MappingProxyType
from typing import Iterator, Mapping, Tuple

from ..base import Checker, ModuleSource, path_in_scope
from ..findings import Finding
from ..registry import register_checker

#: singleton name -> repo-relative prefixes where direct access is its
#: implementation, not a violation.  Read-only mapping (CTX001-clean).
SINGLETONS: Mapping[str, Tuple[str, ...]] = MappingProxyType({
    "default_context": ("src/repro/runtime/",),
    "reset_default_context": ("src/repro/runtime/",),
    "_process_default": ("src/repro/runtime/",),
    "REGISTRY": ("src/repro/experiments/registry.py",),
    "GLOBAL_CACHE": ("src/repro/reliability/solver_cache.py",),
    # The per-process installed chaos policy: everyone else goes through
    # repro.harness.chaos.install() / active_policy().
    "_ProcessChaos": ("src/repro/harness/chaos.py",),
})


@register_checker
class SingletonAccessChecker(Checker):
    rule_id = "CTX002"
    title = "no direct process-default singleton access from library code"
    hint = (
        "resolve through the active context (repro.runtime.current()) or "
        "the public accessor (e.g. get_registry()) instead of the "
        "process-default singleton"
    )
    invariant = (
        "an activated RunContext is authoritative — library code never "
        "bypasses it to reach process-global fallbacks"
    )
    include = ("src/repro/",)

    def _flag(self, module: ModuleSource, node: ast.AST, name: str) -> Finding:
        return self.finding(
            module, node,
            f"direct access to process-default singleton {name!r}",
            key=name,
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        relevant = {
            name: homes
            for name, homes in SINGLETONS.items()
            if not path_in_scope(module.relpath, homes)
        }
        if not relevant:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name in relevant:
                        yield self._flag(module, node, alias.name)
            elif isinstance(node, ast.Attribute) and node.attr in relevant:
                yield self._flag(module, node, node.attr)
            elif isinstance(node, ast.Name) and node.id in relevant:
                # Only flag *uses*, not local defs that happen to share
                # the name (a local `REGISTRY = ...` is CTX001's business).
                if isinstance(node.ctx, ast.Load):
                    yield self._flag(module, node, node.id)
