"""Structured findings: the unit of output of every reprolint checker.

A :class:`Finding` is one rule violation at one source location.  Findings
are designed to diff cleanly across machines and CI runs:

* ``path`` is always **repo-relative POSIX** (``src/repro/sim/events.py``),
  never absolute, never backslashed;
* reports are **stable-sorted** by ``(path, line, col, rule, key)``
  (:func:`sort_findings`), so the same tree produces byte-identical
  reports regardless of filesystem walk order or worker scheduling;
* every finding carries a **stable key** — a checker-chosen fingerprint
  that does *not* include the line number (e.g. the offending symbol name
  or resolved call target), so baseline entries survive unrelated edits
  that shift lines.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence, Tuple

#: Severity levels.  ``error`` findings fail the gate (exit code 1) unless
#: baselined or suppressed; ``warning`` findings are reported but never
#: change the exit code (stale baseline entries, unused suppressions).
ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes
    ----------
    rule:
        Rule identifier (``DET001``, ``CTX001``, ...).
    severity:
        ``"error"`` or ``"warning"``.
    path:
        Repo-relative POSIX path of the offending file.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable statement of the violation.
    key:
        Line-number-independent fingerprint used for baseline matching;
        baseline entries match on ``(rule, path, key)``.
    hint:
        How to fix (or how to legitimately suppress) the violation.
    baselined:
        True when a baseline entry covers this finding (informational in
        reports; baselined findings never fail the gate).
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    key: str
    hint: str = ""
    baselined: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if "\\" in self.path or self.path.startswith("/"):
            raise ValueError(f"finding path must be repo-relative POSIX, got {self.path!r}")

    # ------------------------------------------------------------------
    # Serialisation (JSON report round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON projection (stable field order via dataclass order)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown finding fields: {sorted(unknown)}")
        return cls(**data)

    def with_baselined(self) -> "Finding":
        """A copy marked as covered by a baseline entry."""
        return dataclasses.replace(self, baselined=True)

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable anchor used in text output."""
        return f"{self.path}:{self.line}:{self.col}"


def sort_key(finding: Finding) -> Tuple[str, int, int, str, str]:
    """The canonical report order: (file, line, col, rule, key)."""
    return (finding.path, finding.line, finding.col, finding.rule, finding.key)


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Stable-sort *findings* into canonical report order."""
    return sorted(findings, key=sort_key)
