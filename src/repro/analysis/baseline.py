"""The committed baseline: pre-existing, justified findings that don't fail.

``analysis/baseline.json`` lets the linter land green on a tree with known
violations and then *ratchet*: new findings fail, baselined findings pass,
and baseline entries whose finding has been fixed are reported stale so
the file only ever shrinks.

Entries match findings on ``(rule, path, key)`` — deliberately **not** on
line numbers, so unrelated edits that shift code do not invalidate the
baseline.  Every entry carries a mandatory non-empty ``reason``: the
baseline is the successor of ``tools/check_globals.py``'s allowlist, and
keeps its property that each exemption documents *why* the state of
affairs is acceptable.

The optional ``max_entries`` field is the ratchet's pawl: loading a
baseline with more entries than its own ``max_entries`` is an error, so
the file can never grow silently — adding an exemption forces an
explicit, reviewable bump of the ceiling in the same diff.
``--write-baseline`` always tightens it to the entry count it writes.

File schema (JSON)::

    {
      "version": 1,
      "tool": "reprolint",
      "max_entries": 25,
      "entries": [
        {"rule": "CTX001", "path": "src/repro/cpu/isa.py",
         "key": "OPCODES", "reason": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from .findings import WARNING, Finding

BASELINE_VERSION = 1

#: Default location, relative to the repo root.
DEFAULT_BASELINE_PATH = "analysis/baseline.json"

#: Reason given to entries minted by ``--write-baseline``; deliberately
#: conspicuous so review replaces it with a real justification.
PLACEHOLDER_REASON = "TODO: justify this exemption"


class BaselineError(ValueError):
    """Malformed baseline file (bad schema, empty reason, duplicates)."""


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One justified exemption."""

    rule: str
    path: str
    key: str
    reason: str

    @property
    def identity(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.key)

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path,
                "key": self.key, "reason": self.reason}


class Baseline:
    """The set of baseline entries, with matching and staleness tracking."""

    def __init__(
        self,
        entries: Sequence[BaselineEntry] = (),
        max_entries: "int | None" = None,
    ) -> None:
        self._entries: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in entries:
            if not entry.reason.strip():
                raise BaselineError(
                    f"baseline entry {entry.rule} {entry.path} {entry.key!r} "
                    "has an empty reason — every exemption must be justified"
                )
            if entry.identity in self._entries:
                raise BaselineError(
                    f"duplicate baseline entry {entry.rule} {entry.path} {entry.key!r}"
                )
            self._entries[entry.identity] = entry
        self.max_entries = max_entries
        if max_entries is not None and len(self._entries) > max_entries:
            raise BaselineError(
                f"baseline has {len(self._entries)} entries but max_entries is "
                f"{max_entries} — the baseline only ratchets down; adding an "
                "exemption requires an explicit max_entries bump in the same diff"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identity: Tuple[str, str, str]) -> bool:
        return identity in self._entries

    def entries(self) -> List[BaselineEntry]:
        """All entries, stable-sorted by (path, rule, key)."""
        return sorted(
            self._entries.values(), key=lambda e: (e.path, e.rule, e.key)
        )

    def covers(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.key) in self._entries

    # ------------------------------------------------------------------
    # Application (the ratchet)
    # ------------------------------------------------------------------
    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings by baseline coverage.

        Returns ``(new, baselined, stale_entries)``:

        * *new* — findings not covered (they fail the gate);
        * *baselined* — covered findings, marked ``baselined=True``
          (reported, never failing);
        * *stale_entries* — entries that covered nothing: the violation
          was fixed but the exemption lingers.  Reported as warnings so
          the baseline ratchets down.
        """
        new: List[Finding] = []
        baselined: List[Finding] = []
        matched = set()
        for finding in findings:
            identity = (finding.rule, finding.path, finding.key)
            if identity in self._entries:
                matched.add(identity)
                baselined.append(finding.with_baselined())
            else:
                new.append(finding)
        stale = [e for i, e in self._entries.items() if i not in matched]
        stale.sort(key=lambda e: (e.path, e.rule, e.key))
        return new, baselined, stale

    # ------------------------------------------------------------------
    # File I/O
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_dict(data, origin=str(path))

    @classmethod
    def from_dict(cls, data: Any, origin: str = "<dict>") -> "Baseline":
        if not isinstance(data, dict) or data.get("tool") != "reprolint":
            raise BaselineError(f"{origin}: not a reprolint baseline file")
        if data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{origin}: unsupported baseline version {data.get('version')!r}"
            )
        entries = []
        for raw in data.get("entries", []):
            missing = {"rule", "path", "key", "reason"} - set(raw)
            if missing:
                raise BaselineError(
                    f"{origin}: entry {raw!r} missing fields {sorted(missing)}"
                )
            entries.append(BaselineEntry(
                rule=raw["rule"], path=raw["path"],
                key=raw["key"], reason=raw["reason"],
            ))
        max_entries = data.get("max_entries")
        if max_entries is not None and not isinstance(max_entries, int):
            raise BaselineError(
                f"{origin}: max_entries must be an integer, got {max_entries!r}"
            )
        return cls(entries, max_entries=max_entries)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": BASELINE_VERSION,
            "tool": "reprolint",
        }
        if self.max_entries is not None:
            out["max_entries"] = self.max_entries
        out["entries"] = [e.to_dict() for e in self.entries()]
        return out

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )


def merged_with_findings(
    baseline: Baseline, new_findings: Sequence[Finding]
) -> Baseline:
    """A baseline extended to cover *new_findings* (``--write-baseline``).

    Existing entries keep their reasons; minted entries get
    :data:`PLACEHOLDER_REASON` for review to replace.  Stale entries are
    dropped — writing the baseline is the ratchet's downward click.
    """
    live, _, _ = baseline.apply(new_findings)
    entries = {e.identity: e for e in baseline.entries()}
    covered = {(f.rule, f.path, f.key) for f in new_findings}
    entries = {i: e for i, e in entries.items() if i in covered}
    for finding in live:
        entry = BaselineEntry(
            rule=finding.rule, path=finding.path,
            key=finding.key, reason=PLACEHOLDER_REASON,
        )
        entries.setdefault(entry.identity, entry)
    # Writing the baseline re-tightens the ratchet to exactly what it holds.
    return Baseline(list(entries.values()), max_entries=len(entries))


def stale_warnings(stale: Sequence[BaselineEntry]) -> List[Finding]:
    """Render stale baseline entries as SUP002-style warnings."""
    out = []
    for entry in stale:
        out.append(Finding(
            rule=entry.rule,
            severity=WARNING,
            path=entry.path,
            line=1,
            col=0,
            message=(
                f"stale baseline entry (key {entry.key!r}): the violation "
                "was fixed — remove the entry from the baseline"
            ),
            key=f"stale-baseline:{entry.key}",
            hint="delete the entry from analysis/baseline.json",
        ))
    return out
