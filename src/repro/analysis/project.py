"""Project-rule plumbing: the whole-program counterpart of ``Checker``.

Per-file rules (:class:`repro.analysis.base.Checker`) see one
:class:`~repro.analysis.base.ModuleSource` at a time.  Project rules see
the linked :class:`~repro.analysis.callgraph.ProjectIndex` — every
module summary, the module graph and the approximate call graph — and
reason about properties no single file exhibits: call chains that reach
a nondeterminism sink (DET004), RNG streams whose seed lineage crosses
files (SEED001), what a spawn boundary can reach (PKL001), and twin
scalar/batch API surfaces kept in lock-step (PAR001).

Project rules still emit ordinary :class:`~repro.analysis.findings.Finding`
objects anchored at a concrete file/line, so baselining, inline
suppressions and every report format work unchanged.  Inline
suppressions are honoured through the index (the engine consults
:meth:`ProjectIndex.suppressed` — summaries record suppression lines, so
even a cache-hit file keeps its exemptions).

Two contracts keep incremental analysis exact:

* ``check_project`` must be a pure function of the index — no filesystem
  access, no ordering dependence beyond the index's sorted traversals;
* findings are *global* facts filtered to the requested path set by the
  engine, so analysing a subset of files yields exactly the slice of a
  full run (the property ``tests/analysis/test_incremental.py`` pins).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .base import path_in_scope
from .callgraph import ProjectIndex
from .findings import ERROR, Finding


class ProjectChecker:
    """Base class for whole-program reprolint rules.

    Subclasses set the same metadata attributes as per-file checkers and
    implement :meth:`check_project` over a :class:`ProjectIndex`.
    ``include``/``exclude`` scope where findings may be *anchored* — the
    rule still sees the whole index (a chain may pass through an
    out-of-scope module), but it must not report into excluded paths.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = ERROR
    hint: str = ""
    invariant: str = ""
    include: Tuple[str, ...] = ("src/repro/",)
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """True when this rule may anchor findings at *relpath*."""
        return path_in_scope(relpath, self.include, self.exclude)

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Yield findings over the linked project.  Must be side-effect free."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        relpath: str,
        line: int,
        message: str,
        key: str,
        *,
        col: int = 0,
        severity: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at (*relpath*, *line*)."""
        return Finding(
            rule=self.rule_id,
            severity=severity if severity is not None else self.severity,
            path=relpath,
            line=line,
            col=col,
            message=message,
            key=key,
            hint=hint if hint is not None else self.hint,
        )
