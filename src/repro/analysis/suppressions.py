"""Inline suppression comments: ``# reprolint: disable=RULE -- reason``.

Grammar (one comment, applies to the physical line it sits on)::

    # reprolint: disable=DET001 -- instrumentation only; feeds obs timers
    # reprolint: disable=DET001,SIM001 -- <reason covers both rules>

The reason is **mandatory and non-empty** — an exemption without a
justification is itself a violation (rule SUP001, error).  A well-formed
suppression that matches no finding on its line is reported as SUP002
(warning) so stale exemptions get cleaned up rather than silently
accumulating.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .findings import ERROR, WARNING, Finding
from .registry import is_known_rule

#: Matches the whole suppression comment; group 1 = rule list, group 2 =
#: optional `` -- reason`` tail (reason text in group 3).
_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]*)(\s*--\s*(.*))?$"
)


def _iter_comments(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every comment token in *source*.

    Tokenising (rather than line-scanning) means the grammar shown in a
    docstring or a string literal is never mistaken for a suppression.
    A file that fails to tokenise yields no comments — the engine already
    reports it as a SYNTAX finding.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable=`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and finding.rule in self.rules


def parse_suppressions(
    source: str, relpath: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppressions from *source*.

    Returns ``(valid_suppressions, problems)`` where *problems* are SUP001
    findings for malformed comments (empty rule list, unknown rule id, or
    missing/empty reason).  Malformed suppressions suppress nothing.
    """
    suppressions: List[Suppression] = []
    problems: List[Finding] = []

    def problem(lineno: int, message: str, key: str) -> None:
        problems.append(Finding(
            rule="SUP001",
            severity=ERROR,
            path=relpath,
            line=lineno,
            col=0,
            message=message,
            key=key,
            hint="write `# reprolint: disable=RULE[,RULE] -- reason` with "
                 "known rule ids and a non-empty reason",
        ))

    for lineno, text in _iter_comments(source):
        if "reprolint:" not in text:
            continue
        match = _PATTERN.search(text)
        if match is None:
            # A reprolint marker that is not a valid disable comment is a
            # typo waiting to silently not work — flag it.
            problem(lineno, "unrecognised `reprolint:` comment", "bad-comment")
            continue
        rules = tuple(r.strip() for r in match.group(1).split(",") if r.strip())
        reason = (match.group(3) or "").strip()
        if not rules:
            problem(lineno, "suppression lists no rule ids", "no-rules")
            continue
        unknown = sorted(r for r in rules if not is_known_rule(r))
        if unknown:
            problem(
                lineno,
                f"suppression names unknown rule(s): {', '.join(unknown)}",
                f"unknown-rule:{','.join(unknown)}",
            )
            continue
        if not reason:
            problem(
                lineno,
                f"suppression of {', '.join(rules)} has no reason "
                "(a non-empty `-- reason` is required)",
                f"no-reason:{','.join(rules)}",
            )
            continue
        suppressions.append(Suppression(line=lineno, rules=rules, reason=reason))
    return suppressions, problems


def apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
    relpath: str,
    active_rules: Optional[FrozenSet[str]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Drop findings covered by a suppression; report unused suppressions.

    Returns ``(kept_findings, unused_warnings)`` where *unused_warnings*
    are SUP002 findings for suppressions that covered nothing.  A
    suppression is only judged unused when every rule it names is in
    *active_rules* (the checkers that actually ran on this file) — a
    partial run (``--rules CTX001``) must not flag a DET001 suppression
    it never evaluated.  ``active_rules=None`` judges everything.
    """
    used: Dict[int, bool] = {id(s): False for s in suppressions}
    kept: List[Finding] = []
    for finding in findings:
        covering = next((s for s in suppressions if s.covers(finding)), None)
        if covering is None:
            kept.append(finding)
        else:
            used[id(covering)] = True
    unused: List[Finding] = []
    for suppression in suppressions:
        if used[id(suppression)]:
            continue
        if active_rules is not None and not set(suppression.rules) <= active_rules:
            continue
        unused.append(Finding(
            rule="SUP002",
            severity=WARNING,
            path=relpath,
            line=suppression.line,
            col=0,
            message=(
                f"suppression of {', '.join(suppression.rules)} matches no "
                "finding on this line — remove it"
            ),
            key=f"unused:{','.join(suppression.rules)}",
            hint="delete the stale `# reprolint: disable=` comment",
        ))
    return kept, unused


def iter_reasons(suppressions: List[Suppression]) -> Iterator[str]:
    """The reason strings (used by tests and tooling)."""
    for suppression in suppressions:
        yield suppression.reason
