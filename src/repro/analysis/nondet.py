"""Shared nondeterminism-sink tables and RNG call classification.

Three rules reason about the same families of calls — DET001 (direct
wall-clock reads), DET002 (direct global/unseeded randomness) and DET004
(call chains that *reach* either kind of sink) — and the whole-program
summary extractor (:mod:`repro.analysis.callgraph`) records sink calls
into its per-module summaries.  Keeping the tables in one leaf module
(no intra-package imports) means a sink added for one rule is a sink for
all of them, and the checkers and the extractor can never drift apart.
"""

from __future__ import annotations

import ast
from typing import Optional

#: Resolved call targets that read a host clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``random`` module functions that draw from (or mutate) global state.
STDLIB_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Constructors that are fine *when given a seed*.
SEEDABLE_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",   # never acceptable, but caught as unseeded
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: numpy.random module-level names that are legitimate building blocks
#: (explicit-seed machinery), not global-state draws.
NUMPY_NON_DRAWS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


def is_rng_constructor(resolved: str) -> bool:
    """True when *resolved* constructs an RNG stream (seeded or not)."""
    return resolved in SEEDABLE_CONSTRUCTORS


def is_unseeded_constructor(resolved: str, call: ast.Call) -> bool:
    """True when *call* constructs an RNG with no seed (OS entropy)."""
    if resolved not in SEEDABLE_CONSTRUCTORS:
        return False
    if resolved == "random.SystemRandom":
        return True
    return not call.args and not any(k.arg == "seed" for k in call.keywords)


def global_rng_sink(resolved: str) -> Optional[str]:
    """Why *resolved* touches process-global RNG state, or None if it doesn't.

    Covers global-state draws (``random.random``, ``numpy.random.normal``)
    and global seeding (``random.seed``, ``numpy.random.seed``) — the
    calls whose outcome depends on hidden process-wide state.  Seeded and
    unseeded *constructors* are deliberately excluded: they are judged by
    :func:`is_unseeded_constructor` and the SEED001 lineage rules instead.
    """
    parts = resolved.split(".")
    if parts[0] == "random" and len(parts) == 2 and parts[1] in STDLIB_GLOBAL_FNS:
        if parts[1] in ("seed", "setstate"):
            return f"global RNG seeding {resolved}() mutates process-wide state"
        return f"draw from the global stdlib RNG: {resolved}()"
    if (
        len(parts) >= 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[2] not in NUMPY_NON_DRAWS
    ):
        if parts[2] == "seed":
            return "global RNG seeding numpy.random.seed() mutates process-wide state"
        return f"draw from the global numpy RNG: {resolved}()"
    return None


def classify_rng_call(resolved: str, call: ast.Call) -> Optional[str]:
    """The DET002 violation message for a resolved call, or None when clean."""
    if resolved in SEEDABLE_CONSTRUCTORS:
        if resolved == "random.SystemRandom":
            return "OS-entropy RNG random.SystemRandom() is unreproducible"
        if is_unseeded_constructor(resolved, call):
            return f"unseeded RNG construction {resolved}()"
        return None
    return global_rng_sink(resolved)


def sink_kind(resolved: str, call: ast.Call) -> Optional[str]:
    """The DET004 taint kind of a resolved call, or None when it is clean.

    Kinds: ``wall_clock`` (host clock read), ``global_rng`` (global-state
    draw or seeding), ``unseeded_rng`` (OS-entropy RNG construction).
    """
    if resolved in WALL_CLOCK_CALLS:
        return "wall_clock"
    if global_rng_sink(resolved) is not None:
        return "global_rng"
    if is_unseeded_constructor(resolved, call):
        return "unseeded_rng"
    return None
