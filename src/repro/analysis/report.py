"""Report rendering: human text, machine JSON, and SARIF 2.1.0.

All formats are **stable**: repo-relative POSIX paths, findings sorted by
``(file, line, col, rule, key)``, baseline entries sorted by
``(path, rule, key)`` — so two runs over the same tree produce
byte-identical reports on any machine, and CI artifacts diff cleanly
across runs.

The SARIF output targets code-scanning UIs (GitHub's
``upload-sarif`` action): every rule that ran is described in the
driver's rule table, every finding carries a line-independent
``partialFingerprint`` (the same ``(rule, path, key)`` identity the
baseline matches on, so alert identity survives unrelated edits), and
baselined findings are emitted with an ``external`` suppression rather
than dropped — the UI shows them as reviewed, not as new.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import AnalysisResult
from .findings import ERROR, Finding
from .registry import rule_descriptions

#: Schema identifier carried by every JSON report.
REPORT_SCHEMA = "reprolint-v1"

#: The SARIF version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: AnalysisResult, *, show_baselined: bool = False) -> str:
    """Human-readable report, one ``path:line:col RULE severity`` per finding."""
    lines: List[str] = []

    def emit(finding: Finding) -> None:
        tag = " [baselined]" if finding.baselined else ""
        lines.append(
            f"{finding.location} {finding.rule} {finding.severity}{tag}: "
            f"{finding.message}"
        )
        if finding.hint and not finding.baselined:
            lines.append(f"    hint: {finding.hint}")

    for finding in result.findings:
        emit(finding)
    if show_baselined:
        for finding in result.baselined:
            emit(finding)
    for entry in result.stale_entries:
        lines.append(
            f"{entry.path} {entry.rule} warning: stale baseline entry "
            f"(key {entry.key!r}) — violation fixed, remove the entry"
        )
    errors = len(result.errors)
    warnings = len(result.warnings)
    lines.append(
        f"reprolint: {errors} error{'s' if errors != 1 else ''}, "
        f"{warnings} warning{'s' if warnings != 1 else ''}, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_entries)} stale baseline "
        f"entr{'ies' if len(result.stale_entries) != 1 else 'y'} "
        f"({result.files_scanned} files)"
    )
    return "\n".join(lines) + "\n"


def render_json_dict(result: AnalysisResult) -> Dict[str, Any]:
    """The JSON report as a plain dict (see :data:`REPORT_SCHEMA`)."""
    return {
        "schema": REPORT_SCHEMA,
        "rules": list(result.rules),
        "counts": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_entries),
            "files": result.files_scanned,
        },
        "ok": result.ok,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": [e.to_dict() for e in result.stale_entries],
    }


def render_json(result: AnalysisResult) -> str:
    return json.dumps(render_json_dict(result), indent=2) + "\n"


def parse_json_report(data: Dict[str, Any]) -> List[Finding]:
    """Reconstruct the findings of a JSON report (round-trip helper).

    Returns unbaselined and baselined findings concatenated, in report
    order.  Raises ``ValueError`` on schema mismatch.
    """
    if data.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"not a {REPORT_SCHEMA} report: {data.get('schema')!r}")
    findings = [Finding.from_dict(raw) for raw in data.get("findings", [])]
    findings += [Finding.from_dict(raw) for raw in data.get("baselined", [])]
    return findings


def exit_code(result: AnalysisResult) -> int:
    """0 when the gate passes, 1 when any unbaselined error remains."""
    return 0 if result.ok else 1


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def _sarif_result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == ERROR else "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
        # The baseline identity — line-independent, so code-scanning alert
        # identity survives edits that only shift code.
        "partialFingerprints": {
            "reprolintKey/v1": f"{finding.rule}:{finding.path}:{finding.key}",
        },
    }
    if finding.baselined:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "covered by analysis/baseline.json",
        }]
    return result


def render_sarif_dict(result: AnalysisResult) -> Dict[str, Any]:
    """The analysis result as a SARIF 2.1.0 log (plain dict)."""
    descriptions = rule_descriptions()
    rules = []
    for rule_id in result.rules:
        info = descriptions.get(rule_id, {})
        rule: Dict[str, Any] = {
            "id": rule_id,
            "shortDescription": {"text": info.get("title", rule_id)},
            "defaultConfiguration": {
                "level": "error" if info.get("severity", ERROR) == ERROR
                else "warning",
            },
        }
        if info.get("invariant"):
            rule["fullDescription"] = {"text": f"Protects: {info['invariant']}"}
        rules.append(rule)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": [
                _sarif_result(f)
                for f in (*result.findings, *result.baselined)
            ],
        }],
    }


def render_sarif(result: AnalysisResult) -> str:
    return json.dumps(render_sarif_dict(result), indent=2) + "\n"


__all__ = [
    "REPORT_SCHEMA", "SARIF_VERSION", "render_text", "render_json",
    "render_json_dict", "render_sarif", "render_sarif_dict",
    "parse_json_report", "exit_code", "ERROR",
]
