"""The analysis engine: discovery, per-file parallel analysis, the ratchet.

One :func:`run_analysis` call is one lint pass:

1. **Discover** Python files under the requested roots (default:
   ``src/repro``, ``tests``, ``examples``, ``benchmarks``, ``tools``),
   skipping ``__pycache__`` and the checker test fixtures (which are
   deliberate violations).  With ``changed_only=True`` the file list is
   narrowed to files touched since the git merge-base, so the gate stays
   fast as the tree grows.
2. **Analyse** each file independently — parse once, run every in-scope
   checker, apply inline suppressions — optionally across a process pool
   (per-file analysis shares nothing, so it parallelises embarrassingly;
   results are stable-sorted afterwards so worker scheduling never shows
   in the report).
3. **Apply the baseline**: covered findings pass (marked ``baselined``),
   uncovered *error* findings fail the gate, and stale baseline entries
   are surfaced as warnings so the baseline only ratchets down.
"""

from __future__ import annotations

import dataclasses
import subprocess
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .base import Checker, ModuleSource
from .baseline import Baseline, BaselineEntry
from .findings import ERROR, Finding, sort_findings
from .registry import build_checkers, checker_rule_ids
from .suppressions import apply_suppressions, parse_suppressions

#: Roots scanned when no explicit paths are given.
DEFAULT_ROOTS = ("src/repro", "tests", "examples", "benchmarks", "tools")

#: Repo-relative prefixes never scanned.  The fixture tree contains
#: intentional violations (the checkers' positive test cases).
GLOBAL_EXCLUDES = (
    "__pycache__",
    ".git/",
    "tests/analysis/fixtures/",
)


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor of *start* (default CWD) containing pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


def _excluded(relpath: str) -> bool:
    return any(
        part == "__pycache__" for part in relpath.split("/")
    ) or any(relpath.startswith(p) for p in GLOBAL_EXCLUDES if p.endswith("/"))


def discover_files(
    root: Path, paths: Optional[Sequence[str]] = None
) -> List[Tuple[Path, str]]:
    """``(absolute, repo-relative-posix)`` for every Python file in scope.

    *paths* entries may be files or directories, absolute or
    root-relative.  The result is sorted by relative path, so downstream
    processing is order-independent.
    """
    requested = list(paths) if paths else [r for r in DEFAULT_ROOTS
                                           if (root / r).exists()]
    seen = {}
    for entry in requested:
        candidate = Path(entry)
        if not candidate.is_absolute():
            candidate = root / entry
        candidate = candidate.resolve()
        if candidate.is_dir():
            found = sorted(candidate.rglob("*.py"))
        elif candidate.suffix == ".py" and candidate.exists():
            found = [candidate]
        else:
            found = []
        for path in found:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix().lstrip("/")
            if _excluded(rel):
                continue
            seen[rel] = path
    return [(seen[rel], rel) for rel in sorted(seen)]


# ----------------------------------------------------------------------
# Changed-only mode
# ----------------------------------------------------------------------
def changed_files(root: Path, base_ref: Optional[str] = None) -> Optional[List[str]]:
    """Repo-relative paths touched since the merge-base with *base_ref*.

    Tries ``origin/main`` then ``main`` when *base_ref* is not given, and
    includes uncommitted and untracked files.  Returns None when git is
    unavailable or the refs don't resolve — callers fall back to a full
    scan rather than silently linting nothing.
    """

    def git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", "-C", str(root), *args],
                capture_output=True, text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    merge_base = None
    for ref in ([base_ref] if base_ref else ["origin/main", "main"]):
        out = git("merge-base", "HEAD", ref)
        if out:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    committed = git("diff", "--name-only", merge_base, "HEAD")
    working = git("diff", "--name-only", "HEAD")
    untracked = git("ls-files", "--others", "--exclude-standard")
    if committed is None:
        return None
    names = set()
    for chunk in (committed, working or "", untracked or ""):
        names.update(line.strip() for line in chunk.splitlines() if line.strip())
    return sorted(n for n in names if n.endswith(".py"))


# ----------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------
def analyze_file(
    path: Path, relpath: str, checkers: Sequence[Checker]
) -> List[Finding]:
    """All findings for one file: checker hits minus suppressions, plus
    suppression-hygiene findings (SUP001/SUP002) and parse errors."""
    try:
        module = ModuleSource.parse(path, relpath)
    except SyntaxError as exc:
        return [Finding(
            rule="SYNTAX", severity=ERROR, path=relpath,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}", key="syntax-error",
            hint="fix the parse error",
        )]
    raw: List[Finding] = []
    active = set()
    for checker in checkers:
        if checker.applies_to(relpath):
            raw.extend(checker.check(module))
            active.add(checker.rule_id)
    suppressions, problems = parse_suppressions(module.source, relpath)
    kept, unused = apply_suppressions(
        raw, suppressions, relpath, active_rules=frozenset(active)
    )
    return sort_findings(kept + problems + unused)


def _analyze_one(args: Tuple[str, str, Tuple[str, ...]]) -> List[Finding]:
    """Process-pool worker: re-resolve checkers by rule id, then analyse."""
    path_str, relpath, rule_ids = args
    checkers = build_checkers(list(rule_ids))
    return analyze_file(Path(path_str), relpath, checkers)


# ----------------------------------------------------------------------
# The full pass
# ----------------------------------------------------------------------
@dataclasses.dataclass
class AnalysisResult:
    """Outcome of one :func:`run_analysis` pass."""

    #: Unbaselined findings (errors here fail the gate) plus warnings.
    findings: List[Finding]
    #: Findings covered by the baseline (reported, never failing).
    baselined: List[Finding]
    #: Baseline entries that covered nothing (the violation was fixed).
    stale_entries: List[BaselineEntry]
    #: Number of files analysed.
    files_scanned: int
    #: Rule ids that ran.
    rules: List[str]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity != ERROR]

    @property
    def ok(self) -> bool:
        """True when the gate passes (no unbaselined errors)."""
        return not self.errors


def run_analysis(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    changed_only: bool = False,
    base_ref: Optional[str] = None,
) -> AnalysisResult:
    """Run the configured checkers over the tree and apply the baseline."""
    checkers = build_checkers(rules)
    rule_ids = tuple(c.rule_id for c in checkers)
    files = discover_files(root, paths)
    if changed_only:
        changed = changed_files(root, base_ref)
        if changed is not None:
            narrowed = set(changed)
            files = [(p, rel) for p, rel in files if rel in narrowed]
    all_findings: List[Finding] = []
    if jobs > 1 and len(files) > 1:
        work = [(str(p), rel, rule_ids) for p, rel in files]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(_analyze_one, work, chunksize=8):
                all_findings.extend(result)
    else:
        for path, rel in files:
            all_findings.extend(analyze_file(path, rel, checkers))
    all_findings = sort_findings(all_findings)
    if baseline is None:
        baseline = Baseline()
    new, covered, stale = baseline.apply(all_findings)
    return AnalysisResult(
        findings=sort_findings(new),
        baselined=sort_findings(covered),
        stale_entries=stale,
        files_scanned=len(files),
        rules=sorted(rule_ids) if rules is None else sorted(set(rules)),
    )


def default_rules() -> List[str]:
    """All registered checker rule ids (what a bare run executes)."""
    return checker_rule_ids()
