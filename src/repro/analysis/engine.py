"""The analysis engine: discovery, incremental per-file + project analysis.

One :func:`run_analysis` call is one lint pass:

1. **Discover** Python files under the requested roots (default:
   ``src/repro``, ``tests``, ``examples``, ``benchmarks``, ``tools``),
   skipping ``__pycache__`` and the checker test fixtures (which are
   deliberate violations).
2. **Link the project**: every file under ``src/repro`` is summarised
   (:mod:`repro.analysis.callgraph`) — from the incremental cache when
   its content hash matches, parsed otherwise — and the summaries are
   linked into a :class:`ProjectIndex`.  The index is always built over
   the *whole* of ``src/repro``, regardless of which paths were
   requested: whole-program rules need the whole program, and it is what
   makes analysing a subset of files return exactly the slice of a full
   run.
3. **Narrow** (``changed_only=True``): the changed-since-merge-base set
   is expanded to its reverse-dependency closure — touching
   ``harness/seeds.py`` re-analyses everything that can observe the
   change — then the work list is filtered to it.
4. **Analyse** each file — cached findings by content hash, a process
   pool for the misses — then run the whole-program checkers over the
   index, filter their findings to the analysed set, and honour inline
   suppressions through the index (summaries record suppression lines,
   so even a cache-hit file keeps its exemptions).
5. **Apply the baseline**: covered findings pass (marked ``baselined``),
   uncovered *error* findings fail the gate, and stale baseline entries
   are surfaced as warnings so the baseline only ratchets down.

Results are stable-sorted at every merge point, so neither worker
scheduling nor cache state ever shows in the report: a warm incremental
run is bit-identical to a cold full run.
"""

from __future__ import annotations

import ast
import dataclasses
import subprocess
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .base import Checker, ModuleSource
from .baseline import Baseline, BaselineEntry
from .cache import AnalysisCache, content_sha, rules_fingerprint
from .callgraph import ModuleSummary, ProjectIndex, extract_summary
from .findings import ERROR, Finding, sort_findings
from .registry import (
    build_checkers,
    build_project_checkers,
    checker_rule_ids,
    project_rule_ids,
)
from .suppressions import apply_suppressions, parse_suppressions

#: Roots scanned when no explicit paths are given.
DEFAULT_ROOTS = ("src/repro", "tests", "examples", "benchmarks", "tools")

#: The root the project index is always built over.
PROJECT_ROOT = "src/repro"

#: Repo-relative prefixes never scanned.  The fixture tree contains
#: intentional violations (the checkers' positive test cases).
GLOBAL_EXCLUDES = (
    "__pycache__",
    ".git/",
    "tests/analysis/fixtures/",
)


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor of *start* (default CWD) containing pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


def _excluded(relpath: str) -> bool:
    return any(
        part == "__pycache__" for part in relpath.split("/")
    ) or any(relpath.startswith(p) for p in GLOBAL_EXCLUDES if p.endswith("/"))


def discover_files(
    root: Path, paths: Optional[Sequence[str]] = None
) -> List[Tuple[Path, str]]:
    """``(absolute, repo-relative-posix)`` for every Python file in scope.

    *paths* entries may be files or directories, absolute or
    root-relative.  The result is sorted by relative path, so downstream
    processing is order-independent.
    """
    requested = list(paths) if paths else [r for r in DEFAULT_ROOTS
                                           if (root / r).exists()]
    seen = {}
    for entry in requested:
        candidate = Path(entry)
        if not candidate.is_absolute():
            candidate = root / entry
        candidate = candidate.resolve()
        if candidate.is_dir():
            found = sorted(candidate.rglob("*.py"))
        elif candidate.suffix == ".py" and candidate.exists():
            found = [candidate]
        else:
            found = []
        for path in found:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix().lstrip("/")
            if _excluded(rel):
                continue
            seen[rel] = path
    return [(seen[rel], rel) for rel in sorted(seen)]


# ----------------------------------------------------------------------
# Changed-only mode
# ----------------------------------------------------------------------
def changed_files(root: Path, base_ref: Optional[str] = None) -> Optional[List[str]]:
    """Repo-relative paths touched since the merge-base with *base_ref*.

    Tries ``origin/main`` then ``main`` when *base_ref* is not given, and
    includes uncommitted and untracked files.  Returns None when git is
    unavailable or the refs don't resolve — callers fall back to a full
    scan rather than silently linting nothing.
    """

    def git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", "-C", str(root), *args],
                capture_output=True, text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    merge_base = None
    for ref in ([base_ref] if base_ref else ["origin/main", "main"]):
        out = git("merge-base", "HEAD", ref)
        if out:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    committed = git("diff", "--name-only", merge_base, "HEAD")
    working = git("diff", "--name-only", "HEAD")
    untracked = git("ls-files", "--others", "--exclude-standard")
    if committed is None:
        return None
    names = set()
    for chunk in (committed, working or "", untracked or ""):
        names.update(line.strip() for line in chunk.splitlines() if line.strip())
    return sorted(n for n in names if n.endswith(".py"))


# ----------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------
def analyze_file(
    path: Path, relpath: str, checkers: Sequence[Checker]
) -> List[Finding]:
    """All findings for one file: checker hits minus suppressions, plus
    suppression-hygiene findings (SUP001/SUP002) and parse errors."""
    try:
        module = ModuleSource.parse(path, relpath)
    except SyntaxError as exc:
        return [Finding(
            rule="SYNTAX", severity=ERROR, path=relpath,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}", key="syntax-error",
            hint="fix the parse error",
        )]
    raw: List[Finding] = []
    active = set()
    for checker in checkers:
        if checker.applies_to(relpath):
            raw.extend(checker.check(module))
            active.add(checker.rule_id)
    suppressions, problems = parse_suppressions(module.source, relpath)
    kept, unused = apply_suppressions(
        raw, suppressions, relpath, active_rules=frozenset(active)
    )
    return sort_findings(kept + problems + unused)


def _analyze_one(args: Tuple[str, str, Tuple[str, ...]]) -> List[Finding]:
    """Process-pool worker: re-resolve checkers by rule id, then analyse."""
    path_str, relpath, rule_ids = args
    checkers = build_checkers(list(rule_ids))
    return analyze_file(Path(path_str), relpath, checkers)


# ----------------------------------------------------------------------
# Project index construction
# ----------------------------------------------------------------------
def summarize_source(relpath: str, data: bytes) -> ModuleSummary:
    """Summary of one file's content; unparsable files get an empty summary
    (the per-file pass reports them as SYNTAX)."""
    try:
        source = data.decode("utf-8")
        tree = ast.parse(source, filename=relpath)
    except (SyntaxError, UnicodeDecodeError, ValueError):
        return ModuleSummary(relpath=relpath, module=None)
    return extract_summary(relpath, source, tree)


def build_project_index(
    root: Path,
    cache: Optional[AnalysisCache] = None,
    shas: Optional[Dict[str, str]] = None,
) -> ProjectIndex:
    """Link the whole of ``src/repro`` into a :class:`ProjectIndex`.

    Summaries come from *cache* when the content hash matches; *shas*
    (when given) collects the observed ``relpath -> sha`` map so callers
    can reuse the hashes for the findings cache.
    """
    if cache is None:
        cache = AnalysisCache()
    summaries: List[ModuleSummary] = []
    if (root / PROJECT_ROOT).exists():
        for path, rel in discover_files(root, [PROJECT_ROOT]):
            data = path.read_bytes()
            sha = content_sha(data)
            if shas is not None:
                shas[rel] = sha
            summary = cache.get_summary(rel, sha)
            if summary is None:
                summary = summarize_source(rel, data)
                cache.put_summary(rel, sha, summary)
            summaries.append(summary)
    return ProjectIndex(summaries)


# ----------------------------------------------------------------------
# The full pass
# ----------------------------------------------------------------------
@dataclasses.dataclass
class AnalysisResult:
    """Outcome of one :func:`run_analysis` pass."""

    #: Unbaselined findings (errors here fail the gate) plus warnings.
    findings: List[Finding]
    #: Findings covered by the baseline (reported, never failing).
    baselined: List[Finding]
    #: Baseline entries that covered nothing (the violation was fixed).
    stale_entries: List[BaselineEntry]
    #: Number of files analysed.
    files_scanned: int
    #: Rule ids that ran.
    rules: List[str]
    #: Files whose per-file findings were recomputed this run.
    files_reanalyzed: int = 0
    #: Files served from the incremental cache.
    files_from_cache: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity != ERROR]

    @property
    def ok(self) -> bool:
        """True when the gate passes (no unbaselined errors)."""
        return not self.errors


def run_analysis(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    rules: Optional[List[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    changed_only: bool = False,
    base_ref: Optional[str] = None,
    cache_path: Optional[Path] = None,
) -> AnalysisResult:
    """Run the configured checkers over the tree and apply the baseline.

    ``cache_path=None`` (the library default) disables the incremental
    cache entirely; the CLI passes the repo-root cache file.
    """
    root = Path(root).resolve()  # relpaths must be computed against an
    # absolute root or discovery falls back to machine-dependent paths
    checkers = build_checkers(rules)
    project_checkers = build_project_checkers(rules)
    rule_ids = tuple(c.rule_id for c in checkers)
    fingerprint = rules_fingerprint(rule_ids)
    files = discover_files(root, paths)
    cache = AnalysisCache.load(cache_path)
    shas: Dict[str, str] = {}

    index = build_project_index(root, cache, shas) if project_checkers else None

    if changed_only:
        changed = changed_files(root, base_ref)
        if changed is not None:
            narrowed: Set[str] = set(changed)
            if index is not None:
                # A change to a module is observable by everything that
                # (transitively) imports it: expand before narrowing.
                narrowed = index.reverse_closure(sorted(narrowed))
            files = [(p, rel) for p, rel in files if rel in narrowed]

    all_findings: List[Finding] = []
    misses: List[Tuple[Path, str, str]] = []
    for path, rel in files:
        sha = shas.get(rel)
        if sha is None:
            sha = content_sha(path.read_bytes())
            shas[rel] = sha
        cached = cache.get_findings(rel, sha, fingerprint)
        if cached is not None:
            all_findings.extend(cached)
        else:
            misses.append((path, rel, sha))
    if jobs > 1 and len(misses) > 1:
        work = [(str(p), rel, rule_ids) for p, rel, _ in misses]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for (_, rel, sha), result in zip(
                misses, pool.map(_analyze_one, work, chunksize=8)
            ):
                cache.put_findings(rel, sha, fingerprint, result)
                all_findings.extend(result)
    else:
        for path, rel, sha in misses:
            result = analyze_file(path, rel, checkers)
            cache.put_findings(rel, sha, fingerprint, result)
            all_findings.extend(result)

    if index is not None:
        analyzed = {rel for _, rel in files}
        for project_checker in project_checkers:
            for finding in project_checker.check_project(index):
                if finding.path not in analyzed:
                    continue
                if index.suppressed(finding.path, finding.line, finding.rule):
                    continue
                all_findings.append(finding)

    cache.save(keep=set(shas))
    all_findings = sort_findings(all_findings)
    if baseline is None:
        baseline = Baseline()
    new, covered, stale = baseline.apply(all_findings)
    active = (
        sorted(set(rule_ids) | {c.rule_id for c in project_checkers})
        if rules is None
        else sorted(set(rules))
    )
    # An entry is only provably stale when this run actually looked where
    # it points: a narrowed run (paths / --changed-only / --rules) must
    # not report entries for unanalysed files or inactive rules as fixed.
    analyzed_rels = {rel for _, rel in files}
    active_set = set(active)
    stale = [
        e for e in stale
        if e.path in analyzed_rels and e.rule in active_set
    ]
    return AnalysisResult(
        findings=sort_findings(new),
        baselined=sort_findings(covered),
        stale_entries=stale,
        files_scanned=len(files),
        rules=active,
        files_reanalyzed=len(misses),
        files_from_cache=len(files) - len(misses),
    )


def default_rules() -> List[str]:
    """All registered rule ids — per-file and project (what a bare run runs)."""
    return sorted(set(checker_rule_ids()) | set(project_rule_ids()))
