"""Checker plumbing: per-module source bundle, import resolution, base class.

Checkers are small AST walkers.  The engine parses each file once into a
:class:`ModuleSource` and hands it to every checker whose path scope
matches; checkers yield :class:`~repro.analysis.findings.Finding` objects
and never mutate shared state, so per-file analysis parallelises freely.

The :class:`ImportMap` gives checkers *resolved* dotted names for call
targets: ``from time import perf_counter as pc`` followed by ``pc()``
resolves to ``time.perf_counter``, ``np.random.default_rng`` resolves to
``numpy.random.default_rng``.  Resolution is purely lexical (module-level
and function-level imports, no dataflow), which is exactly the right
fidelity for lint rules: a deliberately obfuscated call site is a code
smell the reviewer will catch.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple

from .findings import ERROR, Finding


class ImportMap:
    """Alias table built from a module's ``import`` statements."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    full = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self._aliases[local] = full
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Resolved dotted name of a ``Name``/``Attribute`` chain, or None.

        Returns None when the chain does not start at an imported name
        (e.g. ``self.rng.normal`` — a local object, not a module path).
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self._aliases.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Resolved dotted name of a call's target, or None."""
        return self.resolve(call.func)


class ModuleSource:
    """One parsed source file as seen by the checkers.

    ``relpath`` is repo-relative POSIX — the identity used in findings,
    baseline entries and path-scope matching.
    """

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self._imports: Optional[ImportMap] = None

    @property
    def imports(self) -> ImportMap:
        """The module's import alias table (built on first use)."""
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ModuleSource":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=relpath)
        return cls(path, relpath, source, tree)


def path_in_scope(
    relpath: str,
    include: Sequence[str],
    exclude: Sequence[str] = (),
) -> bool:
    """Prefix-scope test over repo-relative POSIX paths.

    A prefix ending in ``/`` matches a directory subtree; otherwise it must
    match a whole path exactly (single-file scopes like
    ``src/repro/perf.py``).
    """

    def matches(prefix: str) -> bool:
        if prefix.endswith("/"):
            return relpath.startswith(prefix)
        return relpath == prefix or relpath.startswith(prefix + "/")

    return any(matches(p) for p in include) and not any(matches(p) for p in exclude)


class Checker:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``include``/``exclude`` are repo-relative path prefixes defining where
    the rule applies (see :func:`path_in_scope`); ``invariant`` names the
    repo property the rule protects and feeds the documentation.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = ERROR
    hint: str = ""
    invariant: str = ""
    include: Tuple[str, ...] = ("src/repro/",)
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """True when this rule is in scope for *relpath*."""
        return path_in_scope(relpath, self.include, self.exclude)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for *module*.  Must be side-effect free."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        key: str,
        *,
        severity: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        return Finding(
            rule=self.rule_id,
            severity=severity if severity is not None else self.severity,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            key=key,
            hint=hint if hint is not None else self.hint,
        )
