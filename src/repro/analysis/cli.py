"""Command-line interface: ``python -m repro.analysis`` / ``tools/reprolint.py``.

Exit codes: 0 — gate passes (all findings fixed, baselined, or warnings);
1 — at least one unbaselined error; 2 — usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE_PATH, Baseline, BaselineError, merged_with_findings,
)
from .cache import DEFAULT_CACHE_PATH
from .engine import find_repo_root, run_analysis
from .registry import all_rule_ids, explain_rule, is_known_rule, rule_descriptions
from .report import exit_code, render_json, render_sarif, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Static analysis enforcing determinism, seed discipline and "
            "context hygiene across the simulator."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse (default: the standard roots)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE_PATH} under the root)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover current findings (placeholder "
             "reasons for new entries; stale entries dropped)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="analyse only files changed since the merge-base with "
             "--base (falls back to a full scan when git is unavailable)",
    )
    parser.add_argument(
        "--base", default=None,
        help="base ref for --changed-only (default: origin/main, then main)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = auto, 1 = serial)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule with its severity and protected invariant",
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule's invariant, a minimal violating example and the "
             "sanctioned fix, then exit",
    )
    parser.add_argument(
        "--cache", type=Path, default=None,
        help=f"incremental cache file (default: {DEFAULT_CACHE_PATH} under "
             "the root)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (analyse every file from scratch)",
    )
    return parser


def _resolve_jobs(requested: int, n_hint: int = 64) -> int:
    if requested > 0:
        return requested
    import os

    count = getattr(os, "process_cpu_count", os.cpu_count)() or 1
    return max(1, min(8, count, n_hint))


def _list_rules() -> str:
    lines = []
    for rule_id, info in rule_descriptions().items():
        lines.append(f"{rule_id}  [{info['severity']}]  {info['title']}")
        if info.get("invariant"):
            lines.append(f"        protects: {info['invariant']}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0

    if args.explain:
        try:
            sys.stdout.write(explain_rule(args.explain) + "\n")
        except KeyError:
            sys.stderr.write(
                f"reprolint: unknown rule {args.explain!r} "
                f"(known: {', '.join(all_rule_ids())})\n"
            )
            return 2
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(r for r in rules if not is_known_rule(r))
        if unknown:
            sys.stderr.write(
                f"reprolint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(all_rule_ids())})\n"
            )
            return 2

    root = (args.root or find_repo_root()).resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_PATH)
    try:
        baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    except BaselineError as exc:
        sys.stderr.write(f"reprolint: {exc}\n")
        return 2

    cache_path: Optional[Path] = None
    if not args.no_cache:
        cache_path = args.cache or (root / DEFAULT_CACHE_PATH)

    result = run_analysis(
        root,
        paths=args.paths or None,
        rules=rules,
        baseline=baseline,
        jobs=_resolve_jobs(args.jobs),
        changed_only=args.changed_only,
        base_ref=args.base,
        cache_path=cache_path,
    )

    if args.write_baseline:
        updated = merged_with_findings(
            baseline, result.findings + result.baselined
        )
        updated.save(baseline_path)
        sys.stderr.write(
            f"reprolint: wrote {len(updated)} baseline entries to "
            f"{baseline_path}\n"
        )
        return 0

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result, show_baselined=args.show_baselined)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report, encoding="utf-8")
        # Keep the one-line summary on stdout so CI logs stay readable.
        sys.stdout.write(render_text(result).rsplit("\n", 2)[-2] + "\n")
    else:
        sys.stdout.write(report)
    return exit_code(result)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
