"""The incremental-analysis cache: per-file results keyed by content hash.

Full-tree reprolint used to pay for every file on every run; with the
whole-program layer (parse, summarise, link) on the CI critical path the
engine now caches **per-file findings** and **per-file project
summaries** keyed by the SHA-256 of the file's *content* — never mtimes,
so a ``touch`` changes nothing and a checkout with fresh timestamps
still hits.  A warm run re-analyses only files whose bytes changed; the
whole-program propagation (cheap graph work over the summaries) reruns
every time, which is what makes incremental findings bit-identical to a
cold run.

Invalidation is deliberately coarse where correctness demands it:

* the cache carries a **salt** combining the cache format version, the
  summary extractor version and :data:`CHECKERS_VERSION` (bumped when
  any rule's semantics change) — a mismatch drops the cache wholesale;
* cached findings are additionally keyed by the **rule fingerprint** of
  the run (sorted rule ids), so ``--rules DET001`` and a full run never
  serve each other's results;
* entries for files that vanished are pruned on save.

The cache file (default ``.reprolint-cache.json`` at the repo root) is
a plain-JSON private artifact: gitignored, safe to delete at any time,
written atomically (temp file + rename) so a crashed run never leaves a
torn cache behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from .callgraph import SUMMARY_VERSION, ModuleSummary
from .findings import Finding

CACHE_VERSION = 1

#: Bump when any checker's semantics change: cached findings produced by
#: older rules must not survive into a run with the new ones.
CHECKERS_VERSION = 1

#: Default location, relative to the repo root (gitignored).
DEFAULT_CACHE_PATH = ".reprolint-cache.json"


def content_sha(data: bytes) -> str:
    """SHA-256 hex digest of file content — the only cache key for files."""
    return hashlib.sha256(data).hexdigest()


def rules_fingerprint(rule_ids: "list[str] | tuple[str, ...]") -> str:
    """Stable fingerprint of the rule set a findings entry was made under."""
    return ",".join(sorted(set(rule_ids)))


def _salt() -> str:
    return f"v{CACHE_VERSION}/summary{SUMMARY_VERSION}/checkers{CHECKERS_VERSION}"


class AnalysisCache:
    """Per-file findings and summaries, keyed by content hash.

    A ``path=None`` cache is a valid always-miss cache that never writes
    — the engine uses it when caching is disabled, so there is a single
    code path.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._files: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Optional[Path]) -> "AnalysisCache":
        """Load the cache at *path*; missing/corrupt/stale files start empty."""
        cache = cls(path)
        if path is None or not path.exists():
            return cache
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cache
        if not isinstance(data, dict) or data.get("salt") != _salt():
            return cache
        files = data.get("files")
        if isinstance(files, dict):
            cache._files = files
        return cache

    def save(self, keep: Optional["set[str]"] = None) -> None:
        """Atomically persist the cache, pruning entries not in *keep*."""
        if self.path is None or not self._dirty:
            return
        if keep is not None:
            self._files = {r: e for r, e in self._files.items() if r in keep}
        payload = {"salt": _salt(), "files": self._files}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def get_findings(
        self, relpath: str, sha: str, rules_fp: str
    ) -> Optional[List[Finding]]:
        entry = self._files.get(relpath)
        if (
            entry is None
            or entry.get("sha") != sha
            or entry.get("rules_fp") != rules_fp
            or "findings" not in entry
        ):
            self.misses += 1
            return None
        try:
            found = [Finding.from_dict(raw) for raw in entry["findings"]]
        except (TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return found

    def put_findings(
        self, relpath: str, sha: str, rules_fp: str, findings: List[Finding]
    ) -> None:
        entry = self._entry(relpath, sha)
        entry["rules_fp"] = rules_fp
        entry["findings"] = [f.to_dict() for f in findings]
        self._dirty = True

    # ------------------------------------------------------------------
    # Project summaries
    # ------------------------------------------------------------------
    def get_summary(self, relpath: str, sha: str) -> Optional[ModuleSummary]:
        entry = self._files.get(relpath)
        if entry is None or entry.get("sha") != sha or "summary" not in entry:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (TypeError, ValueError):
            return None

    def put_summary(self, relpath: str, sha: str, summary: ModuleSummary) -> None:
        entry = self._entry(relpath, sha)
        entry["summary"] = summary.to_dict()
        self._dirty = True

    # ------------------------------------------------------------------
    def _entry(self, relpath: str, sha: str) -> Dict[str, Any]:
        entry = self._files.get(relpath)
        if entry is None or entry.get("sha") != sha:
            # Content changed: every derived artifact of the old bytes dies.
            entry = {"sha": sha}
            self._files[relpath] = entry
        return entry
