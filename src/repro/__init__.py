"""Reproduction of *A Framework for Node-Level Fault Tolerance in
Distributed Real-Time Systems* (Aidemark, Folkesson, Karlsson — DSN 2005).

The library has two halves:

* an **execution stack** — discrete-event simulator, COTS-processor model,
  real-time kernel with temporal error masking (TEM), fault injection,
  FlexRay-like communication, FS/NLFT node semantics and the brake-by-wire
  example application;
* an **analysis stack** — a SHARPE-style reliability engine (CTMCs, RBDs,
  fault trees, hierarchical composition) and the paper's brake-by-wire
  dependability models.

Quick orientation:

>>> from repro.models import BbwParameters, build_bbw_system
>>> model = build_bbw_system(BbwParameters.paper(), "nlft", "degraded")
>>> round(model.reliability(8760.0), 2)   # one year
0.71

See README.md, DESIGN.md and the ``examples/`` directory.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    apps,
    core,
    cpu,
    experiments,
    faults,
    kernel,
    models,
    net,
    node,
    obs,
    reliability,
    sim,
)
from .errors import ReproError  # noqa: F401
from .types import Result  # noqa: F401

__all__ = [
    "ReproError",
    "Result",
    "apps",
    "core",
    "cpu",
    "experiments",
    "faults",
    "kernel",
    "models",
    "net",
    "node",
    "obs",
    "reliability",
    "sim",
]
