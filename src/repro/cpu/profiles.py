"""Fault-manifestation profiles for callable (non-ISA) tasks.

Two task representations coexist in the library:

* **Machine tasks** run real mini-ISA programs on :class:`~repro.cpu.machine.
  Machine`; injected bit flips produce emergent behaviour.  They are the
  high-fidelity path used to *estimate* coverage parameters (experiment E5).
* **Callable tasks** are plain Python functions.  They are orders of
  magnitude faster — the right choice for long distributed simulations — but
  a bit flip cannot act on Python state directly.  For them, a
  :class:`ManifestationProfile` maps an injected fault to its architectural
  *effect*, with probabilities calibrated against the machine-level
  campaigns (and ultimately against the fault-injection literature the paper
  cites [7, 8]).

The effect taxonomy follows Section 2 of the paper.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict

import numpy as np

from ..errors import ConfigurationError


class FaultEffect(enum.Enum):
    """How an activated fault manifests during a task execution."""

    #: Fault overwritten or latent — no observable effect.
    NO_EFFECT = "no_effect"
    #: Wrong computation result; only comparison/voting can catch it.
    WRONG_RESULT = "wrong_result"
    #: CPU hardware exception (illegal opcode, address/bus error, trap).
    HARDWARE_EXCEPTION = "hardware_exception"
    #: Runaway/slow execution; caught by the budget timer.
    TIMING_OVERRUN = "timing_overrun"
    #: Control flow skips the comparison/vote and emits an unchecked result
    #: (the dangerous rare case of Section 2.7).
    UNDETECTED_WRONG_OUTPUT = "undetected_wrong_output"
    #: Fault hits the kernel's own execution (Section 2.2 strategy 3).
    KERNEL_CORRUPTION = "kernel_corruption"


@dataclasses.dataclass(frozen=True)
class ManifestationProfile:
    """A categorical distribution over :class:`FaultEffect`.

    The default numbers follow the experimental findings the paper builds
    on: most activated transients either vanish (overwritten/latent) or
    corrupt data (caught by TEM comparison); a substantial fraction raise
    hardware exceptions; timing overruns and vote-bypassing control-flow
    errors are rare; about 5% of CPU time — and hence of uniformly arriving
    faults — hits the kernel [10].
    """

    probabilities: Dict[FaultEffect, float] = dataclasses.field(
        default_factory=lambda: {
            FaultEffect.NO_EFFECT: 0.40,
            FaultEffect.WRONG_RESULT: 0.30,
            FaultEffect.HARDWARE_EXCEPTION: 0.20,
            FaultEffect.TIMING_OVERRUN: 0.02,
            FaultEffect.UNDETECTED_WRONG_OUTPUT: 0.01,
            FaultEffect.KERNEL_CORRUPTION: 0.07,
        }
    )

    def __post_init__(self) -> None:
        total = sum(self.probabilities.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"manifestation probabilities sum to {total}, expected 1"
            )
        if any(p < 0 for p in self.probabilities.values()):
            raise ConfigurationError("manifestation probabilities must be non-negative")

    def sample(self, rng: np.random.Generator) -> FaultEffect:
        """Draw one effect according to the profile."""
        effects = list(self.probabilities)
        weights = np.array([self.probabilities[e] for e in effects])
        index = rng.choice(len(effects), p=weights / weights.sum())
        return effects[int(index)]

    @classmethod
    def benign(cls) -> "ManifestationProfile":
        """All faults vanish — useful as a test baseline."""
        probabilities = {effect: 0.0 for effect in FaultEffect}
        probabilities[FaultEffect.NO_EFFECT] = 1.0
        return cls(probabilities=probabilities)

    @classmethod
    def data_only(cls) -> "ManifestationProfile":
        """Every fault corrupts data (exercises TEM comparison paths)."""
        probabilities = {effect: 0.0 for effect in FaultEffect}
        probabilities[FaultEffect.WRONG_RESULT] = 1.0
        return cls(probabilities=probabilities)

    @classmethod
    def from_campaign(cls, counts: Dict[FaultEffect, int]) -> "ManifestationProfile":
        """Build a profile from observed machine-level campaign counts."""
        total = sum(counts.values())
        if total <= 0:
            raise ConfigurationError("campaign counts are empty")
        probabilities = {effect: counts.get(effect, 0) / total for effect in FaultEffect}
        return cls(probabilities=probabilities)
