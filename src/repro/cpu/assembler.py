"""A two-pass assembler for the mini ISA.

Source syntax (one instruction per line)::

    ; comments start with ';' or '#'
    start:  MOVEI  D0, 10        ; rd, immediate
            LOAD   D1, A0, 4     ; rd, base register, offset
            ADD    D2, D0, D1    ; rd, ra, rb
            CMPI   D2, 0
            BEQ    done          ; labels resolve to pc-relative offsets
            STORE  D2, A1, 0
    done:   HALT

* Registers: ``D0``-``D7``, ``A0``-``A6``, ``SP``.
* Immediates: decimal or ``0x`` hexadecimal.
* ``.word <value>`` emits a literal data word (constants in ROM).
* Branch targets may be labels (PC-relative) or numeric offsets; ``JSR``/
  ``JMP``-by-label use absolute addresses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..errors import ProgramError
from .isa import BRANCHES, OPCODES, REGISTER_INDEX, THREE_REG, TWO_REG_IMM, encode


@dataclasses.dataclass(frozen=True)
class AssembledProgram:
    """The output of :func:`assemble`.

    Attributes
    ----------
    words:
        Encoded instruction/data words, to be loaded at ``origin``.
    labels:
        Label -> absolute word address.
    origin:
        Load address of the first word.
    """

    words: List[int]
    labels: Dict[str, int]
    origin: int

    @property
    def size(self) -> int:
        return len(self.words)

    def address_of(self, label: str) -> int:
        """Absolute address of *label*; raises for unknown labels."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"unknown label {label!r}") from None


def _strip(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_operand(token: str) -> Tuple[str, int]:
    """Classify an operand token: ('reg', index) | ('imm', value) | ('label', _)."""
    token = token.strip()
    upper = token.upper()
    if upper in REGISTER_INDEX:
        return "reg", REGISTER_INDEX[upper]
    try:
        return "imm", int(token, 0)
    except ValueError:
        if token and (token[0].isalpha() or token[0] == "_"):
            return "label", 0
        raise ProgramError(f"cannot parse operand {token!r}") from None


def assemble(source: str, origin: int = 0) -> AssembledProgram:
    """Assemble *source* into an :class:`AssembledProgram`.

    Two passes: the first assigns addresses to labels, the second encodes
    instructions with label references resolved.
    """
    lines = source.splitlines()
    # Pass 1: label addresses.
    labels: Dict[str, int] = {}
    address = origin
    parsed: List[Tuple[int, str, List[str]]] = []  # (address, mnemonic, operands)
    for line_number, raw in enumerate(lines, start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label:
                raise ProgramError(f"line {line_number}: empty label")
            if label in labels:
                raise ProgramError(f"line {line_number}: duplicate label {label!r}")
            labels[label] = address
            line = line.strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        mnemonic = parts[0].upper()
        operands = parts[1:]
        if mnemonic != ".WORD" and mnemonic not in OPCODES:
            raise ProgramError(f"line {line_number}: unknown mnemonic {mnemonic!r}")
        parsed.append((address, mnemonic, operands))
        address += 1
    # Pass 2: encoding.
    words: List[int] = []
    for address, mnemonic, operands in parsed:
        words.append(_encode_line(address, mnemonic, operands, labels))
    return AssembledProgram(words=words, labels=labels, origin=origin)


def _encode_line(
    address: int, mnemonic: str, operands: List[str], labels: Dict[str, int]
) -> int:
    def resolve(token: str, relative: bool) -> int:
        kind, value = _parse_operand(token)
        if kind == "label":
            target = labels.get(token)
            if target is None:
                raise ProgramError(f"undefined label {token!r}")
            return target - (address + 1) if relative else target
        if kind == "imm":
            return value
        raise ProgramError(f"{mnemonic}: expected immediate/label, got register {token!r}")

    def reg(token: str) -> int:
        kind, value = _parse_operand(token)
        if kind != "reg":
            raise ProgramError(f"{mnemonic}: expected register, got {token!r}")
        return value

    def need(count: int) -> None:
        if len(operands) != count:
            raise ProgramError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}: {operands}"
            )

    if mnemonic == ".WORD":
        need(1)
        return resolve(operands[0], relative=False) & 0xFFFF_FFFF
    if mnemonic in ("NOP", "HALT", "RTS"):
        need(0)
        return encode(mnemonic)
    if mnemonic == "MOVE":
        need(2)
        return encode("MOVE", rd=reg(operands[0]), ra=reg(operands[1]))
    if mnemonic in ("MOVEI", "MOVEHI"):
        need(2)
        return encode(mnemonic, rd=reg(operands[0]), imm=resolve(operands[1], relative=False))
    if mnemonic in ("PUSH", "POP"):
        need(1)
        return encode(mnemonic, rd=reg(operands[0]))
    if mnemonic in THREE_REG and mnemonic != "CMP":
        need(3)
        return encode(mnemonic, rd=reg(operands[0]), ra=reg(operands[1]), rb=reg(operands[2]))
    if mnemonic == "CMP":
        need(2)
        return encode("CMP", ra=reg(operands[0]), rb=reg(operands[1]))
    if mnemonic == "CMPI":
        need(2)
        return encode("CMPI", ra=reg(operands[0]), imm=resolve(operands[1], relative=False))
    if mnemonic in TWO_REG_IMM:
        need(3)
        return encode(
            mnemonic,
            rd=reg(operands[0]),
            ra=reg(operands[1]),
            imm=resolve(operands[2], relative=False),
        )
    if mnemonic in BRANCHES:
        need(1)
        return encode(mnemonic, imm=resolve(operands[0], relative=True))
    if mnemonic == "JMP":
        need(1)
        return encode("JMP", ra=reg(operands[0]))
    if mnemonic == "JSR":
        need(1)
        return encode("JSR", imm=resolve(operands[0], relative=False))
    if mnemonic == "SIG":
        need(1)
        return encode("SIG", imm=resolve(operands[0], relative=False))
    raise ProgramError(f"unhandled mnemonic {mnemonic!r}")  # pragma: no cover
