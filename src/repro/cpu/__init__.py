"""Simulated COTS processor: registers, ECC memory, MMU, mini ISA, EDMs.

This package substitutes the physical Thor / Motorola 68340 targets of the
paper's prototype studies [7, 8]; see DESIGN.md for the substitution
rationale.
"""

from .assembler import AssembledProgram, assemble
from .exceptions import (
    AddressError,
    BusError,
    DivisionByZeroError,
    EccUncorrectableError,
    HardwareException,
    IllegalOpcodeError,
    PrivilegeViolationError,
    WatchdogError,
)
from .isa import Instruction, decode, encode
from .machine import Machine, RunResult
from .memory import EccStatistics, Memory
from .mmu import ACCESS_EXECUTE, ACCESS_READ, ACCESS_WRITE, KERNEL_DOMAIN, Mmu, Region
from .profiles import FaultEffect, ManifestationProfile
from .registers import (
    ALL_REGISTERS,
    DATA_REGISTERS,
    WORD_BITS,
    WORD_MASK,
    Context,
    RegisterFile,
)

__all__ = [
    "ACCESS_EXECUTE",
    "ACCESS_READ",
    "ACCESS_WRITE",
    "ALL_REGISTERS",
    "AddressError",
    "AssembledProgram",
    "BusError",
    "Context",
    "DATA_REGISTERS",
    "DivisionByZeroError",
    "EccStatistics",
    "EccUncorrectableError",
    "FaultEffect",
    "HardwareException",
    "IllegalOpcodeError",
    "Instruction",
    "KERNEL_DOMAIN",
    "Machine",
    "ManifestationProfile",
    "Memory",
    "Mmu",
    "PrivilegeViolationError",
    "Region",
    "RegisterFile",
    "RunResult",
    "WORD_BITS",
    "WORD_MASK",
    "WatchdogError",
    "assemble",
    "decode",
    "encode",
]
