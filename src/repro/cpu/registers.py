"""Register file of the simulated processor.

The register layout follows the Motorola 68k family used in the paper's
prototype studies [8]: eight data registers D0-D7, seven address registers
A0-A6, a stack pointer SP (= A7), the program counter PC and a status
register SR with condition-code flags.

All registers are 32-bit; arithmetic wraps modulo 2**32.  The register file
supports bit-exact fault injection (:meth:`RegisterFile.flip_bit`) and full
context save/restore, which the NLFT kernel uses when a hardware EDM fires
(Section 2.5: "the task's CPU state context ... is restored to the initial
conditions from information stored in the task control block").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List

from ..errors import MachineError

WORD_MASK = 0xFFFF_FFFF
WORD_BITS = 32

#: Register names in canonical order.
DATA_REGISTERS = tuple(f"D{i}" for i in range(8))
ADDRESS_REGISTERS = tuple(f"A{i}" for i in range(7))
SPECIAL_REGISTERS = ("SP", "PC", "SR")
ALL_REGISTERS = DATA_REGISTERS + ADDRESS_REGISTERS + SPECIAL_REGISTERS

#: Status-register flag bit positions.
FLAG_ZERO = 0
FLAG_NEGATIVE = 1
FLAG_CARRY = 2
FLAG_OVERFLOW = 3


@dataclasses.dataclass(frozen=True, slots=True)
class Context:
    """An immutable snapshot of the full register file.

    Stored in the task control block at job start; restoring it implements
    the paper's recovery for hardware-detected errors.
    """

    values: Dict[str, int]

    def __getitem__(self, name: str) -> int:
        return self.values[name]


class RegisterFile:
    """Mutable 32-bit register file with fault-injection support."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in ALL_REGISTERS}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, name: str) -> int:
        """Read a register by name; raises :class:`MachineError` if unknown."""
        try:
            return self._values[name]
        except KeyError:
            raise MachineError(f"unknown register {name!r}") from None

    def write(self, name: str, value: int) -> None:
        """Write a register, truncating to 32 bits."""
        if name not in self._values:
            raise MachineError(f"unknown register {name!r}")
        self._values[name] = value & WORD_MASK

    def __getitem__(self, name: str) -> int:
        return self.read(name)

    def __setitem__(self, name: str, value: int) -> None:
        self.write(name, value)

    def names(self) -> Iterator[str]:
        """All register names in canonical order."""
        return iter(ALL_REGISTERS)

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------
    def get_flag(self, bit: int) -> bool:
        """Read one SR condition-code flag."""
        return bool(self._values["SR"] >> bit & 1)

    def set_flag(self, bit: int, value: bool) -> None:
        """Write one SR condition-code flag."""
        sr = self._values["SR"]
        if value:
            sr |= 1 << bit
        else:
            sr &= ~(1 << bit)
        self._values["SR"] = sr & WORD_MASK

    def update_arith_flags(self, result: int) -> None:
        """Set Z/N from a (possibly un-truncated) arithmetic result."""
        truncated = result & WORD_MASK
        self.set_flag(FLAG_ZERO, truncated == 0)
        self.set_flag(FLAG_NEGATIVE, bool(truncated >> (WORD_BITS - 1) & 1))
        self.set_flag(FLAG_CARRY, result != truncated and result >= 0 or result < 0)

    # ------------------------------------------------------------------
    # Context save/restore
    # ------------------------------------------------------------------
    def save_context(self) -> Context:
        """Snapshot every register (for the task control block)."""
        return Context(values=dict(self._values))

    def restore_context(self, context: Context) -> None:
        """Restore a previously saved snapshot."""
        for name in ALL_REGISTERS:
            self._values[name] = context.values[name] & WORD_MASK

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, name: str, bit: int) -> int:
        """Flip one bit of a register (transient-fault injection).

        Returns the new register value.  Raises for unknown registers or
        out-of-range bit positions so campaigns fail loudly on bad target
        specifications.
        """
        if not 0 <= bit < WORD_BITS:
            raise MachineError(f"bit index {bit} outside 0..{WORD_BITS - 1}")
        value = self.read(name) ^ (1 << bit)
        self.write(name, value)
        return value

    def reset(self) -> None:
        """Zero every register (hardware reset)."""
        for name in ALL_REGISTERS:
            self._values[name] = 0

    def snapshot_values(self) -> List[int]:
        """Register values in canonical order (cheap comparison helper)."""
        return [self._values[name] for name in ALL_REGISTERS]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = {n: v for n, v in self._values.items() if v}
        return f"RegisterFile({interesting})"
