"""The simulated COTS processor: fetch/decode/execute with EDM hooks.

The :class:`Machine` ties together the register file, ECC memory and MMU and
executes mini-ISA programs.  It is deliberately *not* cycle-accurate below
the instruction level — the paper's analysis needs faithful *error
semantics*, not micro-architecture:

* every hardware-detectable error raises a
  :class:`~repro.cpu.exceptions.HardwareException` (the EDMs of Table 1);
* every instruction advances a cycle counter from which the kernel derives
  execution times;
* all architectural state (registers, memory) is open to bit-exact fault
  injection.

Running a program returns a :class:`RunResult`; the kernel and the TEM
executor inspect it to drive comparison, voting and recovery.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from .. import perf
from ..errors import MachineError, MachineHalted, ProgramError
from .assembler import AssembledProgram
from .exceptions import (
    DivisionByZeroError,
    HardwareException,
    IllegalOpcodeError,
)
from .isa import (
    _DECODE_CACHE,
    REGISTER_NAMES,
    Instruction,
    decode,
    decode_cached,
    register_name,
    sign_extend_16,
)
from .memory import Memory
from .mmu import ACCESS_EXECUTE, ACCESS_READ, ACCESS_WRITE, KERNEL_DOMAIN, Mmu
from .registers import (
    FLAG_NEGATIVE,
    FLAG_ZERO,
    WORD_MASK,
    Context,
    RegisterFile,
)

#: Default machine geometry (words).
DEFAULT_MEMORY_WORDS = 16_384
DEFAULT_ROM_WORDS = 4_096

#: Default clock: 1 cycle = 1 simulator tick (1 us), i.e. a 1 MHz machine.
#: Slow by modern standards but keeps numbers easy to read in traces; the
#: kernel scales task WCETs accordingly.
DEFAULT_CYCLE_TICKS = 1


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


@dataclasses.dataclass(slots=True)
class RunResult:
    """Outcome of one :meth:`Machine.run` invocation.

    Attributes
    ----------
    halted:
        True if the program reached HALT normally.
    exception:
        The hardware exception that stopped execution, if any.
    steps / cycles:
        Instructions executed and cycles consumed.
    """

    halted: bool
    exception: Optional[HardwareException]
    steps: int
    cycles: int

    @property
    def ok(self) -> bool:
        """True for a clean HALT with no exception."""
        return self.halted and self.exception is None


#: Mnemonic -> Machine handler-method name (fast-path dispatch table).
_FAST_HANDLERS: Dict[str, str] = {
    "NOP": "_fx_nop",
    "HALT": "_fx_halt",
    "MOVE": "_fx_move",
    "MOVEI": "_fx_movei",
    "MOVEHI": "_fx_movehi",
    "LOAD": "_fx_load",
    "STORE": "_fx_store",
    "PUSH": "_fx_push",
    "POP": "_fx_pop",
    "ADD": "_fx_add",
    "ADDI": "_fx_addi",
    "SUB": "_fx_sub",
    "SUBI": "_fx_subi",
    "MUL": "_fx_mul",
    "MULI": "_fx_muli",
    "DIV": "_fx_div",
    "DIVI": "_fx_divi",
    "AND": "_fx_and",
    "ANDI": "_fx_andi",
    "OR": "_fx_or",
    "ORI": "_fx_ori",
    "XOR": "_fx_xor",
    "XORI": "_fx_xori",
    "SHL": "_fx_shl",
    "SHR": "_fx_shr",
    "CMP": "_fx_cmp",
    "CMPI": "_fx_cmpi",
    "BRA": "_fx_bra",
    "BEQ": "_fx_beq",
    "BNE": "_fx_bne",
    "BLT": "_fx_blt",
    "BGE": "_fx_bge",
    "JMP": "_fx_jmp",
    "JSR": "_fx_jsr",
    "RTS": "_fx_rts",
    "SIG": "_fx_sig",
}


class Machine:
    """A simulated single-core COTS processor.

    Parameters
    ----------
    memory_words / rom_words:
        Physical memory size and the read-only prefix reserved for code and
        constants.
    ecc_enabled / mmu_enabled:
        Toggle the corresponding EDMs (fault-injection ablations).
    cycle_ticks:
        Simulator ticks per CPU cycle (links machine time to DES time).
    fast:
        Select the fast execution path (decoded-instruction cache, opcode
        dispatch table, batched cycle accounting in :meth:`run`).  ``None``
        (the default) resolves from the global :mod:`repro.perf` switch.
        Fast and reference paths are bit-identical in every architectural
        effect — the differential test gate enforces it.
    """

    def __init__(
        self,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        rom_words: int = DEFAULT_ROM_WORDS,
        ecc_enabled: bool = True,
        mmu_enabled: bool = True,
        cycle_ticks: int = DEFAULT_CYCLE_TICKS,
        fast: Optional[bool] = None,
    ) -> None:
        self.registers = RegisterFile()
        self.memory = Memory(memory_words, rom_limit=rom_words, ecc_enabled=ecc_enabled)
        self.mmu = Mmu(enabled=mmu_enabled)
        self.cycle_ticks = int(cycle_ticks)
        self.cycle_count = 0
        self.instruction_count = 0
        self.signature = 0
        self._halted = False
        self._exception_log: List[HardwareException] = []
        self.fast = perf.fast_enabled() if fast is None else bool(fast)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load_program(self, program: AssembledProgram) -> None:
        """Copy an assembled program into ROM (does not seal)."""
        self.memory.load_rom(program.origin, program.words)

    def seal_rom(self) -> None:
        """Freeze the code/constant region against writes."""
        self.memory.seal_rom()

    # ------------------------------------------------------------------
    # State control
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """True after HALT; cleared by :meth:`prepare`."""
        return self._halted

    def prepare(self, entry: int, stack_top: Optional[int] = None) -> None:
        """Arm the machine to run from *entry* with a fresh stack.

        The register file is cleared (a job starts from a defined context,
        which is also what the TCB snapshot captures), PC set to *entry*, SP
        to *stack_top* (default: top of memory), and the control-flow
        signature accumulator reset.
        """
        self.registers.reset()
        self.registers["PC"] = entry
        self.registers["SP"] = stack_top if stack_top is not None else self.memory.size_words
        self.signature = 0
        self._halted = False

    def save_context(self) -> Context:
        """Snapshot the register file (for the task control block)."""
        return self.registers.save_context()

    def restore_context(self, context: Context) -> None:
        """Restore a register snapshot (recovery from CPU-detected errors)."""
        self.registers.restore_context(context)
        self._halted = False

    @property
    def exception_log(self) -> List[HardwareException]:
        """All hardware exceptions raised so far (coverage accounting)."""
        return self._exception_log

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fetch, decode and execute one instruction.

        Raises the corresponding :class:`HardwareException` when an EDM
        fires; the exception is also appended to :attr:`exception_log`.
        """
        if self._halted:
            raise MachineHalted("machine is halted; call prepare() first")
        try:
            if self.fast:
                cycles = self._fetch_execute_fast()
                self.instruction_count += 1
                self.cycle_count += cycles
            else:
                self._step_inner()
        except HardwareException as exc:
            self._exception_log.append(exc)
            raise

    def _step_inner(self) -> None:
        pc = self.registers["PC"]
        self.mmu.check(pc, ACCESS_EXECUTE)
        word = self.memory.read(pc)
        instruction = decode(word)
        if instruction is None:
            raise IllegalOpcodeError(
                f"illegal opcode {word >> 24 & 0xFF:#04x} at address {pc:#x}",
                address=pc,
            )
        self.registers["PC"] = (pc + 1) & WORD_MASK
        self._execute(instruction)
        self.instruction_count += 1
        self.cycle_count += instruction.cycles

    def run(
        self, max_steps: int = 1_000_000, stop_on_exception: bool = True
    ) -> RunResult:
        """Run until HALT, a hardware exception, or *max_steps*.

        *max_steps* models the kernel's execution-time budget at machine
        level; exceeding it returns a result with ``halted=False`` and no
        exception, which the budget-timer machinery converts into a timing
        EDM event.
        """
        if self.fast:
            return self._run_fast(max_steps, stop_on_exception)
        start_steps = self.instruction_count
        start_cycles = self.cycle_count
        exception: Optional[HardwareException] = None
        while not self._halted and self.instruction_count - start_steps < max_steps:
            try:
                self.step()
            except HardwareException as exc:
                exception = exc
                if stop_on_exception:
                    break
        return RunResult(
            halted=self._halted,
            exception=exception,
            steps=self.instruction_count - start_steps,
            cycles=self.cycle_count - start_cycles,
        )

    def _run_fast(self, max_steps: int, stop_on_exception: bool) -> RunResult:
        """Fast :meth:`run` loop: inlined stepping, batched counter update.

        The instruction/cycle counters are accumulated in locals and flushed
        once (also on exception propagation), so the loop pays two integer
        adds per instruction instead of two attribute round-trips.  A failed
        instruction contributes neither steps nor cycles — exactly as in the
        reference path, where the counters are bumped only after a
        successful execute.
        """
        steps = 0
        cycles = 0
        exception: Optional[HardwareException] = None
        fetch_execute = self._fetch_execute_fast
        log = self._exception_log
        try:
            while not self._halted and steps < max_steps:
                try:
                    cost = fetch_execute()
                except HardwareException as exc:
                    log.append(exc)
                    exception = exc
                    if stop_on_exception:
                        break
                else:
                    steps += 1
                    cycles += cost
        finally:
            self.instruction_count += steps
            self.cycle_count += cycles
        return RunResult(
            halted=self._halted,
            exception=exception,
            steps=steps,
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------
    def _execute(self, ins: Instruction) -> None:
        name = ins.mnemonic
        regs = self.registers
        if name == "NOP":
            return
        if name == "HALT":
            self._halted = True
            return
        if name == "MOVE":
            regs[register_name(ins.rd)] = regs[register_name(ins.ra)]
            return
        if name == "MOVEI":
            regs[register_name(ins.rd)] = ins.imm & WORD_MASK
            return
        if name == "MOVEHI":
            low = regs[register_name(ins.rd)] & 0xFFFF
            regs[register_name(ins.rd)] = ((ins.imm & 0xFFFF) << 16) | low
            return
        if name == "LOAD":
            address = (regs[register_name(ins.ra)] + ins.imm) & WORD_MASK
            self.mmu.check(address, ACCESS_READ)
            regs[register_name(ins.rd)] = self.memory.read(address)
            return
        if name == "STORE":
            address = (regs[register_name(ins.ra)] + ins.imm) & WORD_MASK
            self.mmu.check(address, ACCESS_WRITE)
            self.memory.write(address, regs[register_name(ins.rd)])
            return
        if name == "PUSH":
            sp = (regs["SP"] - 1) & WORD_MASK
            self.mmu.check(sp, ACCESS_WRITE)
            self.memory.write(sp, regs[register_name(ins.rd)])
            regs["SP"] = sp
            return
        if name == "POP":
            sp = regs["SP"]
            self.mmu.check(sp, ACCESS_READ)
            regs[register_name(ins.rd)] = self.memory.read(sp)
            regs["SP"] = (sp + 1) & WORD_MASK
            return
        if name in ("ADD", "SUB", "MUL", "DIV", "AND", "OR", "XOR"):
            a = regs[register_name(ins.ra)]
            b = regs[register_name(ins.rb)]
            regs[register_name(ins.rd)] = self._alu(name, a, b)
            return
        if name in ("ADDI", "SUBI", "MULI", "DIVI", "ANDI", "ORI", "XORI"):
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = self._alu(name[:-1], a, ins.imm & WORD_MASK)
            return
        if name == "SHL":
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = (a << (ins.imm & 31)) & WORD_MASK
            return
        if name == "SHR":
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = (a & WORD_MASK) >> (ins.imm & 31)
            return
        if name == "CMP":
            self._compare(regs[register_name(ins.ra)], regs[register_name(ins.rb)])
            return
        if name == "CMPI":
            self._compare(regs[register_name(ins.ra)], ins.imm & WORD_MASK)
            return
        if name in ("BRA", "BEQ", "BNE", "BLT", "BGE"):
            if self._branch_taken(name):
                regs["PC"] = (regs["PC"] + ins.imm) & WORD_MASK
            return
        if name == "JMP":
            regs["PC"] = regs[register_name(ins.ra)]
            return
        if name == "JSR":
            sp = (regs["SP"] - 1) & WORD_MASK
            self.mmu.check(sp, ACCESS_WRITE)
            self.memory.write(sp, regs["PC"])
            regs["SP"] = sp
            regs["PC"] = ins.imm & WORD_MASK
            return
        if name == "RTS":
            sp = regs["SP"]
            self.mmu.check(sp, ACCESS_READ)
            regs["PC"] = self.memory.read(sp)
            regs["SP"] = (sp + 1) & WORD_MASK
            return
        if name == "SIG":
            # Control-flow signature checkpoint (see repro.core.control_flow).
            self.signature = (self.signature * 31 + (ins.imm & 0xFFFF)) & WORD_MASK
            return
        raise ProgramError(f"decoder produced unexecutable instruction {ins}")

    def _alu(self, op: str, a: int, b: int) -> int:
        if op == "ADD":
            result = a + b
        elif op == "SUB":
            result = a - b
        elif op == "MUL":
            result = _to_signed(a) * _to_signed(b)
        elif op == "DIV":
            if (b & WORD_MASK) == 0:
                raise DivisionByZeroError("integer division by zero")
            result = int(_to_signed(a) / _to_signed(b))  # trunc toward zero
        elif op == "AND":
            result = a & b
        elif op == "OR":
            result = a | b
        elif op == "XOR":
            result = a ^ b
        else:  # pragma: no cover - exhaustive above
            raise ProgramError(f"unknown ALU op {op}")
        self.registers.update_arith_flags(result)
        return result & WORD_MASK

    def _compare(self, a: int, b: int) -> None:
        diff = _to_signed(a) - _to_signed(b)
        self.registers.set_flag(FLAG_ZERO, diff == 0)
        self.registers.set_flag(FLAG_NEGATIVE, diff < 0)

    def _branch_taken(self, name: str) -> bool:
        if name == "BRA":
            return True
        zero = self.registers.get_flag(FLAG_ZERO)
        negative = self.registers.get_flag(FLAG_NEGATIVE)
        return {
            "BEQ": zero,
            "BNE": not zero,
            "BLT": negative,
            "BGE": not negative,
        }[name]

    # ------------------------------------------------------------------
    # Fast execution path
    # ------------------------------------------------------------------
    # The fast path keeps every architectural effect — register values,
    # memory state, flags, cycle counts, EDM exceptions, the exception log —
    # bit-identical to the reference interpreter above; the differential
    # test suite (tests/cpu/test_fastpath_differential.py) enforces this.
    # It removes *interpretation overhead only*: per-fetch decode (memoized
    # in repro.cpu.isa), mnemonic string chains (opcode dispatch table),
    # register-name translation (direct table indexing), and per-access
    # method calls for the common no-error memory case (ECC and bus errors
    # fall back to Memory.read/write, which own those semantics).

    def _fetch_execute_fast(self) -> int:
        """Fetch, decode and execute one instruction; returns its cycle cost.

        Counter accounting is the caller's job (:meth:`step` updates the
        counters per instruction, :meth:`_run_fast` in a batch).
        """
        values = self.registers._values
        pc = values["PC"]
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            # Inline of Mmu.check's allow scan; any non-allowed outcome
            # (cold cache or violation) defers to check() itself, which
            # owns the statistics and the exception.
            visible = mmu._visible.get(mmu._domain)
            if visible is None:
                mmu.check(pc, ACCESS_EXECUTE)
            else:
                for base, end, permissions in visible:
                    if base <= pc < end and "x" in permissions:
                        break
                else:
                    mmu.check(pc, ACCESS_EXECUTE)
        mem = self.memory
        if 0 <= pc < mem.size_words and pc not in mem._error_bits:
            word = mem._clean.get(pc, 0)
        else:
            word = mem.read(pc)
        entry = _DECODE_CACHE.get(word)
        if entry is None:
            entry = decode_cached(word)
        ins, cycles = entry
        if ins is None:
            raise IllegalOpcodeError(
                f"illegal opcode {word >> 24 & 0xFF:#04x} at address {pc:#x}",
                address=pc,
            )
        values["PC"] = (pc + 1) & WORD_MASK
        _DISPATCH[ins.mnemonic](self, ins)
        return cycles

    def _mem_read_fast(self, address: int) -> int:
        """Data read: no-error words bypass the ECC machinery entirely."""
        mem = self.memory
        if 0 <= address < mem.size_words and address not in mem._error_bits:
            return mem._clean.get(address, 0)
        return mem.read(address)

    def _mem_write_fast(self, address: int, value: int) -> None:
        """Data write: in-bounds RAM writes store directly (ROM and bus
        violations fall back to Memory.write for its exact exceptions)."""
        mem = self.memory
        if 0 <= address < mem.size_words and not (
            mem._rom_sealed and address < mem.rom_limit
        ):
            mem._clean[address] = value & WORD_MASK
            mem._error_bits.pop(address, None)
        else:
            mem.write(address, value)

    def _set_arith_flags_fast(self, values: Dict[str, int], result: int) -> None:
        """Inline of RegisterFile.update_arith_flags (bits Z=0, N=1, C=2)."""
        truncated = result & WORD_MASK
        sr = values["SR"] & ~0b111
        if truncated == 0:
            sr |= 0b001
        if truncated & 0x8000_0000:
            sr |= 0b010
        if (result != truncated and result >= 0) or result < 0:
            sr |= 0b100
        values["SR"] = sr

    # --- moves -----------------------------------------------------------
    def _fx_nop(self, ins: Instruction) -> None:
        return

    def _fx_halt(self, ins: Instruction) -> None:
        self._halted = True

    def _fx_move(self, ins: Instruction) -> None:
        values = self.registers._values
        values[REGISTER_NAMES[ins.rd]] = values[REGISTER_NAMES[ins.ra]]

    def _fx_movei(self, ins: Instruction) -> None:
        self.registers._values[REGISTER_NAMES[ins.rd]] = ins.imm & WORD_MASK

    def _fx_movehi(self, ins: Instruction) -> None:
        values = self.registers._values
        name = REGISTER_NAMES[ins.rd]
        values[name] = ((ins.imm & 0xFFFF) << 16) | (values[name] & 0xFFFF)

    # --- memory ----------------------------------------------------------
    def _fx_load(self, ins: Instruction) -> None:
        values = self.registers._values
        address = (values[REGISTER_NAMES[ins.ra]] + ins.imm) & WORD_MASK
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(address, ACCESS_READ)
        values[REGISTER_NAMES[ins.rd]] = self._mem_read_fast(address)

    def _fx_store(self, ins: Instruction) -> None:
        values = self.registers._values
        address = (values[REGISTER_NAMES[ins.ra]] + ins.imm) & WORD_MASK
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(address, ACCESS_WRITE)
        self._mem_write_fast(address, values[REGISTER_NAMES[ins.rd]])

    def _fx_push(self, ins: Instruction) -> None:
        values = self.registers._values
        sp = (values["SP"] - 1) & WORD_MASK
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(sp, ACCESS_WRITE)
        self._mem_write_fast(sp, values[REGISTER_NAMES[ins.rd]])
        values["SP"] = sp

    def _fx_pop(self, ins: Instruction) -> None:
        values = self.registers._values
        sp = values["SP"]
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(sp, ACCESS_READ)
        values[REGISTER_NAMES[ins.rd]] = self._mem_read_fast(sp)
        values["SP"] = (sp + 1) & WORD_MASK

    # --- ALU -------------------------------------------------------------
    def _fx_add(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] + values[REGISTER_NAMES[ins.rb]]
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_addi(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] + (ins.imm & WORD_MASK)
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_sub(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] - values[REGISTER_NAMES[ins.rb]]
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_subi(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] - (ins.imm & WORD_MASK)
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_mul(self, ins: Instruction) -> None:
        values = self.registers._values
        result = _to_signed(values[REGISTER_NAMES[ins.ra]]) * _to_signed(
            values[REGISTER_NAMES[ins.rb]]
        )
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_muli(self, ins: Instruction) -> None:
        values = self.registers._values
        result = _to_signed(values[REGISTER_NAMES[ins.ra]]) * _to_signed(
            ins.imm & WORD_MASK
        )
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_div(self, ins: Instruction) -> None:
        values = self.registers._values
        b = values[REGISTER_NAMES[ins.rb]]
        if (b & WORD_MASK) == 0:
            raise DivisionByZeroError("integer division by zero")
        result = int(_to_signed(values[REGISTER_NAMES[ins.ra]]) / _to_signed(b))
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_divi(self, ins: Instruction) -> None:
        values = self.registers._values
        b = ins.imm & WORD_MASK
        if b == 0:
            raise DivisionByZeroError("integer division by zero")
        result = int(_to_signed(values[REGISTER_NAMES[ins.ra]]) / _to_signed(b))
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result & WORD_MASK

    def _fx_and(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] & values[REGISTER_NAMES[ins.rb]]
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_andi(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] & ins.imm & WORD_MASK
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_or(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] | values[REGISTER_NAMES[ins.rb]]
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_ori(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] | (ins.imm & WORD_MASK)
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_xor(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] ^ values[REGISTER_NAMES[ins.rb]]
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_xori(self, ins: Instruction) -> None:
        values = self.registers._values
        result = values[REGISTER_NAMES[ins.ra]] ^ (ins.imm & WORD_MASK)
        self._set_arith_flags_fast(values, result)
        values[REGISTER_NAMES[ins.rd]] = result

    def _fx_shl(self, ins: Instruction) -> None:
        values = self.registers._values
        values[REGISTER_NAMES[ins.rd]] = (
            values[REGISTER_NAMES[ins.ra]] << (ins.imm & 31)
        ) & WORD_MASK

    def _fx_shr(self, ins: Instruction) -> None:
        values = self.registers._values
        values[REGISTER_NAMES[ins.rd]] = (
            values[REGISTER_NAMES[ins.ra]] & WORD_MASK
        ) >> (ins.imm & 31)

    # --- compare / control flow -----------------------------------------
    def _fx_compare(self, a: int, b: int) -> None:
        values = self.registers._values
        diff = _to_signed(a) - _to_signed(b)
        sr = values["SR"] & ~0b11
        if diff == 0:
            sr |= 0b01
        if diff < 0:
            sr |= 0b10
        values["SR"] = sr

    def _fx_cmp(self, ins: Instruction) -> None:
        values = self.registers._values
        self._fx_compare(
            values[REGISTER_NAMES[ins.ra]], values[REGISTER_NAMES[ins.rb]]
        )

    def _fx_cmpi(self, ins: Instruction) -> None:
        self._fx_compare(
            self.registers._values[REGISTER_NAMES[ins.ra]], ins.imm & WORD_MASK
        )

    def _fx_bra(self, ins: Instruction) -> None:
        values = self.registers._values
        values["PC"] = (values["PC"] + ins.imm) & WORD_MASK

    def _fx_beq(self, ins: Instruction) -> None:
        values = self.registers._values
        if values["SR"] & 0b01:
            values["PC"] = (values["PC"] + ins.imm) & WORD_MASK

    def _fx_bne(self, ins: Instruction) -> None:
        values = self.registers._values
        if not values["SR"] & 0b01:
            values["PC"] = (values["PC"] + ins.imm) & WORD_MASK

    def _fx_blt(self, ins: Instruction) -> None:
        values = self.registers._values
        if values["SR"] & 0b10:
            values["PC"] = (values["PC"] + ins.imm) & WORD_MASK

    def _fx_bge(self, ins: Instruction) -> None:
        values = self.registers._values
        if not values["SR"] & 0b10:
            values["PC"] = (values["PC"] + ins.imm) & WORD_MASK

    def _fx_jmp(self, ins: Instruction) -> None:
        values = self.registers._values
        values["PC"] = values[REGISTER_NAMES[ins.ra]]

    def _fx_jsr(self, ins: Instruction) -> None:
        values = self.registers._values
        sp = (values["SP"] - 1) & WORD_MASK
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(sp, ACCESS_WRITE)
        self._mem_write_fast(sp, values["PC"])
        values["SP"] = sp
        values["PC"] = ins.imm & WORD_MASK

    def _fx_rts(self, ins: Instruction) -> None:
        values = self.registers._values
        sp = values["SP"]
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            mmu.check(sp, ACCESS_READ)
        values["PC"] = self._mem_read_fast(sp)
        values["SP"] = (sp + 1) & WORD_MASK

    def _fx_sig(self, ins: Instruction) -> None:
        self.signature = (self.signature * 31 + (ins.imm & 0xFFFF)) & WORD_MASK

    # ------------------------------------------------------------------
    # I/O convenience (memory-mapped task inputs/outputs)
    # ------------------------------------------------------------------
    def write_words(self, base: int, values: Sequence[int]) -> None:
        """Write a block of words (kernel-mode, bypasses task MMU domain)."""
        previous = self.mmu.domain
        self.mmu.enter_kernel()
        try:
            for offset, value in enumerate(values):
                self.memory.write(base + offset, int(value) & WORD_MASK)
        finally:
            self.mmu.enter_domain(previous)

    def read_words(self, base: int, count: int) -> List[int]:
        """Read a block of words in kernel mode (ECC applies)."""
        previous = self.mmu.domain
        self.mmu.enter_kernel()
        try:
            return [self.memory.read(base + offset) for offset in range(count)]
        finally:
            self.mmu.enter_domain(previous)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(pc={self.registers['PC']:#x}, halted={self._halted}, "
            f"cycles={self.cycle_count})"
        )


#: Mnemonic -> unbound handler, resolved once at import time and shared by
#: every machine (campaigns build a fresh Machine per experiment, so the
#: dispatch table must not be rebuilt per instance).
_DISPATCH: "Dict[str, Callable[[Machine, Instruction], None]]" = {
    mnemonic: getattr(Machine, handler)
    for mnemonic, handler in _FAST_HANDLERS.items()
}
