"""The simulated COTS processor: fetch/decode/execute with EDM hooks.

The :class:`Machine` ties together the register file, ECC memory and MMU and
executes mini-ISA programs.  It is deliberately *not* cycle-accurate below
the instruction level — the paper's analysis needs faithful *error
semantics*, not micro-architecture:

* every hardware-detectable error raises a
  :class:`~repro.cpu.exceptions.HardwareException` (the EDMs of Table 1);
* every instruction advances a cycle counter from which the kernel derives
  execution times;
* all architectural state (registers, memory) is open to bit-exact fault
  injection.

Running a program returns a :class:`RunResult`; the kernel and the TEM
executor inspect it to drive comparison, voting and recovery.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..errors import MachineError, MachineHalted, ProgramError
from .assembler import AssembledProgram
from .exceptions import (
    DivisionByZeroError,
    HardwareException,
    IllegalOpcodeError,
)
from .isa import Instruction, decode, register_name, sign_extend_16
from .memory import Memory
from .mmu import ACCESS_EXECUTE, ACCESS_READ, ACCESS_WRITE, Mmu
from .registers import (
    FLAG_NEGATIVE,
    FLAG_ZERO,
    WORD_MASK,
    Context,
    RegisterFile,
)

#: Default machine geometry (words).
DEFAULT_MEMORY_WORDS = 16_384
DEFAULT_ROM_WORDS = 4_096

#: Default clock: 1 cycle = 1 simulator tick (1 us), i.e. a 1 MHz machine.
#: Slow by modern standards but keeps numbers easy to read in traces; the
#: kernel scales task WCETs accordingly.
DEFAULT_CYCLE_TICKS = 1


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


@dataclasses.dataclass
class RunResult:
    """Outcome of one :meth:`Machine.run` invocation.

    Attributes
    ----------
    halted:
        True if the program reached HALT normally.
    exception:
        The hardware exception that stopped execution, if any.
    steps / cycles:
        Instructions executed and cycles consumed.
    """

    halted: bool
    exception: Optional[HardwareException]
    steps: int
    cycles: int

    @property
    def ok(self) -> bool:
        """True for a clean HALT with no exception."""
        return self.halted and self.exception is None


class Machine:
    """A simulated single-core COTS processor.

    Parameters
    ----------
    memory_words / rom_words:
        Physical memory size and the read-only prefix reserved for code and
        constants.
    ecc_enabled / mmu_enabled:
        Toggle the corresponding EDMs (fault-injection ablations).
    cycle_ticks:
        Simulator ticks per CPU cycle (links machine time to DES time).
    """

    def __init__(
        self,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        rom_words: int = DEFAULT_ROM_WORDS,
        ecc_enabled: bool = True,
        mmu_enabled: bool = True,
        cycle_ticks: int = DEFAULT_CYCLE_TICKS,
    ) -> None:
        self.registers = RegisterFile()
        self.memory = Memory(memory_words, rom_limit=rom_words, ecc_enabled=ecc_enabled)
        self.mmu = Mmu(enabled=mmu_enabled)
        self.cycle_ticks = int(cycle_ticks)
        self.cycle_count = 0
        self.instruction_count = 0
        self.signature = 0
        self._halted = False
        self._exception_log: List[HardwareException] = []

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load_program(self, program: AssembledProgram) -> None:
        """Copy an assembled program into ROM (does not seal)."""
        self.memory.load_rom(program.origin, program.words)

    def seal_rom(self) -> None:
        """Freeze the code/constant region against writes."""
        self.memory.seal_rom()

    # ------------------------------------------------------------------
    # State control
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """True after HALT; cleared by :meth:`prepare`."""
        return self._halted

    def prepare(self, entry: int, stack_top: Optional[int] = None) -> None:
        """Arm the machine to run from *entry* with a fresh stack.

        The register file is cleared (a job starts from a defined context,
        which is also what the TCB snapshot captures), PC set to *entry*, SP
        to *stack_top* (default: top of memory), and the control-flow
        signature accumulator reset.
        """
        self.registers.reset()
        self.registers["PC"] = entry
        self.registers["SP"] = stack_top if stack_top is not None else self.memory.size_words
        self.signature = 0
        self._halted = False

    def save_context(self) -> Context:
        """Snapshot the register file (for the task control block)."""
        return self.registers.save_context()

    def restore_context(self, context: Context) -> None:
        """Restore a register snapshot (recovery from CPU-detected errors)."""
        self.registers.restore_context(context)
        self._halted = False

    @property
    def exception_log(self) -> List[HardwareException]:
        """All hardware exceptions raised so far (coverage accounting)."""
        return self._exception_log

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fetch, decode and execute one instruction.

        Raises the corresponding :class:`HardwareException` when an EDM
        fires; the exception is also appended to :attr:`exception_log`.
        """
        if self._halted:
            raise MachineHalted("machine is halted; call prepare() first")
        try:
            self._step_inner()
        except HardwareException as exc:
            self._exception_log.append(exc)
            raise

    def _step_inner(self) -> None:
        pc = self.registers["PC"]
        self.mmu.check(pc, ACCESS_EXECUTE)
        word = self.memory.read(pc)
        instruction = decode(word)
        if instruction is None:
            raise IllegalOpcodeError(
                f"illegal opcode {word >> 24 & 0xFF:#04x} at address {pc:#x}",
                address=pc,
            )
        self.registers["PC"] = (pc + 1) & WORD_MASK
        self._execute(instruction)
        self.instruction_count += 1
        self.cycle_count += instruction.cycles

    def run(
        self, max_steps: int = 1_000_000, stop_on_exception: bool = True
    ) -> RunResult:
        """Run until HALT, a hardware exception, or *max_steps*.

        *max_steps* models the kernel's execution-time budget at machine
        level; exceeding it returns a result with ``halted=False`` and no
        exception, which the budget-timer machinery converts into a timing
        EDM event.
        """
        start_steps = self.instruction_count
        start_cycles = self.cycle_count
        exception: Optional[HardwareException] = None
        while not self._halted and self.instruction_count - start_steps < max_steps:
            try:
                self.step()
            except HardwareException as exc:
                exception = exc
                if stop_on_exception:
                    break
        return RunResult(
            halted=self._halted,
            exception=exception,
            steps=self.instruction_count - start_steps,
            cycles=self.cycle_count - start_cycles,
        )

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------
    def _execute(self, ins: Instruction) -> None:
        name = ins.mnemonic
        regs = self.registers
        if name == "NOP":
            return
        if name == "HALT":
            self._halted = True
            return
        if name == "MOVE":
            regs[register_name(ins.rd)] = regs[register_name(ins.ra)]
            return
        if name == "MOVEI":
            regs[register_name(ins.rd)] = ins.imm & WORD_MASK
            return
        if name == "MOVEHI":
            low = regs[register_name(ins.rd)] & 0xFFFF
            regs[register_name(ins.rd)] = ((ins.imm & 0xFFFF) << 16) | low
            return
        if name == "LOAD":
            address = (regs[register_name(ins.ra)] + ins.imm) & WORD_MASK
            self.mmu.check(address, ACCESS_READ)
            regs[register_name(ins.rd)] = self.memory.read(address)
            return
        if name == "STORE":
            address = (regs[register_name(ins.ra)] + ins.imm) & WORD_MASK
            self.mmu.check(address, ACCESS_WRITE)
            self.memory.write(address, regs[register_name(ins.rd)])
            return
        if name == "PUSH":
            sp = (regs["SP"] - 1) & WORD_MASK
            self.mmu.check(sp, ACCESS_WRITE)
            self.memory.write(sp, regs[register_name(ins.rd)])
            regs["SP"] = sp
            return
        if name == "POP":
            sp = regs["SP"]
            self.mmu.check(sp, ACCESS_READ)
            regs[register_name(ins.rd)] = self.memory.read(sp)
            regs["SP"] = (sp + 1) & WORD_MASK
            return
        if name in ("ADD", "SUB", "MUL", "DIV", "AND", "OR", "XOR"):
            a = regs[register_name(ins.ra)]
            b = regs[register_name(ins.rb)]
            regs[register_name(ins.rd)] = self._alu(name, a, b)
            return
        if name in ("ADDI", "SUBI", "MULI", "DIVI", "ANDI", "ORI", "XORI"):
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = self._alu(name[:-1], a, ins.imm & WORD_MASK)
            return
        if name == "SHL":
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = (a << (ins.imm & 31)) & WORD_MASK
            return
        if name == "SHR":
            a = regs[register_name(ins.ra)]
            regs[register_name(ins.rd)] = (a & WORD_MASK) >> (ins.imm & 31)
            return
        if name == "CMP":
            self._compare(regs[register_name(ins.ra)], regs[register_name(ins.rb)])
            return
        if name == "CMPI":
            self._compare(regs[register_name(ins.ra)], ins.imm & WORD_MASK)
            return
        if name in ("BRA", "BEQ", "BNE", "BLT", "BGE"):
            if self._branch_taken(name):
                regs["PC"] = (regs["PC"] + ins.imm) & WORD_MASK
            return
        if name == "JMP":
            regs["PC"] = regs[register_name(ins.ra)]
            return
        if name == "JSR":
            sp = (regs["SP"] - 1) & WORD_MASK
            self.mmu.check(sp, ACCESS_WRITE)
            self.memory.write(sp, regs["PC"])
            regs["SP"] = sp
            regs["PC"] = ins.imm & WORD_MASK
            return
        if name == "RTS":
            sp = regs["SP"]
            self.mmu.check(sp, ACCESS_READ)
            regs["PC"] = self.memory.read(sp)
            regs["SP"] = (sp + 1) & WORD_MASK
            return
        if name == "SIG":
            # Control-flow signature checkpoint (see repro.core.control_flow).
            self.signature = (self.signature * 31 + (ins.imm & 0xFFFF)) & WORD_MASK
            return
        raise ProgramError(f"decoder produced unexecutable instruction {ins}")

    def _alu(self, op: str, a: int, b: int) -> int:
        if op == "ADD":
            result = a + b
        elif op == "SUB":
            result = a - b
        elif op == "MUL":
            result = _to_signed(a) * _to_signed(b)
        elif op == "DIV":
            if (b & WORD_MASK) == 0:
                raise DivisionByZeroError("integer division by zero")
            result = int(_to_signed(a) / _to_signed(b))  # trunc toward zero
        elif op == "AND":
            result = a & b
        elif op == "OR":
            result = a | b
        elif op == "XOR":
            result = a ^ b
        else:  # pragma: no cover - exhaustive above
            raise ProgramError(f"unknown ALU op {op}")
        self.registers.update_arith_flags(result)
        return result & WORD_MASK

    def _compare(self, a: int, b: int) -> None:
        diff = _to_signed(a) - _to_signed(b)
        self.registers.set_flag(FLAG_ZERO, diff == 0)
        self.registers.set_flag(FLAG_NEGATIVE, diff < 0)

    def _branch_taken(self, name: str) -> bool:
        if name == "BRA":
            return True
        zero = self.registers.get_flag(FLAG_ZERO)
        negative = self.registers.get_flag(FLAG_NEGATIVE)
        return {
            "BEQ": zero,
            "BNE": not zero,
            "BLT": negative,
            "BGE": not negative,
        }[name]

    # ------------------------------------------------------------------
    # I/O convenience (memory-mapped task inputs/outputs)
    # ------------------------------------------------------------------
    def write_words(self, base: int, values: Sequence[int]) -> None:
        """Write a block of words (kernel-mode, bypasses task MMU domain)."""
        previous = self.mmu.domain
        self.mmu.enter_kernel()
        try:
            for offset, value in enumerate(values):
                self.memory.write(base + offset, int(value) & WORD_MASK)
        finally:
            self.mmu.enter_domain(previous)

    def read_words(self, base: int, count: int) -> List[int]:
        """Read a block of words in kernel mode (ECC applies)."""
        previous = self.mmu.domain
        self.mmu.enter_kernel()
        try:
            return [self.memory.read(base + offset) for offset in range(count)]
        finally:
            self.mmu.enter_domain(previous)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(pc={self.registers['PC']:#x}, halted={self._halted}, "
            f"cycles={self.cycle_count})"
        )
