"""Lockstep batch execution: K machines stepped as numpy array operations.

ROADMAP item 2 — *SIMD across trials*.  A fault-injection campaign runs the
same program thousands of times, each trial differing only in one injected
bit flip.  :class:`BatchMachine` exploits that redundancy: the architectural
state of K trials ("lanes") lives in ``(K, n)`` numpy arrays, one instruction
is fetched and decoded *once* per step, and its effects are applied to every
lane with vectorized arithmetic.

Equivalence contract (the same bar as the PR 3 fast path — bit-identical or
bust, enforced by ``tests/property/test_batch_differential.py``):

* **Data divergence stays in lockstep.**  Lanes may hold different register
  and memory values (that is the point of fault injection); ALU ops, flags,
  loads and stores are computed per-lane with numpy masks, reproducing the
  scalar :class:`~repro.cpu.machine.Machine` bit for bit — including the
  exact exception classes, messages, ``mechanism`` strings and ECC/MMU
  counter side effects.
* **Control-flow divergence evicts the lane.**  A lane whose PC (or fetched
  instruction word) no longer matches the cohort is *evicted* before any
  side effect of the divergent fetch, and the caller finishes it on a scalar
  ``Machine`` built by :meth:`BatchMachine.to_machine`.  Eviction is a pure
  performance decision: because every lane's semantics are independent of
  the cohort, the scalar continuation replays exactly what the scalar path
  would have done from that state.
* The cohort's reference instruction comes from a *pristine* lane (one with
  no fault injected yet) when any is still running — pristine lanes are
  bit-identical by construction and never evict.  Once every lane carries a
  fault, the reference is the modal (PC, word) pair, smallest value winning
  ties, so the majority of lanes stays vectorized.

Per-lane ECC fetch semantics need one subtlety: a single-bit error on the
fetched word is corrected and scrubbed *in lockstep* (the corrected word is
the clean word), but the correction counter and scrub are applied only if
the lane stays in the cohort — an evicted lane must leave its error bits in
place so the scalar machine replays the correction itself, exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import MachineError
from .exceptions import (
    AddressError,
    BusError,
    DivisionByZeroError,
    EccUncorrectableError,
    HardwareException,
    IllegalOpcodeError,
)
from .isa import _DECODE_CACHE, Instruction, decode_cached
from .machine import (
    DEFAULT_CYCLE_TICKS,
    DEFAULT_MEMORY_WORDS,
    DEFAULT_ROM_WORDS,
    _FAST_HANDLERS,
    Machine,
)
from .mmu import ACCESS_EXECUTE, ACCESS_READ, ACCESS_WRITE, KERNEL_DOMAIN, Mmu, Region
from .registers import ALL_REGISTERS, WORD_BITS, WORD_MASK

#: Register-file columns.  The instruction encoding's register indices
#: (D0-D7 = 0..7, A0-A6 = 8..14, SP = 15) coincide with the canonical
#: ALL_REGISTERS order, so ``ins.rd`` indexes the array directly.
_SP_COL = ALL_REGISTERS.index("SP")
_PC_COL = ALL_REGISTERS.index("PC")
_SR_COL = ALL_REGISTERS.index("SR")
_N_COLS = len(ALL_REGISTERS)

_SIGN_BIT = 0x8000_0000
_TWO_POW_32 = 0x1_0000_0000


def _signed(values: np.ndarray) -> np.ndarray:
    """Vectorized 32-bit two's-complement reinterpretation (int64 in/out)."""
    return np.where(values & _SIGN_BIT, values - _TWO_POW_32, values)


class BatchMachine:
    """K simulated processors advancing in lockstep.

    Parameters mirror :class:`~repro.cpu.machine.Machine`; *lanes* is the
    batch width K.  All lanes share one program image, one MMU region table
    and one protection domain (campaign copies run the same task in the same
    domain); everything else — registers, memory, ECC error bits, counters,
    exceptions — is per-lane.
    """

    def __init__(
        self,
        lanes: int,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        rom_words: int = DEFAULT_ROM_WORDS,
        ecc_enabled: bool = True,
        mmu_enabled: bool = True,
        cycle_ticks: int = DEFAULT_CYCLE_TICKS,
    ) -> None:
        if lanes <= 0:
            raise MachineError("batch machine needs at least one lane")
        self.lanes = int(lanes)
        self.memory_words = int(memory_words)
        self.rom_words = int(rom_words)
        self.ecc_enabled = bool(ecc_enabled)
        self.cycle_ticks = int(cycle_ticks)
        self.mmu = Mmu(enabled=mmu_enabled)
        self._rom_sealed = False

        k = self.lanes
        self.regs = np.zeros((k, _N_COLS), dtype=np.int64)
        self.mem = np.zeros((k, self.memory_words), dtype=np.int64)
        #: Per-lane sparse ECC error bits: address -> set of flipped bits.
        self.error_bits: List[Dict[int, Set[int]]] = [{} for _ in range(k)]
        self._lane_has_err = np.zeros(k, dtype=bool)

        self.active = np.zeros(k, dtype=bool)
        self.halted = np.zeros(k, dtype=bool)
        self.evicted = np.zeros(k, dtype=bool)
        #: True once a lane's state was perturbed (fault injected): the lane
        #: is no longer bit-identical to the unfaulted run and can never
        #: serve as the cohort's divergence reference.
        self.injected = np.zeros(k, dtype=bool)

        self.signature = np.zeros(k, dtype=np.int64)
        #: Cumulative counters *before* the copy in flight; the public
        #: ``instruction_count``/``cycle_count`` views add the per-copy
        #: deltas, so the hot step loop only maintains one pair of arrays.
        self._instr_base = np.zeros(k, dtype=np.int64)
        self._cycle_base = np.zeros(k, dtype=np.int64)
        #: Instructions/cycles retired since the last :meth:`prepare` — the
        #: per-copy step budget accounting of the TEM executor.
        self.copy_steps = np.zeros(k, dtype=np.int64)
        self.copy_cycles = np.zeros(k, dtype=np.int64)

        self.ecc_corrections = np.zeros(k, dtype=np.int64)
        self.ecc_detections = np.zeros(k, dtype=np.int64)
        self.ecc_silent = np.zeros(k, dtype=np.int64)
        self.mmu_violations = np.zeros(k, dtype=np.int64)

        self.exceptions: List[Optional[HardwareException]] = [None] * k
        self.exception_log: List[List[HardwareException]] = [[] for _ in range(k)]
        self._evicted_now: List[int] = []
        #: Cached ``(active lane index, pristine lane index)`` pair —
        #: recomputing it per step dominates small-cohort stepping, and it
        #: only changes when lane membership or injection state changes.
        self._cohort: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Columns any lane may hold a nonzero word in (ROM image, input
        #: blocks, store targets).  ``to_machine`` gathers just these
        #: instead of scanning the whole row — the row is hundreds of
        #: times wider than the footprint a task actually touches.
        self._touched: Set[int] = set()
        self._touched_cols: Optional[np.ndarray] = None

        self._reg_col = {name: col for col, name in enumerate(ALL_REGISTERS)}
        self._dispatch = {
            mnemonic: getattr(self, "_bx_" + mnemonic.lower())
            for mnemonic in _FAST_HANDLERS
        }

    @property
    def instruction_count(self) -> np.ndarray:
        """Cumulative retired instructions per lane (derived view).

        The hot step loop only maintains the per-copy deltas; the copy in
        flight is folded into ``_instr_base`` at the next :meth:`prepare`.
        """
        return self._instr_base + self.copy_steps

    @property
    def cycle_count(self) -> np.ndarray:
        """Cumulative consumed cycles per lane (derived view)."""
        return self._cycle_base + self.copy_cycles

    # ------------------------------------------------------------------
    # Program loading / configuration (shared across lanes)
    # ------------------------------------------------------------------
    def load_rom(self, base: int, words: Sequence[int]) -> None:
        """Copy a program image into every lane's ROM region."""
        if self._rom_sealed:
            raise MachineError("cannot load ROM after sealing")
        image = np.asarray([int(w) & WORD_MASK for w in words], dtype=np.int64)
        if image.size:
            if base < 0 or base + image.size > self.memory_words:
                raise MachineError("ROM image outside physical memory")
            self.mem[:, base : base + image.size] = image[None, :]
            self._note_touched(range(base, base + image.size))

    def load_program(self, program) -> None:
        """Copy an assembled program into ROM (does not seal)."""
        self.load_rom(program.origin, program.words)

    def seal_rom(self) -> None:
        """Freeze the code/constant region against writes (all lanes)."""
        self._rom_sealed = True

    def add_region(self, region: Region) -> None:
        """Install an MMU region (shared region table)."""
        self.mmu.add_region(region)

    # ------------------------------------------------------------------
    # State control
    # ------------------------------------------------------------------
    def _lane_index(self, lanes: Optional[Sequence[int]]) -> np.ndarray:
        if lanes is None:
            return np.arange(self.lanes, dtype=np.int64)
        return np.asarray(sorted(int(lane) for lane in lanes), dtype=np.int64)

    def prepare(
        self,
        entry: int,
        stack_top: Optional[int] = None,
        lanes: Optional[Sequence[int]] = None,
    ) -> None:
        """Arm *lanes* (default: all) to run from *entry* with fresh state.

        Mirrors :meth:`Machine.prepare`: registers cleared, PC = entry,
        SP = stack top (default: top of memory), signature reset.  Only the
        prepared lanes become active; per-copy step counters restart.
        """
        idx = self._lane_index(lanes)
        self.regs[idx, :] = 0
        self.regs[idx, _PC_COL] = int(entry) & WORD_MASK
        top = self.memory_words if stack_top is None else int(stack_top)
        self.regs[idx, _SP_COL] = top & WORD_MASK
        self.signature[idx] = 0
        self.halted[idx] = False
        # Fold the previous copy's deltas into the cumulative base before
        # the per-copy counters restart (see instruction_count property).
        self._instr_base[idx] += self.copy_steps[idx]
        self._cycle_base[idx] += self.copy_cycles[idx]
        self.copy_steps[idx] = 0
        self.copy_cycles[idx] = 0
        for lane in idx.tolist():
            self.exceptions[lane] = None
        self.active[:] = False
        self.active[idx] = True
        self._cohort = None

    def write_words(
        self,
        base: int,
        values: Sequence[int],
        lanes: Optional[Sequence[int]] = None,
    ) -> None:
        """Write a word block to every selected lane (kernel-mode semantics)."""
        idx = self._lane_index(lanes)
        for offset, value in enumerate(values):
            address = base + offset
            if not 0 <= address < self.memory_words:
                raise BusError(
                    f"physical address {address:#x} outside memory of "
                    f"{self.memory_words} words",
                    address=address,
                )
            if self._rom_sealed and address < self.rom_words:
                raise BusError(f"write to ROM address {address:#x}", address=address)
            self.mem[idx, address] = int(value) & WORD_MASK
            self._note_touched((address,))
            if self._lane_has_err[idx].any():
                for lane in idx.tolist():
                    bits = self.error_bits[lane]
                    if bits.pop(address, None) is not None and not bits:
                        self._lane_has_err[lane] = False

    def read_words(self, lane: int, base: int, count: int) -> List[int]:
        """Read a word block from one lane with full ECC semantics."""
        return [self._read_lane(int(lane), base + offset) for offset in range(count)]

    def peek(self, lane: int, address: int) -> int:
        """Clean value of one word, no ECC side effects (diagnostic)."""
        return int(self.mem[int(lane), address])

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def flip_register(self, lane: int, name: str, bit: int) -> None:
        """Flip one register bit in one lane (transient-fault injection)."""
        if not 0 <= bit < WORD_BITS:
            raise MachineError(f"bit index {bit} outside 0..{WORD_BITS - 1}")
        col = self._reg_col.get(name)
        if col is None:
            raise MachineError(f"unknown register {name!r}")
        lane = int(lane)
        self.regs[lane, col] = (int(self.regs[lane, col]) ^ (1 << bit)) & WORD_MASK
        self.injected[lane] = True
        self._cohort = None

    def flip_memory_bit(self, lane: int, address: int, bit: int) -> None:
        """Toggle one stored-word ECC error bit in one lane."""
        if not 0 <= address < self.memory_words:
            raise BusError(
                f"physical address {address:#x} outside memory of "
                f"{self.memory_words} words",
                address=address,
            )
        if not 0 <= bit < WORD_BITS:
            raise MachineError(f"bit index {bit} outside 0..{WORD_BITS - 1}")
        lane = int(lane)
        bits = self.error_bits[lane]
        present = bits.get(address)
        if present is None:
            bits[address] = {bit}
            self._lane_has_err[lane] = True
        elif bit in present:
            present.discard(bit)
            if not present:
                del bits[address]
            if not bits:
                self._lane_has_err[lane] = False
        else:
            present.add(bit)
        self.injected[lane] = True
        self._cohort = None

    # ------------------------------------------------------------------
    # Lockstep execution
    # ------------------------------------------------------------------
    def run(self, max_steps: int) -> int:
        """Step the cohort up to *max_steps* times; returns steps taken.

        Stops early only when no lane remains active (every lane halted,
        raised, or was evicted).
        """
        executed = 0
        while executed < max_steps:
            if not self.step():
                break
            executed += 1
        return executed

    def step(self) -> bool:
        """One lockstep fetch/decode/execute; False if no lane is active."""
        cohort = self._cohort
        if cohort is None:
            idx = np.flatnonzero(self.active)
            pristine = idx[~self.injected[idx]]
            self._cohort = (idx, pristine)
        else:
            idx, pristine = cohort
        if idx.size == 0:
            return False

        # --- divergence checkpoint: all surviving lanes must share a PC ---
        pcs = self.regs[idx, _PC_COL]
        if pristine.size:
            ref_pc = int(self.regs[pristine[0], _PC_COL])
        else:
            ref_pc = int(pcs[0])
            if not (pcs == ref_pc).all():
                # Modal PC (ties: smallest value — np.unique sorts).
                values, counts = np.unique(pcs, return_counts=True)
                ref_pc = int(values[int(np.argmax(counts))])
        strayed = pcs != ref_pc
        if strayed.any():
            for lane in idx[strayed].tolist():
                self._evict(lane)
            idx = idx[~strayed]
            if idx.size == 0:
                return True

        # --- MMU execute check (shared address, shared domain) ---
        mmu = self.mmu
        if mmu.enabled and mmu._domain != KERNEL_DOMAIN:
            if not self._mmu_allows(ref_pc, ACCESS_EXECUTE):
                domain = mmu._domain
                for lane in idx.tolist():
                    self.mmu_violations[lane] += 1
                    self._raise_lane(
                        lane,
                        AddressError(
                            f"MMU: domain {domain!r} denied {ACCESS_EXECUTE!r} "
                            f"access to address {ref_pc:#x}",
                            address=ref_pc,
                        ),
                    )
                return True

        if not 0 <= ref_pc < self.memory_words:
            for lane in idx.tolist():
                self._raise_lane(
                    lane,
                    BusError(
                        f"physical address {ref_pc:#x} outside memory of "
                        f"{self.memory_words} words",
                        address=ref_pc,
                    ),
                )
            return True

        # --- fetch with per-lane ECC resolution ---
        words = self.mem[idx, ref_pc].copy()
        scrub_lanes: List[int] = []
        silent_lanes: List[Tuple[int, int]] = []
        flagged = self._lane_has_err[idx]
        if flagged.any():
            dropped = np.zeros(idx.shape, dtype=bool)
            for pos in np.flatnonzero(flagged).tolist():
                lane = int(idx[pos])
                errors = self.error_bits[lane].get(ref_pc)
                if not errors:
                    continue
                if not self.ecc_enabled:
                    # ECC off: the corrupted word is fetched with no side
                    # effects, so the lane can stay if it matches the cohort.
                    words[pos] = self._corrupted(int(words[pos]), errors)
                elif len(errors) == 1:
                    # Correctable: the effective word is the clean word; the
                    # counter + scrub are deferred until the lane is known to
                    # stay in the cohort (an evicted lane replays them).
                    scrub_lanes.append(lane)
                elif len(errors) == 2:
                    self.ecc_detections[lane] += 1
                    self._raise_lane(
                        lane,
                        EccUncorrectableError(
                            f"double-bit ECC error at address {ref_pc:#x}",
                            address=ref_pc,
                        ),
                    )
                    dropped[pos] = True
                else:
                    # 3+ bits: silently corrupted fetch; count only if the
                    # lane stays (the scalar machine otherwise re-counts).
                    silent_lanes.append((pos, lane))
                    words[pos] = self._corrupted(int(words[pos]), errors)
            if dropped.any():
                idx = idx[~dropped]
                words = words[~dropped]
                if idx.size == 0:
                    return True

        if pristine.size:
            ref_word = int(self.mem[pristine[0], ref_pc])
        else:
            ref_word = int(words[0])
            if not (words == ref_word).all():
                # Modal word (ties: smallest value — np.unique sorts).
                values, counts = np.unique(words, return_counts=True)
                ref_word = int(values[int(np.argmax(counts))])
        diverged = words != ref_word
        if diverged.any():
            for lane in idx[diverged].tolist():
                self._evict(lane)
            idx = idx[~diverged]
            if idx.size == 0:
                return True
        for lane in scrub_lanes:
            if self.active[lane]:
                self.ecc_corrections[lane] += 1
                bits = self.error_bits[lane]
                del bits[ref_pc]
                if not bits:
                    self._lane_has_err[lane] = False
        for _, lane in silent_lanes:
            if self.active[lane]:
                self.ecc_silent[lane] += 1

        # --- shared decode, then vectorized execute ---
        entry = _DECODE_CACHE.get(ref_word)
        if entry is None:
            entry = decode_cached(ref_word)
        ins, cycles = entry
        if ins is None:
            for lane in idx.tolist():
                self._raise_lane(
                    lane,
                    IllegalOpcodeError(
                        f"illegal opcode {ref_word >> 24 & 0xFF:#04x} "
                        f"at address {ref_pc:#x}",
                        address=ref_pc,
                    ),
                )
            return True
        self.regs[idx, _PC_COL] = (ref_pc + 1) & WORD_MASK
        retired = self._dispatch[ins.mnemonic](idx, ins)
        if retired.size:
            self.copy_steps[retired] += 1
            self.copy_cycles[retired] += cycles
        return True

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------
    def _raise_lane(self, lane: int, exc: HardwareException) -> None:
        lane = int(lane)
        self.exceptions[lane] = exc
        self.exception_log[lane].append(exc)
        self.active[lane] = False
        self._cohort = None

    def _evict(self, lane: int) -> None:
        lane = int(lane)
        self.evicted[lane] = True
        self.active[lane] = False
        self._evicted_now.append(lane)
        self._cohort = None

    def pop_evicted(self) -> List[int]:
        """Lanes evicted since the last call (in eviction order)."""
        out = self._evicted_now
        self._evicted_now = []
        return out

    def _note_touched(self, columns) -> None:
        touched = self._touched
        before = len(touched)
        touched.update(columns)
        if len(touched) != before:
            self._touched_cols = None

    def to_machine(self, lane: int, fast: Optional[bool] = None) -> Machine:
        """Materialise one lane as a scalar :class:`Machine`.

        The extracted machine is bit-identical to the lane: registers,
        memory contents and ECC error bits, ROM seal, MMU regions/domain,
        counters, signature, halt flag and exception log all carry over, so
        scalar execution continues exactly where the lockstep left off.
        """
        lane = int(lane)
        machine = Machine(
            memory_words=self.memory_words,
            rom_words=self.rom_words,
            ecc_enabled=self.ecc_enabled,
            mmu_enabled=self.mmu.enabled,
            cycle_ticks=self.cycle_ticks,
            fast=fast,
        )
        values = machine.registers._values
        row = self.regs[lane]
        for col, name in enumerate(ALL_REGISTERS):
            values[name] = int(row[col])
        mem = machine.memory
        mem_row = self.mem[lane]
        cols = self._touched_cols
        if cols is None:
            cols = np.fromiter(
                self._touched, dtype=np.int64, count=len(self._touched)
            )
            cols.sort()
            self._touched_cols = cols
        col_values = mem_row[cols]
        nonzero = np.flatnonzero(col_values)
        mem._clean = dict(
            zip(cols[nonzero].tolist(), col_values[nonzero].tolist())
        )
        mem._error_bits = {
            address: set(bits) for address, bits in self.error_bits[lane].items()
        }
        if self._rom_sealed:
            mem.seal_rom()
        mem.ecc_stats.corrections = int(self.ecc_corrections[lane])
        mem.ecc_stats.detections = int(self.ecc_detections[lane])
        mem.ecc_stats.silent_corruptions = int(self.ecc_silent[lane])
        for region in self.mmu._regions:
            machine.mmu.add_region(region)
        machine.mmu.enter_domain(self.mmu._domain)
        machine.mmu.violations = int(self.mmu_violations[lane])
        machine.instruction_count = int(
            self._instr_base[lane] + self.copy_steps[lane]
        )
        machine.cycle_count = int(self._cycle_base[lane] + self.copy_cycles[lane])
        machine.signature = int(self.signature[lane])
        machine._halted = bool(self.halted[lane])
        machine._exception_log = list(self.exception_log[lane])
        return machine

    def adopt(self, lane: int, machine: Machine) -> None:
        """Fold a scalar :class:`Machine` back into one lane.

        Inverse of :meth:`to_machine`: batch drivers re-admit an evicted
        lane into lockstep once its divergent copy finished on the scalar
        path.  Only job-persistent state matters — memory contents, ECC
        error bits and counters, MMU violations, cumulative counters and
        the exception log — because the next copy re-prepares the per-copy
        register state anyway.  The lane stays inactive until the next
        :meth:`prepare` arms it.

        *machine* must descend from :meth:`to_machine` of this very lane:
        ``Memory.write`` records every written word in ``_clean`` (zeros
        included, keys are never discarded), so the machine's ``_clean``
        is a superset of every word that can differ from the lane row and
        writing just those words back is exact — no row-wide reset needed.
        """
        lane = int(lane)
        mem = machine.memory
        row = self.mem[lane]
        clean = mem._clean
        if clean:
            addresses = np.fromiter(clean.keys(), dtype=np.int64, count=len(clean))
            row[addresses] = np.fromiter(
                clean.values(), dtype=np.int64, count=len(clean)
            )
            self._note_touched(clean.keys())
        self.error_bits[lane] = {
            address: set(bits) for address, bits in mem._error_bits.items()
        }
        self._lane_has_err[lane] = bool(mem._error_bits)
        self.ecc_corrections[lane] = mem.ecc_stats.corrections
        self.ecc_detections[lane] = mem.ecc_stats.detections
        self.ecc_silent[lane] = mem.ecc_stats.silent_corruptions
        self.mmu_violations[lane] = machine.mmu.violations
        self._instr_base[lane] = machine.instruction_count
        self._cycle_base[lane] = machine.cycle_count
        self.copy_steps[lane] = 0
        self.copy_cycles[lane] = 0
        self.signature[lane] = machine.signature
        self.halted[lane] = bool(machine._halted)
        self.exception_log[lane] = list(machine._exception_log)
        self.exceptions[lane] = None
        self.evicted[lane] = False
        self.active[lane] = False
        self._cohort = None

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _corrupted(clean: int, errors: Set[int]) -> int:
        value = clean
        for bit in sorted(errors):
            value ^= 1 << bit
        return value & WORD_MASK

    def _read_lane(self, lane: int, address: int) -> int:
        if not 0 <= address < self.memory_words:
            raise BusError(
                f"physical address {address:#x} outside memory of "
                f"{self.memory_words} words",
                address=address,
            )
        clean = int(self.mem[lane, address])
        errors = self.error_bits[lane].get(address)
        if not errors:
            return clean
        if not self.ecc_enabled:
            return self._corrupted(clean, errors)
        if len(errors) == 1:
            self.ecc_corrections[lane] += 1
            bits = self.error_bits[lane]
            del bits[address]
            if not bits:
                self._lane_has_err[lane] = False
            return clean
        if len(errors) == 2:
            self.ecc_detections[lane] += 1
            raise EccUncorrectableError(
                f"double-bit ECC error at address {address:#x}", address=address
            )
        self.ecc_silent[lane] += 1
        return self._corrupted(clean, errors)

    def _visible_regions(self) -> List[Tuple[int, int, str]]:
        mmu = self.mmu
        visible = mmu._visible.get(mmu._domain)
        if visible is None:
            visible = mmu._visible[mmu._domain] = [
                (r.base, r.base + r.size, r.permissions)
                for r in mmu._regions
                if r.domain is None or r.domain == mmu._domain
            ]
        return visible

    def _mmu_allows(self, address: int, access: str) -> bool:
        for base, end, permissions in self._visible_regions():
            if base <= address < end and access in permissions:
                return True
        return False

    def _mmu_filter(
        self, idx: np.ndarray, addresses: np.ndarray, access: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        mmu = self.mmu
        if not mmu.enabled or mmu._domain == KERNEL_DOMAIN or idx.size == 0:
            return idx, addresses
        allow = np.zeros(idx.shape, dtype=bool)
        for base, end, permissions in self._visible_regions():
            if access in permissions:
                allow |= (addresses >= base) & (addresses < end)
        if not allow.all():
            domain = mmu._domain
            for pos in np.flatnonzero(~allow).tolist():
                lane = int(idx[pos])
                address = int(addresses[pos])
                self.mmu_violations[lane] += 1
                self._raise_lane(
                    lane,
                    AddressError(
                        f"MMU: domain {domain!r} denied {access!r} access to "
                        f"address {address:#x}",
                        address=address,
                    ),
                )
            idx = idx[allow]
            addresses = addresses[allow]
        return idx, addresses

    def _mem_read(
        self, idx: np.ndarray, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        oob = (addresses < 0) | (addresses >= self.memory_words)
        if oob.any():
            for pos in np.flatnonzero(oob).tolist():
                lane = int(idx[pos])
                address = int(addresses[pos])
                self._raise_lane(
                    lane,
                    BusError(
                        f"physical address {address:#x} outside memory of "
                        f"{self.memory_words} words",
                        address=address,
                    ),
                )
            keep = ~oob
            idx = idx[keep]
            addresses = addresses[keep]
        if idx.size == 0:
            return idx, addresses
        values = self.mem[idx, addresses]
        flagged = self._lane_has_err[idx]
        if flagged.any():
            dropped = np.zeros(idx.shape, dtype=bool)
            for pos in np.flatnonzero(flagged).tolist():
                lane = int(idx[pos])
                address = int(addresses[pos])
                errors = self.error_bits[lane].get(address)
                if not errors:
                    continue
                if not self.ecc_enabled:
                    values[pos] = self._corrupted(int(values[pos]), errors)
                elif len(errors) == 1:
                    self.ecc_corrections[lane] += 1
                    bits = self.error_bits[lane]
                    del bits[address]
                    if not bits:
                        self._lane_has_err[lane] = False
                elif len(errors) == 2:
                    self.ecc_detections[lane] += 1
                    self._raise_lane(
                        lane,
                        EccUncorrectableError(
                            f"double-bit ECC error at address {address:#x}",
                            address=address,
                        ),
                    )
                    dropped[pos] = True
                else:
                    self.ecc_silent[lane] += 1
                    values[pos] = self._corrupted(int(values[pos]), errors)
            if dropped.any():
                keep = ~dropped
                idx = idx[keep]
                values = values[keep]
        return idx, values

    def _mem_write(
        self, idx: np.ndarray, addresses: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        oob = (addresses < 0) | (addresses >= self.memory_words)
        if self._rom_sealed:
            bad = oob | (~oob & (addresses < self.rom_words))
        else:
            bad = oob
        if bad.any():
            for pos in np.flatnonzero(bad).tolist():
                lane = int(idx[pos])
                address = int(addresses[pos])
                if 0 <= address < self.memory_words:
                    exc = BusError(
                        f"write to ROM address {address:#x}", address=address
                    )
                else:
                    exc = BusError(
                        f"physical address {address:#x} outside memory of "
                        f"{self.memory_words} words",
                        address=address,
                    )
                self._raise_lane(lane, exc)
            keep = ~bad
            idx = idx[keep]
            addresses = addresses[keep]
            values = values[keep]
        if idx.size:
            self.mem[idx, addresses] = values & WORD_MASK
            self._note_touched(addresses.tolist())
            flagged = self._lane_has_err[idx]
            if flagged.any():
                for pos in np.flatnonzero(flagged).tolist():
                    lane = int(idx[pos])
                    bits = self.error_bits[lane]
                    if bits.pop(int(addresses[pos]), None) is not None and not bits:
                        self._lane_has_err[lane] = False
        return idx

    def _set_arith_flags(self, idx: np.ndarray, result: np.ndarray) -> None:
        truncated = result & WORD_MASK
        sr = self.regs[idx, _SR_COL] & ~0b111
        sr |= (truncated == 0) * 0b001
        sr |= ((truncated & _SIGN_BIT) != 0) * 0b010
        sr |= (((result != truncated) & (result >= 0)) | (result < 0)) * 0b100
        self.regs[idx, _SR_COL] = sr

    def _compare(self, idx: np.ndarray, a: np.ndarray, b) -> None:
        diff = _signed(a) - _signed(np.asarray(b, dtype=np.int64))
        sr = self.regs[idx, _SR_COL] & ~0b11
        sr |= (diff == 0) * 0b01
        sr |= (diff < 0) * 0b10
        self.regs[idx, _SR_COL] = sr

    # ------------------------------------------------------------------
    # Vectorized handlers (one per mnemonic, mirror of Machine._fx_*)
    # ------------------------------------------------------------------
    def _bx_nop(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        return idx

    def _bx_halt(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.halted[idx] = True
        self.active[idx] = False
        self._cohort = None
        return idx

    def _bx_move(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, ins.rd] = self.regs[idx, ins.ra]
        return idx

    def _bx_movei(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, ins.rd] = ins.imm & WORD_MASK
        return idx

    def _bx_movehi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, ins.rd] = ((ins.imm & 0xFFFF) << 16) | (
            self.regs[idx, ins.rd] & 0xFFFF
        )
        return idx

    def _bx_load(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        addresses = (self.regs[idx, ins.ra] + ins.imm) & WORD_MASK
        idx, addresses = self._mmu_filter(idx, addresses, ACCESS_READ)
        idx, values = self._mem_read(idx, addresses)
        self.regs[idx, ins.rd] = values
        return idx

    def _bx_store(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        addresses = (self.regs[idx, ins.ra] + ins.imm) & WORD_MASK
        idx, addresses = self._mmu_filter(idx, addresses, ACCESS_WRITE)
        return self._mem_write(idx, addresses, self.regs[idx, ins.rd])

    def _bx_push(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        sp = (self.regs[idx, _SP_COL] - 1) & WORD_MASK
        idx, sp = self._mmu_filter(idx, sp, ACCESS_WRITE)
        idx = self._mem_write(idx, sp, self.regs[idx, ins.rd])
        self.regs[idx, _SP_COL] = (self.regs[idx, _SP_COL] - 1) & WORD_MASK
        return idx

    def _bx_pop(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        sp = self.regs[idx, _SP_COL]
        idx, sp = self._mmu_filter(idx, sp, ACCESS_READ)
        idx, values = self._mem_read(idx, sp)
        self.regs[idx, ins.rd] = values
        self.regs[idx, _SP_COL] = (self.regs[idx, _SP_COL] + 1) & WORD_MASK
        return idx

    def _bx_add(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] + self.regs[idx, ins.rb]
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_addi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] + (ins.imm & WORD_MASK)
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_sub(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] - self.regs[idx, ins.rb]
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_subi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] - (ins.imm & WORD_MASK)
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_mul(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = _signed(self.regs[idx, ins.ra]) * _signed(self.regs[idx, ins.rb])
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_muli(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        imm = ins.imm & WORD_MASK
        operand = imm - _TWO_POW_32 if imm & _SIGN_BIT else imm
        result = _signed(self.regs[idx, ins.ra]) * operand
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _divide(self, idx: np.ndarray, ins: Instruction, b: np.ndarray) -> np.ndarray:
        # int(a / b) in the scalar path truncates toward zero; for 32-bit
        # operands the float64 quotient never rounds across an integer
        # boundary, so sign-corrected floor division is bit-identical.
        a_s = _signed(self.regs[idx, ins.ra])
        b_s = _signed(b)
        quotient = np.abs(a_s) // np.abs(b_s)
        result = np.where((a_s < 0) != (b_s < 0), -quotient, quotient)
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result & WORD_MASK
        return idx

    def _bx_div(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        b = self.regs[idx, ins.rb]
        zero = (b & WORD_MASK) == 0
        if zero.any():
            for lane in idx[zero].tolist():
                self._raise_lane(
                    lane, DivisionByZeroError("integer division by zero")
                )
            idx = idx[~zero]
            if idx.size == 0:
                return idx
            b = self.regs[idx, ins.rb]
        return self._divide(idx, ins, b)

    def _bx_divi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        imm = ins.imm & WORD_MASK
        if imm == 0:
            for lane in idx.tolist():
                self._raise_lane(
                    lane, DivisionByZeroError("integer division by zero")
                )
            return np.empty(0, dtype=np.int64)
        return self._divide(idx, ins, np.full(idx.shape, imm, dtype=np.int64))

    def _bx_and(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] & self.regs[idx, ins.rb]
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_andi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] & ins.imm & WORD_MASK
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_or(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] | self.regs[idx, ins.rb]
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_ori(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] | (ins.imm & WORD_MASK)
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_xor(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] ^ self.regs[idx, ins.rb]
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_xori(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        result = self.regs[idx, ins.ra] ^ (ins.imm & WORD_MASK)
        self._set_arith_flags(idx, result)
        self.regs[idx, ins.rd] = result
        return idx

    def _bx_shl(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        shifted = self.regs[idx, ins.ra].astype(np.uint64) << np.uint64(ins.imm & 31)
        self.regs[idx, ins.rd] = (shifted & np.uint64(WORD_MASK)).astype(np.int64)
        return idx

    def _bx_shr(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, ins.rd] = (self.regs[idx, ins.ra] & WORD_MASK) >> (
            ins.imm & 31
        )
        return idx

    def _bx_cmp(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self._compare(idx, self.regs[idx, ins.ra], self.regs[idx, ins.rb])
        return idx

    def _bx_cmpi(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self._compare(idx, self.regs[idx, ins.ra], ins.imm & WORD_MASK)
        return idx

    def _bx_bra(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, _PC_COL] = (self.regs[idx, _PC_COL] + ins.imm) & WORD_MASK
        return idx

    def _branch_if(self, idx: np.ndarray, taken: np.ndarray, imm: int) -> np.ndarray:
        hit = idx[taken]
        self.regs[hit, _PC_COL] = (self.regs[hit, _PC_COL] + imm) & WORD_MASK
        return idx

    def _bx_beq(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        return self._branch_if(
            idx, (self.regs[idx, _SR_COL] & 0b01) != 0, ins.imm
        )

    def _bx_bne(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        return self._branch_if(
            idx, (self.regs[idx, _SR_COL] & 0b01) == 0, ins.imm
        )

    def _bx_blt(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        return self._branch_if(
            idx, (self.regs[idx, _SR_COL] & 0b10) != 0, ins.imm
        )

    def _bx_bge(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        return self._branch_if(
            idx, (self.regs[idx, _SR_COL] & 0b10) == 0, ins.imm
        )

    def _bx_jmp(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.regs[idx, _PC_COL] = self.regs[idx, ins.ra]
        return idx

    def _bx_jsr(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        sp = (self.regs[idx, _SP_COL] - 1) & WORD_MASK
        idx, sp = self._mmu_filter(idx, sp, ACCESS_WRITE)
        idx = self._mem_write(idx, sp, self.regs[idx, _PC_COL])
        self.regs[idx, _SP_COL] = (self.regs[idx, _SP_COL] - 1) & WORD_MASK
        self.regs[idx, _PC_COL] = ins.imm & WORD_MASK
        return idx

    def _bx_rts(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        sp = self.regs[idx, _SP_COL]
        idx, sp = self._mmu_filter(idx, sp, ACCESS_READ)
        idx, values = self._mem_read(idx, sp)
        self.regs[idx, _PC_COL] = values
        self.regs[idx, _SP_COL] = (self.regs[idx, _SP_COL] + 1) & WORD_MASK
        return idx

    def _bx_sig(self, idx: np.ndarray, ins: Instruction) -> np.ndarray:
        self.signature[idx] = (
            self.signature[idx] * 31 + (ins.imm & 0xFFFF)
        ) & WORD_MASK
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchMachine(lanes={self.lanes}, active={int(self.active.sum())}, "
            f"evicted={int(self.evicted.sum())})"
        )
