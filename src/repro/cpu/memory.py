"""Word-addressed memory with a SEC-DED ECC model.

The paper assumes (Section 2.6) that "the memory is protected from direct
faults using ECC".  We model a single-error-correct / double-error-detect
(SEC-DED) code per 32-bit word:

* a *write* stores the value and clears any accumulated bit errors;
* injected faults flip stored bits (tracked per word);
* a *read* with one accumulated flipped bit returns the **corrected** value
  and counts a correction event;
* a read with two flipped bits raises
  :class:`~repro.cpu.exceptions.EccUncorrectableError` (detected,
  uncorrectable);
* three or more flips can alias in a real SEC-DED code; we model the
  pessimistic outcome — the corrupted value is returned silently (this is
  one source of *non-covered* errors in the terminology of Section 3.2.1).

Statistics (corrections, detections, silent corruptions) feed the coverage
accounting of fault-injection campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from ..errors import MachineError
from .exceptions import BusError, EccUncorrectableError
from .registers import WORD_BITS, WORD_MASK


@dataclasses.dataclass(slots=True)
class EccStatistics:
    """Counters of ECC activity since construction or :meth:`reset`."""

    corrections: int = 0
    detections: int = 0
    silent_corruptions: int = 0

    def reset(self) -> None:
        self.corrections = 0
        self.detections = 0
        self.silent_corruptions = 0


class Memory:
    """Word-addressed RAM (optionally with a read-only prefix) plus ECC.

    Parameters
    ----------
    size_words:
        Number of addressable 32-bit words; addresses are 0..size-1.
    rom_limit:
        Addresses below this bound are read-only after :meth:`load_rom`
        finishes (program code and constants live there, mirroring the
        paper's "static data ... saved in read only memory").
    ecc_enabled:
        When False the memory behaves as plain RAM: injected flips corrupt
        reads silently.  Campaigns use this to quantify the ECC contribution.
    """

    __slots__ = (
        "size_words", "rom_limit", "ecc_enabled",
        "_clean", "_error_bits", "_rom_sealed", "ecc_stats",
    )

    def __init__(self, size_words: int, rom_limit: int = 0, ecc_enabled: bool = True):
        if size_words <= 0:
            raise MachineError(f"memory size must be positive, got {size_words}")
        if not 0 <= rom_limit <= size_words:
            raise MachineError(f"rom_limit {rom_limit} outside 0..{size_words}")
        self.size_words = size_words
        self.rom_limit = rom_limit
        self.ecc_enabled = ecc_enabled
        self._clean: Dict[int, int] = {}
        self._error_bits: Dict[int, Set[int]] = {}
        self._rom_sealed = False
        self.ecc_stats = EccStatistics()

    # ------------------------------------------------------------------
    # Bounds / ROM handling
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise BusError(
                f"physical address {address:#x} outside memory of "
                f"{self.size_words} words",
                address=address,
            )

    def load_rom(self, base: int, words: "list[int]") -> None:
        """Install program code/constants into the read-only region."""
        if self._rom_sealed:
            raise MachineError("ROM already sealed; cannot load more code")
        if base + len(words) > self.rom_limit:
            raise MachineError(
                f"ROM image [{base}, {base + len(words)}) exceeds rom_limit "
                f"{self.rom_limit}"
            )
        for offset, word in enumerate(words):
            self._clean[base + offset] = word & WORD_MASK
            self._error_bits.pop(base + offset, None)

    def seal_rom(self) -> None:
        """Freeze the ROM region; later writes below rom_limit raise."""
        self._rom_sealed = True

    def is_rom(self, address: int) -> bool:
        """True if *address* lies in the sealed read-only region."""
        return self._rom_sealed and address < self.rom_limit

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, address: int) -> int:
        """Read one word, applying the ECC model."""
        self._check_address(address)
        clean = self._clean.get(address, 0)
        errors = self._error_bits.get(address)
        if not errors:
            return clean
        if not self.ecc_enabled:
            return self._corrupted_value(clean, errors)
        if len(errors) == 1:
            # SEC: single-bit error corrected on the fly; scrub the word.
            self.ecc_stats.corrections += 1
            del self._error_bits[address]
            return clean
        if len(errors) == 2:
            self.ecc_stats.detections += 1
            raise EccUncorrectableError(
                f"double-bit ECC error at address {address:#x}", address=address
            )
        # 3+ flips may alias past SEC-DED: pessimistically silent.
        self.ecc_stats.silent_corruptions += 1
        return self._corrupted_value(clean, errors)

    def write(self, address: int, value: int) -> None:
        """Write one word, clearing accumulated bit errors for that word."""
        self._check_address(address)
        if self.is_rom(address):
            raise BusError(f"write to ROM address {address:#x}", address=address)
        self._clean[address] = value & WORD_MASK
        self._error_bits.pop(address, None)

    def peek(self, address: int) -> int:
        """Read the *stored* (possibly corrupted) value without ECC effects.

        Used by tests and by the fault injector to observe raw state.
        """
        self._check_address(address)
        clean = self._clean.get(address, 0)
        errors = self._error_bits.get(address)
        return self._corrupted_value(clean, errors) if errors else clean

    @staticmethod
    def _corrupted_value(clean: int, errors: Set[int]) -> int:
        value = clean
        for bit in errors:
            value ^= 1 << bit
        return value & WORD_MASK

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def flip_bit(self, address: int, bit: int) -> None:
        """Flip one stored bit (transient fault in a memory cell).

        Flipping the same bit twice cancels — exactly as in hardware.
        """
        self._check_address(address)
        if not 0 <= bit < WORD_BITS:
            raise MachineError(f"bit index {bit} outside 0..{WORD_BITS - 1}")
        errors = self._error_bits.setdefault(address, set())
        if bit in errors:
            errors.remove(bit)
            if not errors:
                del self._error_bits[address]
        else:
            errors.add(bit)

    def state_digest(self) -> str:
        """Deterministic digest of the full memory state.

        Hashes every stored word (address, clean value) plus every latent
        error-bit set in address order — the differential test gate uses it
        to assert fast- and reference-path machines end bit-identical
        without comparing dicts element-wise in the test body.
        """
        import hashlib

        h = hashlib.sha256()
        for address in sorted(self._clean):
            value = self._clean[address]
            if value:
                h.update(f"{address}:{value};".encode())
        for address in sorted(self._error_bits):
            bits = ",".join(str(b) for b in sorted(self._error_bits[address]))
            h.update(f"e{address}:{bits};".encode())
        return h.hexdigest()

    def error_word_count(self) -> int:
        """Number of words currently holding latent bit errors."""
        return len(self._error_bits)

    def clear_errors(self) -> None:
        """Drop all latent bit errors (e.g. after a memory scrub)."""
        self._error_bits.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Memory(size={self.size_words}, rom<{self.rom_limit}, "
            f"ecc={'on' if self.ecc_enabled else 'off'}, "
            f"latent_errors={self.error_word_count()})"
        )
