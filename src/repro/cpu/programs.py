"""A library of mini-ISA workload programs.

Fault-injection results depend on the workload (different instruction
mixes expose different EDMs), so the campaign experiments run several
realistic embedded-control kernels rather than a single toy.  Each entry
provides assembly source, input/output conventions, SIG checkpoints for
control-flow checking and a Python golden model used by tests.

All programs follow the conventions of
:class:`~repro.kernel.task.MachineExecutable`: inputs at ``0x1800``,
outputs at ``0x1900``, one result word unless noted.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError

IN = 0x1800
OUT = 0x1900


@dataclasses.dataclass(frozen=True)
class WorkloadProgram:
    """One benchmark program with its golden model."""

    name: str
    source: str
    checkpoints: Tuple[int, ...]
    input_count: int
    output_count: int
    golden: Callable[..., Tuple[int, ...]]
    description: str


def _pid_golden(setpoint: int, measurement: int, integral: int) -> Tuple[int, ...]:
    error = setpoint - measurement
    new_integral = integral + error
    # P + I with per-mille gains 400 and 50, matching the assembly.  The
    # machine's DIV truncates toward zero (not floor), so mirror that.
    raw = error * 400 + new_integral * 50
    command = abs(raw) // 1000
    if raw < 0:
        command = -command
    return (command & 0xFFFF_FFFF, new_integral & 0xFFFF_FFFF)


PID_CONTROLLER = WorkloadProgram(
    name="pid_controller",
    source=f"""
; PI controller: inputs setpoint, measurement, integral state
start:  SIG 101
        LOAD  D0, A0, {IN}        ; setpoint
        LOAD  D1, A0, {IN + 1}    ; measurement
        LOAD  D2, A0, {IN + 2}    ; integral state
        SUB   D3, D0, D1          ; error
        ADD   D2, D2, D3          ; integral += error
        MULI  D4, D3, 400         ; P term (gain 0.4, per-mille)
        MULI  D5, D2, 50          ; I term (gain 0.05)
        ADD   D4, D4, D5
        DIVI  D4, D4, 1000
        SIG 102
        STORE D4, A0, {OUT}       ; command
        STORE D2, A0, {OUT + 1}   ; updated state
        HALT
""",
    checkpoints=(101, 102),
    input_count=3,
    output_count=2,
    golden=_pid_golden,
    description="PI control law with persistent integral state",
)


def _filter_golden(*samples: int) -> Tuple[int, ...]:
    weights = (1, 2, 4, 2, 1)
    acc = sum(w * s for w, s in zip(weights, samples))
    return (acc // 10 & 0xFFFF_FFFF,)


FIR_FILTER = WorkloadProgram(
    name="fir_filter",
    source=f"""
; 5-tap weighted moving average over sensor samples
start:  SIG 201
        MOVEI D7, 0               ; accumulator
        LOAD  D0, A0, {IN}
        MULI  D0, D0, 1
        ADD   D7, D7, D0
        LOAD  D0, A0, {IN + 1}
        MULI  D0, D0, 2
        ADD   D7, D7, D0
        LOAD  D0, A0, {IN + 2}
        MULI  D0, D0, 4
        ADD   D7, D7, D0
        LOAD  D0, A0, {IN + 3}
        MULI  D0, D0, 2
        ADD   D7, D7, D0
        LOAD  D0, A0, {IN + 4}
        MULI  D0, D0, 1
        ADD   D7, D7, D0
        DIVI  D7, D7, 10
        SIG 202
        STORE D7, A0, {OUT}
        HALT
""",
    checkpoints=(201, 202),
    input_count=5,
    output_count=1,
    golden=_filter_golden,
    description="FIR smoothing filter (sensor conditioning)",
)


def _checksum_golden(a: int, b: int, c: int, d: int) -> Tuple[int, ...]:
    # Fletcher-like: s1 = sum mod 65521, s2 = running sum of s1.
    s1 = 0
    s2 = 0
    for value in (a, b, c, d):
        s1 = (s1 + value) % 65_521
        s2 = (s2 + s1) % 65_521
    return ((s2 << 16 | s1) & 0xFFFF_FFFF,)


MESSAGE_CHECKSUM = WorkloadProgram(
    name="message_checksum",
    source=f"""
; Fletcher-style checksum over a 4-word message (uses a loop + JSR)
start:  SIG 301
        MOVEI D0, 0               ; s1
        MOVEI D1, 0               ; s2
        MOVEI D2, {IN}            ; pointer
        MOVEI D3, 4               ; count
loop:   MOVE  A1, D2
        LOAD  D4, A1, 0
        ADD   D0, D0, D4
        JSR   mod
        ADD   D1, D1, D0
        MOVE  D6, D0              ; save s1
        MOVE  D0, D1
        JSR   mod
        MOVE  D1, D0
        MOVE  D0, D6              ; restore s1
        ADDI  D2, D2, 1
        SUBI  D3, D3, 1
        CMPI  D3, 0
        BNE   loop
        SHL   D5, D1, 16
        OR    D5, D5, D0
        SIG 302
        STORE D5, A0, {OUT}
        HALT
; D0 <- D0 mod 65521 (single conditional subtraction is enough here)
mod:    MOVEI D7, 32753          ; build 65521 without sign-extension
        ADD   D7, D7, D7
        ADDI  D7, D7, 15          ; D7 = 65521
        CMP   D0, D7
        BLT   moddone
        SUB   D0, D0, D7
moddone: RTS
""",
    checkpoints=(301, 302),
    input_count=4,
    output_count=1,
    golden=_checksum_golden,
    description="end-to-end message checksum (loops, subroutine, pointers)",
)

#: The canonical program registry.
PROGRAMS: Dict[str, WorkloadProgram] = {
    program.name: program
    for program in (PID_CONTROLLER, FIR_FILTER, MESSAGE_CHECKSUM)
}


def get_program(name: str) -> WorkloadProgram:
    """Look up a workload program by name."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown program {name!r}; available: {sorted(PROGRAMS)}"
        ) from None
