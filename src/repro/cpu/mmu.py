"""Memory management unit: per-task region protection.

Section 2.4 of the paper: "Often, [COTS processors] also provide a memory
management unit (MMU), which supports fault confinement between tasks or
between tasks and the kernel."  Our MMU holds a region table; every access is
checked against the regions visible to the *current protection domain* (a
task identifier, or kernel mode which bypasses checking).

Control-flow errors are one of the fault classes the MMU catches (Section
2.7): a corrupted PC that leaves the task's code region triggers an
:class:`~repro.cpu.exceptions.AddressError` on the next fetch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .exceptions import AddressError

#: Access kinds used in permission checks.
ACCESS_READ = "r"
ACCESS_WRITE = "w"
ACCESS_EXECUTE = "x"

#: Domain identifier for the kernel (bypasses region checks).
KERNEL_DOMAIN = "kernel"


@dataclasses.dataclass(frozen=True, slots=True)
class Region:
    """A contiguous protected address range.

    Attributes
    ----------
    base, size:
        Word-addressed range [base, base + size).
    domain:
        Owning protection domain (task name), or None for a region every
        domain may use (e.g. shared ROM).
    permissions:
        Subset of "rwx".
    name:
        Diagnostic label ("code", "stack", "io", ...).
    """

    base: int
    size: int
    permissions: str
    domain: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"region {self.name!r} has non-positive size")
        if self.base < 0:
            raise ConfigurationError(f"region {self.name!r} has negative base")
        invalid = set(self.permissions) - {"r", "w", "x"}
        if invalid:
            raise ConfigurationError(
                f"region {self.name!r} has invalid permissions {self.permissions!r}"
            )

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def allows(self, access: str) -> bool:
        return access in self.permissions


class Mmu:
    """Region-table MMU with a current protection domain.

    Statistics of denied accesses feed the EDM coverage accounting of
    fault-injection campaigns.
    """

    __slots__ = ("enabled", "_regions", "_domain", "violations", "_visible")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._regions: List[Region] = []
        self._domain: str = KERNEL_DOMAIN
        self.violations = 0
        # domain -> [(base, end, permissions)] in table order: the region
        # table is scanned on every instruction fetch and memory access, so
        # the per-domain filtered view is materialised once per (domain,
        # table) instead of re-filtered per access.
        self._visible: Dict[str, List["tuple[int, int, str]"]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_region(self, region: Region) -> None:
        """Install a region in the table."""
        self._regions.append(region)
        self._visible.clear()

    def regions_for(self, domain: str) -> List[Region]:
        """Regions visible to *domain* (its own plus shared regions)."""
        return [r for r in self._regions if r.domain is None or r.domain == domain]

    # ------------------------------------------------------------------
    # Domain switching
    # ------------------------------------------------------------------
    @property
    def domain(self) -> str:
        """The current protection domain."""
        return self._domain

    def enter_domain(self, domain: str) -> None:
        """Switch protection domain (done by the kernel at dispatch)."""
        self._domain = domain

    def enter_kernel(self) -> None:
        """Switch to kernel mode (no region checking)."""
        self._domain = KERNEL_DOMAIN

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check(self, address: int, access: str) -> None:
        """Validate one access; raises :class:`AddressError` on violation.

        Kernel-domain accesses and disabled MMUs always pass — the paper's
        kernel protects itself with software checks instead (Section 2.3).
        """
        if not self.enabled or self._domain == KERNEL_DOMAIN:
            return
        visible = self._visible.get(self._domain)
        if visible is None:
            visible = self._visible[self._domain] = [
                (r.base, r.base + r.size, r.permissions)
                for r in self._regions
                if r.domain is None or r.domain == self._domain
            ]
        for base, end, permissions in visible:
            if base <= address < end and access in permissions:
                return
        self.violations += 1
        raise AddressError(
            f"MMU: domain {self._domain!r} denied {access!r} access to "
            f"address {address:#x}",
            address=address,
        )
