"""Hardware error-detection exceptions of the simulated COTS processor.

The paper (Section 2.4, Table 1) relies on the error-detection mechanisms
(EDMs) of modern COTS microprocessors: illegal op-code detection, address
range checking (MMU), bus errors, division traps and ECC on memories.  Each
mechanism is modelled as a distinct Python exception carrying enough context
for the kernel's recovery decision (which task, which address, which EDM).

The empirical findings of ref. [8] — *illegal instruction* exceptions
typically stem from PC corruption, *address/bus* errors from SP corruption —
emerge naturally here, because flipping PC bits makes the processor fetch
words that do not decode, and flipping SP bits makes stack accesses leave the
task's MMU region.
"""

from __future__ import annotations

from ..errors import MachineError


class HardwareException(MachineError):
    """Base class of all CPU-detected errors.

    Attributes
    ----------
    mechanism:
        Short EDM identifier used by coverage accounting
        (``"illegal_opcode"``, ``"address_error"``, ...).
    address:
        Faulting memory address, when meaningful.
    """

    mechanism = "hardware"

    def __init__(self, message: str, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class IllegalOpcodeError(HardwareException):
    """Fetched word does not decode to a valid instruction."""

    mechanism = "illegal_opcode"


class AddressError(HardwareException):
    """Memory access outside the current task's MMU regions."""

    mechanism = "address_error"


class BusError(HardwareException):
    """Memory access outside physical memory."""

    mechanism = "bus_error"


class DivisionByZeroError(HardwareException):
    """Integer division trap."""

    mechanism = "divide_by_zero"


class EccUncorrectableError(HardwareException):
    """SEC-DED ECC detected a double-bit (uncorrectable) memory error."""

    mechanism = "ecc_detect"


class PrivilegeViolationError(HardwareException):
    """User-mode code executed a supervisor-only instruction."""

    mechanism = "privilege_violation"


class WatchdogError(HardwareException):
    """Execution budget exhausted (raised by the kernel's budget timer,
    listed here because it is surfaced through the same EDM accounting)."""

    mechanism = "execution_time"
