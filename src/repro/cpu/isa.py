"""The mini instruction-set architecture of the simulated processor.

A small 68k-flavoured load/store ISA with fixed 32-bit instruction words.
Fixed-width binary encoding is essential for the fault-injection study: a
bit flip in instruction memory or in the PC yields *emergent* behaviour —
an illegal opcode, a wrong register, a perturbed immediate, a jump into
data — rather than a scripted outcome.

Encoding (big-endian fields within the 32-bit word)::

    [31:24] opcode   [23:20] rd   [19:16] ra   [15:0] imm16 / rb

* Register designators: 0-7 = D0-D7, 8-14 = A0-A6, 15 = SP.
* ``imm16`` is sign-extended for arithmetic/branches; for three-register
  ALU forms the second source register ``rb`` lives in bits [3:0].
* Branches are PC-relative in instruction words; JSR/JMP are absolute.

Only 31 of the 256 opcode values are populated, so a random flip in the
opcode byte is detected as an illegal opcode with high probability —
matching the paper's reliance on CPU run-time EDMs (Table 1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ProgramError

#: Mnemonic -> opcode byte.
OPCODES: Dict[str, int] = {
    "NOP": 0x01,
    "HALT": 0x02,
    "MOVE": 0x04,
    "MOVEI": 0x05,
    "MOVEHI": 0x06,
    "LOAD": 0x08,
    "STORE": 0x09,
    "PUSH": 0x0C,
    "POP": 0x0D,
    "ADD": 0x10,
    "ADDI": 0x11,
    "SUB": 0x12,
    "SUBI": 0x13,
    "MUL": 0x14,
    "MULI": 0x15,
    "DIV": 0x16,
    "DIVI": 0x17,
    "AND": 0x18,
    "ANDI": 0x19,
    "OR": 0x1A,
    "ORI": 0x1B,
    "XOR": 0x1C,
    "XORI": 0x1D,
    "SHL": 0x1E,
    "SHR": 0x1F,
    "CMP": 0x20,
    "CMPI": 0x21,
    "BRA": 0x24,
    "BEQ": 0x25,
    "BNE": 0x26,
    "BLT": 0x27,
    "BGE": 0x28,
    "JMP": 0x2A,
    "JSR": 0x2B,
    "RTS": 0x2C,
    "SIG": 0x30,
}

MNEMONICS: Dict[int, str] = {code: name for name, code in OPCODES.items()}

#: Instruction classes used by the decoder/executor.
THREE_REG = {"ADD", "SUB", "MUL", "DIV", "AND", "OR", "XOR", "CMP"}
TWO_REG_IMM = {"ADDI", "SUBI", "MULI", "DIVI", "ANDI", "ORI", "XORI", "SHL", "SHR", "LOAD", "STORE"}
BRANCHES = {"BRA", "BEQ", "BNE", "BLT", "BGE"}

#: Per-mnemonic cycle costs (everything else costs 1 cycle).
CYCLE_COSTS: Dict[str, int] = {"MUL": 2, "MULI": 2, "DIV": 4, "DIVI": 4, "JSR": 2, "RTS": 2}

#: Register designator <-> name tables.
REGISTER_NAMES = tuple(f"D{i}" for i in range(8)) + tuple(f"A{i}" for i in range(7)) + ("SP",)
REGISTER_INDEX: Dict[str, int] = {name: i for i, name in enumerate(REGISTER_NAMES)}


def register_name(designator: int) -> str:
    """Map a 4-bit register designator to its name."""
    if not 0 <= designator < len(REGISTER_NAMES):
        raise ProgramError(f"register designator {designator} out of range")
    return REGISTER_NAMES[designator]


def sign_extend_16(value: int) -> int:
    """Sign-extend a 16-bit field to a Python int."""
    value &= 0xFFFF
    return value - 0x1_0000 if value & 0x8000 else value


@dataclasses.dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded instruction.

    ``imm`` holds the sign-extended immediate; for three-register forms the
    second source register index is ``rb`` (decoded from the low bits).
    """

    mnemonic: str
    rd: int
    ra: int
    imm: int
    rb: int

    @property
    def cycles(self) -> int:
        """Cycle cost of this instruction."""
        return CYCLE_COSTS.get(self.mnemonic, 1)

    def __str__(self) -> str:
        if self.mnemonic in THREE_REG:
            return (
                f"{self.mnemonic} {register_name(self.rd)}, "
                f"{register_name(self.ra)}, {register_name(self.rb)}"
            )
        if self.mnemonic in TWO_REG_IMM:
            return (
                f"{self.mnemonic} {register_name(self.rd)}, "
                f"{register_name(self.ra)}, {self.imm}"
            )
        if self.mnemonic in BRANCHES or self.mnemonic in ("MOVEI", "MOVEHI", "JSR", "SIG"):
            return f"{self.mnemonic} {self.imm}"
        return self.mnemonic


def encode(mnemonic: str, rd: int = 0, ra: int = 0, imm: int = 0, rb: int = 0) -> int:
    """Encode an instruction into its 32-bit word."""
    opcode = OPCODES.get(mnemonic)
    if opcode is None:
        raise ProgramError(f"unknown mnemonic {mnemonic!r}")
    for field_name, value, width in (("rd", rd, 4), ("ra", ra, 4), ("rb", rb, 4)):
        if not 0 <= value < (1 << width):
            raise ProgramError(f"{field_name}={value} does not fit {width} bits")
    if not -0x8000 <= imm <= 0xFFFF:
        raise ProgramError(f"immediate {imm} does not fit 16 bits")
    imm_field = imm & 0xFFFF
    if mnemonic in THREE_REG:
        imm_field = rb & 0xF
    return (opcode << 24) | ((rd & 0xF) << 20) | ((ra & 0xF) << 16) | imm_field


def decode(word: int) -> Optional[Instruction]:
    """Decode a 32-bit word; returns None for unpopulated opcodes.

    The machine converts a None result into an *illegal opcode* hardware
    exception — this is the CPU EDM of Table 1.
    """
    opcode = (word >> 24) & 0xFF
    mnemonic = MNEMONICS.get(opcode)
    if mnemonic is None:
        return None
    rd = (word >> 20) & 0xF
    ra = (word >> 16) & 0xF
    imm_field = word & 0xFFFF
    rb = imm_field & 0xF
    imm = sign_extend_16(imm_field)
    return Instruction(mnemonic=mnemonic, rd=rd, ra=ra, imm=imm, rb=rb)


# ----------------------------------------------------------------------
# Fast-path decode cache
# ----------------------------------------------------------------------

#: word -> (Instruction | None, cycles).  ``decode`` is a pure function of
#: the 32-bit word, so memoizing it is semantics-preserving: the machine's
#: fast path decodes each distinct word once (at first fetch) instead of on
#: every fetch.  Cached :class:`Instruction` objects are frozen, so sharing
#: one instance across fetches — and across machines — is safe.
_DECODE_CACHE: Dict[int, "tuple[Optional[Instruction], int]"] = {}

#: Fault-injection campaigns flip bits in instruction memory, so the set of
#: distinct words seen grows over a long campaign; cap the cache so a
#: pathological workload cannot grow it without bound.
_DECODE_CACHE_MAX = 1 << 16


def decode_cached(word: int) -> "tuple[Optional[Instruction], int]":
    """Memoized :func:`decode`; returns ``(instruction | None, cycles)``.

    The cycle cost is precomputed so the execution fast path pays one dict
    lookup per fetch instead of a decode plus a property call.
    """
    entry = _DECODE_CACHE.get(word)
    if entry is None:
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        ins = decode(word)
        entry = (ins, ins.cycles if ins is not None else 0)
        _DECODE_CACHE[word] = entry
    return entry
