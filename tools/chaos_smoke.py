#!/usr/bin/env python
"""CI chaos smoke: sharded E5 under SIGKILL + journal corruption.

Runs the short golden E5 campaign (150 trials, seed 2005) across two
crash-tolerant shards while a seeded chaos schedule SIGKILLs one shard
runner mid-campaign and tears the tail off its journal at takeover, then
verifies the recovered result against the committed golden fixture
(``tests/faults/golden_campaign_e5.json``) bit-for-bit.

Shard journals, leases and quarantine files are written to the artifact
directory (``--artifacts``, default ``chaos-artifacts/``) so a failing CI
run leaves the full forensic record behind.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py [--artifacts DIR] \\
        [--chaos SPEC] [--chaos-seed SEED]

Exit status: 0 on bit-identical recovery, 1 on divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.coverage_table import _e5_trial, e5_fault_payloads  # noqa: E402
from repro.harness import (  # noqa: E402
    ChaosPolicy,
    ShardConfig,
    SupervisorConfig,
    run_sharded_campaign,
)
from repro.obs import metrics  # noqa: E402
from repro.obs.health import format_harness_health  # noqa: E402

EXPERIMENTS = 150
SEED = 2005
MAX_COPIES = 3
GOLDEN_PATH = REPO_ROOT / "tests" / "faults" / "golden_campaign_e5.json"

#: One runner SIGKILL plus one journal-tail truncation at takeover.
DEFAULT_CHAOS = "die:40,corrupt:0:tear"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", type=Path, default=Path("chaos-artifacts"),
        metavar="DIR", help="directory for journals/leases/report",
    )
    parser.add_argument(
        "--chaos", default=DEFAULT_CHAOS, metavar="SPEC",
        help=f"chaos schedule (default: {DEFAULT_CHAOS!r})",
    )
    parser.add_argument("--chaos-seed", type=int, default=7, metavar="SEED")
    args = parser.parse_args(argv)

    args.artifacts.mkdir(parents=True, exist_ok=True)
    policy = ChaosPolicy.from_spec(args.chaos, seed=args.chaos_seed)
    print(f"chaos schedule: {policy.describe() or '(none)'}")

    with metrics.capture():
        result = run_sharded_campaign(
            _e5_trial,
            e5_fault_payloads(EXPERIMENTS, seed=SEED, max_copies=MAX_COPIES),
            SupervisorConfig(
                master_seed=SEED,
                campaign=f"e5-golden-n{EXPERIMENTS}",
                journal_path=args.artifacts / "e5.jsonl",
                chaos=policy,
            ),
            ShardConfig(shards=2, lease_ttl_s=1.2, heartbeat_s=0.1, poll_s=0.03),
        )

    stats = result.statistics()
    frozen = {
        "experiments": EXPERIMENTS,
        "seed": SEED,
        "max_copies": MAX_COPIES,
        "outcome_counts": stats.outcome_counts(),
        "mechanism_counts": dict(sorted(stats.mechanism_counts().items())),
        "stable_view": metrics.stable_view(result.metrics_snapshot()),
    }
    (args.artifacts / "recovered.json").write_text(
        json.dumps(frozen, indent=2, sort_keys=True) + "\n"
    )

    health = format_harness_health(result.harness_metrics)
    print(f"harness health: {health or 'clean'}")
    print(
        f"completed {result.completed}/{result.planned} trials, "
        f"degraded={result.degraded}, elapsed {result.elapsed_s:.1f}s"
    )

    golden = json.loads(GOLDEN_PATH.read_text())
    failed = False
    counters = result.harness_metrics.get("counters", {})
    if policy.any_events and not counters.get("harness.lease_takeovers"):
        print("FAIL: chaos schedule produced no takeover — nothing was tested")
        failed = True
    if result.degraded or result.completed != EXPERIMENTS:
        print("FAIL: recovered campaign is incomplete or degraded")
        failed = True
    if frozen != golden:
        print(
            "FAIL: recovered campaign diverged from the golden fixture "
            f"({GOLDEN_PATH}); see {args.artifacts / 'recovered.json'}"
        )
        failed = True
    if failed:
        return 1
    print("OK: recovery is bit-identical to the undisturbed serial campaign")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
