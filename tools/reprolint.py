#!/usr/bin/env python3
"""Entry point for reprolint without setting PYTHONPATH.

``python tools/reprolint.py [args...]`` is exactly
``PYTHONPATH=src python -m repro.analysis [args...]`` — a convenience for
hooks and editors that invoke tools by path.  See ``python -m
repro.analysis --help`` for the CLI and ``analysis/baseline.json`` for the
committed exemptions.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
