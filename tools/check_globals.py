#!/usr/bin/env python3
"""Static gate: no new module-level mutable state in ``src/repro/``.

The context-scoped runtime refactor moved every ambient switch and service
(fast/reference mode, metrics registries, profile collector, solver cache)
onto :class:`repro.runtime.RunContext`.  This gate keeps it that way: it
fails CI when a module in ``src/repro/`` introduces module-level mutable
state that is not on the explicit allowlist below.

Flagged constructs (at module top level, or ``global`` anywhere):

* assignments of mutable literals or comprehensions — ``_CACHE = {}``,
  ``_SEEN = set()``, ``RESULTS = []``;
* calls to known-mutable constructors — ``dict()``, ``defaultdict(...)``,
  ``deque()``, ``ContextVar(...)`` — or to constructors whose name ends in
  ``Registry`` / ``Cache`` / ``Collector`` / ``Stack``;
* ``global`` statements (module-level rebinding from function scope).

``__all__`` is always allowed.  Everything else needs an allowlist entry —
adding one is a deliberate, reviewed act, and the entry documents why the
state is process-global rather than context-scoped.

Run:  python tools/check_globals.py  (CI runs it in the lint job)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: Constructors that always produce mutable objects.
MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
    "ContextVar",
}

#: Callee-name suffixes that mark service/registry-object construction.
MUTABLE_SUFFIXES = ("Registry", "Cache", "Collector", "Stack")

#: Names allowed in every module.
ALWAYS_ALLOWED = {"__all__"}

#: ``path:name`` (assignments) / ``path:global:name`` (global statements)
#: entries that are deliberately process-global.  Keep each entry justified.
ALLOWLIST = {
    # Immutable-in-practice ISA tables: built once at import, read-only.
    "src/repro/cpu/isa.py:OPCODES",
    "src/repro/cpu/isa.py:MNEMONICS",
    "src/repro/cpu/isa.py:THREE_REG",
    "src/repro/cpu/isa.py:TWO_REG_IMM",
    "src/repro/cpu/isa.py:BRANCHES",
    "src/repro/cpu/isa.py:CYCLE_COSTS",
    "src/repro/cpu/isa.py:REGISTER_INDEX",
    # Decoded-instruction memo: keyed by immutable encodings, append-only,
    # shared across contexts by design (decoding is context-independent).
    "src/repro/cpu/isa.py:_DECODE_CACHE",
    # Interpreter dispatch tables: built once at import, read-only.
    "src/repro/cpu/machine.py:_FAST_HANDLERS",
    "src/repro/cpu/machine.py:_DISPATCH",
    # Workload program library: built once at import, read-only.
    "src/repro/cpu/programs.py:PROGRAMS",
    # Paper-constant tables: read-only reference data.
    "src/repro/experiments/coverage_table.py:PAPER_PARAMETERS",
    "src/repro/experiments/mttf_table.py:PAPER",
    "src/repro/experiments/redundancy_table.py:DEFAULT_LEVELS",
    "src/repro/experiments/workload_table.py:WORKLOAD_INPUTS",
    "src/repro/faults/generators.py:DEFAULT_TARGET_WEIGHTS",
    # Per-worker-process harness memos: deliberately process-local so a
    # campaign worker builds its golden execution once per process.
    "src/repro/experiments/ablation_table.py:_HARNESS_CACHE",
    "src/repro/experiments/coverage_table.py:_HARNESS_CACHE",
    "src/repro/experiments/workload_table.py:_HARNESS_CACHE",
    # The experiment registry: append-only, id-keyed, populated at import.
    "src/repro/experiments/registry.py:REGISTRY",
    # The runtime's own root: the ContextVar carrying the active context
    # and the lazily-created process-default fallback.
    "src/repro/runtime/context.py:_current",
    "src/repro/runtime/context.py:global:_process_default",
}


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = _callee_name(value)
        return name in MUTABLE_CONSTRUCTORS or name.endswith(MUTABLE_SUFFIXES)
    return False


def _assigned_names(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


def _module_violations(path: Path) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(line, key, message)`` for one module."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
    for node in tree.body:
        value = getattr(node, "value", None)
        if value is None or not _is_mutable_value(value):
            continue
        for name in _assigned_names(node):
            if name in ALWAYS_ALLOWED:
                continue
            key = f"{rel}:{name}"
            yield (
                node.lineno, key,
                f"module-level mutable state {name!r}",
            )
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                key = f"{rel}:global:{name}"
                yield (
                    node.lineno, key,
                    f"'global {name}' rebinds module state from function scope",
                )


def main() -> int:
    violations: List[Tuple[str, int, str]] = []
    seen_keys = set()
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        for lineno, key, message in _module_violations(path):
            seen_keys.add(key)
            if key not in ALLOWLIST:
                violations.append((key.split(":", 1)[0], lineno, message))
    stale = sorted(ALLOWLIST - seen_keys)
    if stale:
        print("stale allowlist entries (state no longer exists — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if violations:
        print("new module-level mutable state (move it onto the run context "
              "via repro.runtime, or allowlist it with a justification):")
        for rel, lineno, message in violations:
            print(f"  {rel}:{lineno}: {message}")
    if violations or stale:
        return 1
    print(f"check_globals: OK ({len(seen_keys)} allowlisted, 0 violations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
