#!/usr/bin/env python3
"""DEPRECATED shim — the module-state gate is now reprolint rule CTX001.

This script used to carry its own AST walker and inline allowlist.  Both
moved into the pluggable static-analysis suite:

* the checker lives in :mod:`repro.analysis.checkers.ctx001_module_state`
  (same flagged constructs, same finding keys: ``NAME`` for assignments,
  ``global:NAME`` for ``global`` statements);
* the allowlist became baseline entries in ``analysis/baseline.json``,
  one per exemption, each with its justification.

Run the full suite with ``python -m repro.analysis`` (or
``python tools/reprolint.py``); this shim only runs the CTX001 subset and
preserves the historic exit semantics (0 clean, 1 findings) for any
script still invoking it.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main as reprolint_main  # noqa: E402


def main() -> int:
    print(
        "check_globals.py is deprecated: running the CTX001 subset of "
        "`python -m repro.analysis` (see analysis/baseline.json for the "
        "migrated allowlist)",
        file=sys.stderr,
    )
    return reprolint_main(["--rules", "CTX001", "--root", str(REPO_ROOT)])


if __name__ == "__main__":
    sys.exit(main())
